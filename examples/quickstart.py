"""Quickstart: transparent access with on-demand deployment.

Builds the simulated C³ testbed (fig. 8), registers the Nginx edge
service under a cloud address, and issues two client requests:

* the **first** request finds no running instance — the SDN controller
  holds it, deploys the container on demand (Pull + Create + Scale Up),
  polls the service port, installs rewrite flows, and releases it;
* the **second** request hits the installed flow and is answered by
  the edge instance in about a millisecond.

Throughout, the client only ever talks to the *cloud* address — the
edge redirection is transparent.

Run:  python examples/quickstart.py
"""

from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def main() -> None:
    testbed = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    client = testbed.clients[0]

    print("Registering the Nginx service with the edge platform...")
    service = testbed.register_template(NGINX)
    print(f"  cloud address: {service.cloud_ip}:{service.port}")
    print(f"  unique name:   {service.name}")
    print()
    print("Annotated service definition produced by the controller:")
    print("  " + service.annotated_yaml.replace("\n", "\n  ").rstrip())
    print()

    first = testbed.run_request(client, service, NGINX.request)
    print(
        f"First request : {first.time_total * 1000:8.1f} ms  "
        f"(held while the edge instance deployed on demand)"
    )

    second = testbed.run_request(client, service, NGINX.request)
    print(
        f"Second request: {second.time_total * 1000:8.1f} ms  "
        f"(served by the running edge instance)"
    )

    endpoint = testbed.docker_cluster.endpoint(service.plan)
    print()
    print(f"Edge instance endpoint (hidden from the client): {endpoint}")
    print(f"Controller stats: {testbed.controller.stats}")


if __name__ == "__main__":
    main()
