"""Client mobility across gNBs (Follow-me-style handover).

The Dispatcher "tracks the clients' current location" (§IV-B).  Here a
client starts at the main gNB, gets its transparent redirection to the
edge, then hands over to a second gNB.  The controller refreshes the
client's routes, removes the stale redirect flows, and the next
request re-establishes the redirection at the new switch from the
FlowMemory — without consulting the scheduler again.

Run:  python examples/client_mobility.py
"""

from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def main() -> None:
    print(__doc__)
    testbed = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    gnb2 = testbed.add_gnb("gnb2")
    client = testbed.clients[0]
    service = testbed.register_template(NGINX)
    testbed.prepare_created(testbed.docker_cluster, service)

    first = testbed.run_request(client, service, NGINX.request)
    loc = testbed.controller.dispatcher.client_locations[client.ip]
    print(f"@gNB{loc.datapath_id}: first request  "
          f"{first.time_total * 1000:7.1f} ms (on-demand deployment)")

    warm = testbed.run_request(client, service, NGINX.request)
    print(f"@gNB{loc.datapath_id}: warm request   "
          f"{warm.time_total * 1000:7.1f} ms")

    print("\n-- handover to gnb2 --\n")
    testbed.move_client(client, gnb2)

    after = testbed.run_request(client, service, NGINX.request)
    loc = testbed.controller.dispatcher.client_locations[client.ip]
    print(f"@gNB{loc.datapath_id}: after handover "
          f"{after.time_total * 1000:7.1f} ms "
          f"(FlowMemory reinstall, no re-scheduling)")
    print(f"controller: dispatched={testbed.controller.stats['dispatched']}, "
          f"memory_hits={testbed.controller.stats['memory_hits']}")


if __name__ == "__main__":
    main()
