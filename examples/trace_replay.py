"""Replay the bigFlows-like workload through the transparent edge.

Runs the §VI methodology end to end: 42 registered services of one
type, 1708 requests over five minutes from 20 clients, with the SDN
controller deploying each service on its first request.  Prints the
fig. 9 request histogram, the fig. 10 deployment histogram, and the
request-latency summary.

Run:  python examples/trace_replay.py          (full, ~1-2 min)
      python examples/trace_replay.py --small  (reduced workload)
"""

import sys

from repro.experiments import run_trace_replay
from repro.metrics import render_histogram
from repro.services.catalog import NGINX
from repro.workload import BigFlowsParams
from repro.workload.bigflows import generate_trace, requests_per_bucket


def main() -> None:
    small = "--small" in sys.argv
    params = (
        BigFlowsParams(n_services=12, n_requests=300, duration_s=90.0)
        if small
        else BigFlowsParams()
    )

    events = generate_trace(params, seed=42)
    buckets = requests_per_bucket(events, 10.0, params.duration_s)
    print(render_histogram(
        buckets, 10.0,
        title=f"Fig. 9 — {params.n_requests} requests to "
              f"{params.n_services} services:"
    ))
    print()

    result = run_trace_replay(template=NGINX, params=params, seed=42)
    print(result.render())
    print()
    per_second = result.extras["deployments_per_second"]
    horizon = max(per_second) + 1
    series = [per_second.get(i, 0) for i in range(min(horizon, 60))]
    print(render_histogram(
        series, 1.0, title="Fig. 10 — deployments per second (measured):"
    ))


if __name__ == "__main__":
    main()
