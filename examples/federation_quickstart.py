"""Federated control plane: per-site controllers over shared state.

The paper runs ONE EdgeController for one EGS.  This example shards
that control plane: two radio sites, each with its own SiteController
and Docker cluster, coordinating only through a replicated shared
state with an explicit propagation delay (25 ms each way).

Watch three things happen:

1. site0's first request cold-starts locally (cloud serves meanwhile);
2. site1's first request is served CROSS-SITE from site0's instance —
   its controller learned about the replica through shared state and
   redirects over the backbone instead of deploying or going to the
   15 ms WAN;
3. a partition between site1 and the shared state degrades site1 to
   its local view: warm requests keep working, nothing errors, and the
   writes site1 makes meanwhile are delivered when the link heals.

Run:  python examples/federation_quickstart.py
"""

from repro.services.catalog import NGINX
from repro.testbed import FederatedTestbed, FederationConfig


def main() -> None:
    print(__doc__)
    tb = FederatedTestbed(FederationConfig(n_sites=2, clients_per_site=1))
    site0, site1 = tb.sites
    service = tb.register_template(NGINX)  # at site0; replicates to site1

    cold = tb.run_request(site0.clients[0], service, NGINX.request)
    print(f"site0 cold request   {cold.time_total * 1000:7.1f} ms "
          "(cloud serves, local deployment starts)")
    tb.settle(30.0)  # background pull + create + scale-up finishes
    tb.settle_replication()

    warm = tb.run_request(site0.clients[0], service, NGINX.request)
    print(f"site0 warm request   {warm.time_total * 1000:7.1f} ms (local edge)")

    remote = tb.run_request(site1.clients[0], service, NGINX.request)
    crossed = tb.recorder.counter("cross_site_redirects/site1")
    print(f"site1 first request  {remote.time_total * 1000:7.1f} ms "
          f"(cross-site redirects: {crossed} — served from site0's "
          "replica, no WAN, no duplicate cold start)")
    tb.settle(30.0)  # site1's own background deployment settles

    print("\n-- partition: site1 <-> shared-state link goes down --\n")
    site1.replica.link.down = True
    degraded = tb.run_request(site1.clients[0], service, NGINX.request)
    print(f"site1 while cut off  {degraded.time_total * 1000:7.1f} ms "
          "(local replica serves; zero client-visible errors)")

    site1.replica.link.down = False
    tb.settle_replication()
    print("link healed: queued state exchanged, sites converged")
    running = [record.site for record in site1.replica.instances_for(service.name)
               if record.running]
    print(f"site1's view of running instances: {sorted(running)}")


if __name__ == "__main__":
    main()
