"""The §VII hybrid: Docker for the first response, Kubernetes after.

"We can combine the best of both worlds.  First, we launch an edge
service via Docker to respond faster to the initial request.  Then, we
deploy the same service to Kubernetes for future requests."

Both clusters live on the same EGS host and share one containerd, as
on the paper's testbed.

Run:  python examples/hybrid_docker_k8s.py
"""

from repro.core import HybridDockerK8sScheduler
from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def main() -> None:
    print(__doc__)
    testbed = C3Testbed(
        TestbedConfig(cluster_types=("docker", "k8s")),
        scheduler=HybridDockerK8sScheduler("docker", "k8s"),
    )
    service = testbed.register_template(NGINX)
    testbed.prepare_created(testbed.docker_cluster, service)
    testbed.prepare_created(testbed.k8s_cluster, service)
    client = testbed.clients[0]

    first = testbed.run_request(client, service, NGINX.request)
    print(f"First request:  {first.time_total * 1000:7.1f} ms "
          f"(Docker answered — no 3 s Kubernetes cold start)")

    testbed.env.run(until=testbed.env.now + 10.0)
    assert testbed.k8s_cluster.is_running(service.plan)
    flow = testbed.controller.flow_memory.lookup(client.ip, service)
    print(f"Kubernetes instance is up; FlowMemory repointed to "
          f"'{flow.cluster_name}'")

    idle = testbed.controller.config.switch_idle_timeout_s
    testbed.env.run(until=testbed.env.now + idle + 1.0)
    later = testbed.run_request(client, service, NGINX.request)
    print(f"Steady state:   {later.time_total * 1000:7.1f} ms "
          f"(served by the Kubernetes-managed instance)")

    # The Docker instance can now be scaled down; K8s manages the service.
    proc = testbed.env.process(
        testbed.docker_cluster.scale_down(service.plan)
    )
    testbed.env.run(until=proc)
    print("Docker instance scaled down — fast initial response AND "
          "automated cluster management.")


if __name__ == "__main__":
    main()
