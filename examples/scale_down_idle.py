"""Automatic scale-down of idle services via FlowMemory timeouts (§V).

Memorized flows carry an idle timeout; when the last flow of a service
expires, the controller scales the instance down ("Our controller may
automatically scale down idle edge service instances").  The created
containers remain, so the next request redeploys with a Scale Up only.

Run:  python examples/scale_down_idle.py
"""

import dataclasses

from repro.services import DEFAULT_CALIBRATION
from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def main() -> None:
    print(__doc__)
    calibration = dataclasses.replace(
        DEFAULT_CALIBRATION,
        switch_idle_timeout_s=5.0,
        memory_idle_timeout_s=20.0,
    )
    testbed = C3Testbed(
        TestbedConfig(cluster_types=("docker",), auto_scale_down=True),
        calibration=calibration,
    )
    service = testbed.register_template(NGINX)
    testbed.prepare_created(testbed.docker_cluster, service)
    client = testbed.clients[0]

    result = testbed.run_request(client, service, NGINX.request)
    print(f"[t={testbed.env.now:7.2f}s] first request: "
          f"{result.time_total * 1000:.1f} ms — instance running")

    # The client goes quiet.  Switch flow expires first (low timeout),
    # then the memorized flow, which triggers the scale-down.
    testbed.env.run(until=testbed.env.now + 30.0)
    running = testbed.docker_cluster.is_running(service.plan)
    created = testbed.docker_cluster.is_created(service.plan)
    print(f"[t={testbed.env.now:7.2f}s] after idling: running={running}, "
          f"containers kept={created}, "
          f"scale_downs={testbed.controller.stats['scale_downs']}")
    assert not running and created

    # The next request redeploys on demand — Scale Up only.
    result = testbed.run_request(client, service, NGINX.request)
    print(f"[t={testbed.env.now:7.2f}s] next request:  "
          f"{result.time_total * 1000:.1f} ms — redeployed on demand")


if __name__ == "__main__":
    main()
