"""On-demand deployment *without waiting* (fig. 3).

A latency-sensitive service is requested at an edge where no instance
runs.  With the :class:`LowLatencyScheduler`, the controller redirects
the initial request to a *running* instance in a farther edge cluster
(FAST) while deploying the service in the optimal near edge (BEST) in
parallel.  Once the near instance is up, the FlowMemory repoints the
service and subsequent connections are served locally.

Run:  python examples/no_waiting_redirect.py
"""

from repro.core import LowLatencyScheduler
from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def main() -> None:
    print(__doc__)
    testbed = C3Testbed(
        TestbedConfig(cluster_types=("docker",)),
        scheduler=LowLatencyScheduler(),
    )
    far = testbed.add_far_edge("far-docker", distance=1, latency_s=0.004)
    service = testbed.register_template(NGINX)

    # The near edge has the image cached; the far edge already runs an
    # instance (it is "on the route to the cloud" and busier).
    testbed.prepare_created(testbed.docker_cluster, service)
    testbed.prepare_created(far, service)
    proc = testbed.env.process(far.scale_up(service.plan))
    testbed.env.run(until=proc)
    proc = testbed.env.process(far.wait_ready(service.plan, timeout_s=30))
    testbed.env.run(until=proc)

    client = testbed.clients[0]
    first = testbed.run_request(client, service, NGINX.request)
    flow = testbed.controller.flow_memory.lookup(client.ip, service)
    print(f"First request: {first.time_total * 1000:7.1f} ms "
          f"— served by '{flow.cluster_name}' (no waiting)")

    # Let the BEST (near) deployment finish in the background.
    testbed.env.run(until=testbed.env.now + 10.0)
    flow = testbed.controller.flow_memory.lookup(client.ip, service)
    print(f"Background deployment done; FlowMemory now points at "
          f"'{flow.cluster_name}'")

    # After the switch flow idles out, new connections go to the near edge.
    idle = testbed.controller.config.switch_idle_timeout_s
    testbed.env.run(until=testbed.env.now + idle + 1.0)
    later = testbed.run_request(client, service, NGINX.request)
    flow = testbed.controller.flow_memory.lookup(client.ip, service)
    print(f"Later request: {later.time_total * 1000:7.1f} ms "
          f"— served by '{flow.cluster_name}'")

    assert flow.cluster_name == "docker"
    print("\nThe initial request never waited for a deployment, and the "
          "service ended up at the optimal edge.")


if __name__ == "__main__":
    main()
