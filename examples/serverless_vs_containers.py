"""Serverless (wasm) next to containers under one SDN controller.

The paper's future work (§VIII): "enabling the side-by-side operation
of containers and serverless applications".  Here the EGS hosts a
Docker cluster *and* a WebAssembly function runtime; the unchanged
controller deploys to whichever the scheduler picks, and the client
never notices any of it.

Run:  python examples/serverless_vs_containers.py
"""

from repro.services.catalog import NGINX, RESNET
from repro.testbed import C3Testbed, TestbedConfig


def first_and_warm(cluster_kind: str, template) -> tuple[float, float]:
    if cluster_kind == "wasm":
        testbed = C3Testbed(TestbedConfig(cluster_types=()))
        cluster = testbed.add_serverless()
    else:
        testbed = C3Testbed(TestbedConfig(cluster_types=(cluster_kind,)))
        cluster = testbed.docker_cluster or testbed.k8s_cluster
    service = testbed.register_template(template)
    testbed.prepare_created(cluster, service)
    first = testbed.run_request(testbed.clients[0], service, template.request)
    warm = testbed.run_request(testbed.clients[0], service, template.request)
    return first.time_total, warm.time_total


def main() -> None:
    print(__doc__)
    print(f"{'service':8} {'runtime':7} {'first request':>14} {'warm request':>13}")
    for template in (NGINX, RESNET):
        for runtime in ("docker", "k8s", "wasm"):
            first, warm = first_and_warm(runtime, template)
            print(
                f"{template.title:8} {runtime:7} "
                f"{first * 1000:12.1f}ms {warm * 1000:11.2f}ms"
            )
    print()
    print("Wasm answers cold requests in milliseconds (no namespaces, no")
    print("orchestrator), at the price of slower compute — visible on the")
    print("inference-bound ResNet function, irrelevant for the file server.")


if __name__ == "__main__":
    main()
