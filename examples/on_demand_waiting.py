"""On-demand deployment *with waiting* (fig. 5), phase by phase.

Deploys each of the paper's four edge services (Table I) cold — no
image cached, nothing created — on both a Docker and a Kubernetes
cluster, and prints the per-phase breakdown the controller recorded:
Pull, Create, Scale Up, and the port-polling wait, plus the client's
``time_total`` for the held first request.

Run:  python examples/on_demand_waiting.py
"""

from repro.services.catalog import PAPER_SERVICES
from repro.testbed import C3Testbed, TestbedConfig


def deploy_cold(cluster_type: str) -> None:
    print(f"=== {cluster_type} cluster ===")
    header = (
        f"{'service':9} {'pull':>8} {'create':>8} {'scale':>8} "
        f"{'wait':>8} {'client total':>13}"
    )
    print(header)
    for template in PAPER_SERVICES:
        testbed = C3Testbed(TestbedConfig(cluster_types=(cluster_type,)))
        service = testbed.register_template(template)
        result = testbed.run_request(
            testbed.clients[0], service, template.request
        )
        rec = testbed.recorder
        cluster = cluster_type

        def med(phase: str) -> str:
            samples = rec.samples(f"{phase}/{cluster}/{template.key}")
            return f"{samples[0]:7.3f}s" if samples else "      -"

        print(
            f"{template.title:9} {med('pull')} {med('create')} "
            f"{med('scale_up')} {med('wait_ready')} "
            f"{result.time_total:12.3f}s"
        )
    print()


def main() -> None:
    print(__doc__)
    deploy_cold("docker")
    deploy_cold("k8s")
    print(
        "Shape check (paper §VI): with cached images Docker answers in\n"
        "< 1 s and Kubernetes in ~3 s; cold starts additionally pay the\n"
        "pull, which dwarfs everything for the large images."
    )


if __name__ == "__main__":
    main()
