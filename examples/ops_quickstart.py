"""Ops quickstart: the observability surface of the testbed.

Builds the simulated C³ testbed with the flow-stats collector armed,
registers the Nginx edge service, replays a short request burst, and
then queries the operational REST API the way an in-sim operator
would — real simulated-HTTP GETs from a client host to the ops app on
the EGS host (port 7080):

* ``GET /services``       — what is registered,
* ``GET /flows``          — which (client, service) flows the
  controller memorized while serving the burst,
* ``GET /metrics/links``  — link utilization and per-service packet
  rates derived by the collector from switch counters,
* ``POST /services?template=resnet`` — registering a second service
  through the API itself.

Run:  python examples/ops_quickstart.py
"""

from repro.net.packet import HTTPRequest
from repro.ops import OPS_PORT
from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig


def _get(testbed: C3Testbed, path: str, method: str = "GET") -> dict:
    client = testbed.clients[-1]
    proc = testbed.env.process(
        client.http_request(
            testbed.egs.ip, OPS_PORT, HTTPRequest(method, path, body_bytes=0)
        )
    )
    result = testbed.env.run(until=proc)
    assert result.response is not None, f"{method} {path} timed out"
    return result.response.payload


def main() -> None:
    testbed = C3Testbed(
        TestbedConfig(cluster_types=("docker",), flow_stats_period_s=0.25)
    )
    service = testbed.register_template(NGINX)
    print(f"Registered {service.name} at {service.address}")

    for client in testbed.clients[:3]:
        result = testbed.run_request(client, service, NGINX.request)
        print(f"  {client.name}: {result.time_total * 1000:7.1f} ms")
    testbed.settle(0.3)  # let the collector finish a window

    print()
    print("GET /services")
    for row in _get(testbed, "/services")["services"]:
        print(f"  {row['name']}  cloud={row['cloud_ip']}:{row['port']}")

    print("GET /flows")
    for row in _get(testbed, "/flows")["flows"]:
        print(
            f"  {row['client_ip']} -> {row['service_name']} "
            f"on {row['cluster_name']}"
        )

    print("GET /metrics/links")
    links = _get(testbed, "/metrics/links")
    for row in links["links"]:
        print(
            f"  {row['site']}/{row['link']}: "
            f"{row['bits_per_s'] / 1e6:.2f} Mbit/s "
            f"({row['utilization']:.6f} of capacity)"
        )
    for row in links["service_rates"]:
        print(
            f"  {row['service_name']}: {row['packets_per_s']:.0f} pkt/s "
            f"over the last {row['window_s']:g}s window"
        )

    print("POST /services?template=resnet")
    created = _get(testbed, "/services?template=resnet", method="POST")
    print(f"  registered: {created['registered']}")
    names = [r["name"] for r in _get(testbed, "/services")["services"]]
    print(f"  services now: {sorted(names)}")


if __name__ == "__main__":
    main()
