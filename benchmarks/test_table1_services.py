"""Table I — edge service catalog."""

from repro.containers.image import KIB, MIB
from repro.experiments import run_table1
from repro.services.catalog import ASM, NGINX, NGINX_PY, RESNET

from benchmarks.conftest import run_experiment


def test_table1_services(benchmark):
    result = run_experiment(benchmark, run_table1)
    # Exact catalog values from the paper.
    assert result.cell("Asm", "Containers") == 1
    assert result.cell("Nginx+Py", "Containers") == 2
    assert result.cell("ResNet", "HTTP") == "POST"
    assert ASM.total_bytes == int(6.18 * KIB)
    assert NGINX.total_bytes == 135 * MIB and NGINX.layer_count == 6
    assert RESNET.total_bytes == 308 * MIB and RESNET.layer_count == 9
    assert NGINX_PY.total_bytes == 181 * MIB and NGINX_PY.layer_count == 7
