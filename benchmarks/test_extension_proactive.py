"""Extension P1 — proactive deployment via prediction (§VII)."""

from repro.experiments import run_extension_proactive

from benchmarks.conftest import run_experiment


def test_extension_proactive(benchmark):
    result = run_experiment(benchmark, run_extension_proactive)
    rows = {row[0]: row for row in result.rows}
    reactive, proactive = rows["reactive"], rows["proactive"]

    # Reactive: every periodic visit is a cold start.
    assert reactive[2] == reactive[1]  # cold == visits
    # Proactive: after the learning phase, visits find a running
    # instance; at least half the visits are warm.
    assert proactive[3] >= proactive[1] // 2
    # The median visit latency collapses to warm-request time.
    assert proactive[4] < reactive[4] / 20
