"""Fig. 14 — wait time until ready after Scale Up."""

from repro.experiments import run_fig11_scale_up, run_fig14_wait_after_scale_up

from benchmarks.conftest import run_experiment


def test_fig14_wait_after_scale_up(benchmark):
    result = run_experiment(
        benchmark, run_fig14_wait_after_scale_up, n_instances=42
    )
    fig11 = run_fig11_scale_up(n_instances=42)  # shares the cached runs

    for service in ("Asm", "Nginx", "ResNet", "Nginx+Py"):
        for column in ("docker median (s)", "k8s median (s)"):
            wait = result.cell(service, column)
            total = fig11.cell(service, column)
            # The wait is a component of — and below — the total.
            assert 0 <= wait < total, (service, column)

    # ResNet: "the waiting time alone accounts for more than a fourth
    # of the total time."
    resnet_wait = result.cell("ResNet", "docker median (s)")
    resnet_total = fig11.cell("ResNet", "docker median (s)")
    assert resnet_wait > resnet_total / 4
    # The web services become ready almost immediately after start.
    assert result.cell("Asm", "docker median (s)") < 0.1
    assert result.cell("Nginx", "docker median (s)") < 0.15
