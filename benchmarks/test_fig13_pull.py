"""Fig. 13 — pull times from public vs private registries."""

from repro.experiments import run_fig13_pull

from benchmarks.conftest import run_experiment


def test_fig13_pull(benchmark):
    result = run_experiment(benchmark, run_fig13_pull)
    public = {row[0]: row[1] for row in result.rows}
    saving = {row[0]: row[3] for row in result.rows}

    # The tiny Assembler image "shines" in the Pull phase.
    assert public["Asm"] < 0.6
    assert public["Asm"] < public["Nginx"] / 3
    # Ordering by size/layers: Nginx < Nginx+Py < ResNet.
    assert public["Nginx"] < public["Nginx+Py"] < public["ResNet"]
    # "pull times improve by about 1.5 to 2 seconds" with the private
    # registry (for the real, multi-layer images).
    for service in ("Nginx", "ResNet", "Nginx+Py"):
        assert 1.0 < saving[service] < 3.5, (service, saving[service])
