"""Fig. 15 — wait time until ready after Create + Scale Up."""

from repro.experiments import (
    run_fig14_wait_after_scale_up,
    run_fig15_wait_after_create_scale_up,
)

from benchmarks.conftest import run_experiment


def test_fig15_wait_after_create_scale_up(benchmark):
    result = run_experiment(
        benchmark, run_fig15_wait_after_create_scale_up, n_instances=42
    )
    fig14 = run_fig14_wait_after_scale_up(n_instances=42)

    # Same ordering as fig. 14, and creating first doesn't change the
    # wait much (the create cost lands in the total, not the port wait).
    # Docker's start call blocks until the process spawned, so the wait
    # is essentially the application boot: ResNet dwarfs Nginx.
    assert result.cell("ResNet", "docker median (s)") > 5 * result.cell(
        "Nginx", "docker median (s)"
    )
    # K8s's scale call returns immediately; the wait swallows the whole
    # pod-start chain for every service, plus the boot on top for ResNet.
    assert (
        result.cell("ResNet", "k8s median (s)")
        > result.cell("Nginx", "k8s median (s)") + 1.5
    )
    for column in ("docker median (s)", "k8s median (s)"):
        delta = abs(result.cell("Nginx", column) - fig14.cell("Nginx", column))
        assert delta < 0.25
