"""Fig. 11 — total time (median) to Scale Up, Docker vs Kubernetes."""

from repro.experiments import run_fig11_scale_up

from benchmarks.conftest import run_experiment


def test_fig11_scale_up(benchmark):
    result = run_experiment(benchmark, run_fig11_scale_up, n_instances=42)
    docker = {row[0]: row[1] for row in result.rows}
    k8s = {row[0]: row[2] for row in result.rows}

    # Docker answers the first request in < 1 s for the web services.
    assert docker["Asm"] < 1.0
    assert docker["Nginx"] < 1.0
    # Kubernetes pays the orchestrator overhead: ~3 s.
    assert 2.0 < k8s["Asm"] < 4.5
    assert 2.0 < k8s["Nginx"] < 4.5
    # "no notable difference between ... the tiny Assembler web server
    # and the far larger Nginx instance" (scale-up is image-size blind).
    assert abs(docker["Asm"] - docker["Nginx"]) < 0.15
    # ResNet takes significantly longer on both clusters.
    assert docker["ResNet"] > 3 * docker["Nginx"]
    assert k8s["ResNet"] > k8s["Nginx"] + 1.5
    # Two containers cost more than one.
    assert docker["Nginx+Py"] > docker["Nginx"]
    assert k8s["Nginx+Py"] > k8s["Nginx"]
    # The headline gap: K8s multiple times slower than Docker.
    assert k8s["Nginx"] > 3 * docker["Nginx"]
