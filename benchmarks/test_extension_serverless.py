"""Extension S1 — serverless (wasm) vs containers (§VIII future work)."""

from repro.experiments import run_extension_serverless

from benchmarks.conftest import run_experiment


def test_extension_serverless(benchmark):
    result = run_experiment(benchmark, run_extension_serverless)
    cold = {row[0]: row[1] for row in result.rows}
    warm = {row[0]: row[2] for row in result.rows}

    # Cold starts: wasm in milliseconds, orders below the containers.
    assert cold["Nginx / wasm"] < 0.05
    assert cold["Nginx / wasm"] < cold["Nginx / docker"] / 10
    assert cold["Nginx / docker"] < cold["Nginx / k8s"] / 3
    # Even the heavyweight function instantiates quickly (model load is
    # part of the module, compiled/cached ahead of time).
    assert cold["ResNet / wasm"] < cold["ResNet / docker"] / 5
    # The flip side: compute-bound execution is slower than native.
    assert warm["ResNet / wasm"] > 1.2 * warm["ResNet / docker"]
    # Cheap text handlers barely notice the slowdown.
    assert warm["Nginx / wasm"] < 2 * warm["Nginx / docker"]
