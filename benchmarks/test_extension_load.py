"""Extension L1 — warm latency under concurrent load."""

from repro.experiments import run_extension_load

from benchmarks.conftest import run_experiment


def test_extension_load(benchmark):
    result = run_experiment(benchmark, run_extension_load)

    # The file server stays flat across the sweep.
    nginx = [result.cell("Nginx", f"x{n} median (s)") for n in (1, 4, 8, 16)]
    assert max(nginx) < 2 * min(nginx)
    # The inference service queues once the burst exceeds its 4-worker
    # pool: x16 is several times x1.
    assert result.cell("ResNet", "x16 median (s)") > 2 * result.cell(
        "ResNet", "x1 median (s)"
    )
    # Below the pool size it holds steady.
    assert result.cell("ResNet", "x4 median (s)") < 1.3 * result.cell(
        "ResNet", "x1 median (s)"
    )
