"""Fig. 10 — 42 deployments over five minutes, bursty start."""

from repro.experiments import run_fig10_deployment_distribution

from benchmarks.conftest import run_experiment


def test_fig10_deployment_distribution(benchmark):
    result = run_experiment(benchmark, run_fig10_deployment_distribution)
    assert result.extras["total"] == 42
    # "up to eight deployments per second in the beginning"
    assert result.extras["max_per_second"] >= 4
    firsts = result.extras["first_request_times"]
    early = sum(1 for t in firsts if t <= 3.0)
    assert early >= 14  # a large cohort of services starts immediately
