"""Ablation A1 — first-request latency per deployment mode."""

from repro.experiments import run_ablation_waiting_modes

from benchmarks.conftest import run_experiment


def test_ablation_waiting_modes(benchmark):
    result = run_experiment(benchmark, run_ablation_waiting_modes)
    medians = {row[0]: row[1] for row in result.rows}
    waiting = medians["with-waiting (near deploys)"]
    far = medians["without-waiting (far instance)"]
    cloud_fb = medians["without-waiting (cloud fallback)"]
    baseline = medians["cloud-only baseline"]

    # Redirecting to a running far instance beats both holding the
    # request and going to the cloud.
    assert far < cloud_fb < waiting
    # Cloud fallback of the no-waiting mode costs the same as pure
    # cloud for the first request (it IS the cloud).
    assert abs(cloud_fb - baseline) < 0.01
    # With-waiting still answers in < 1 s (cached Docker images).
    assert waiting < 1.0
