"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper via its
experiment runner, prints the figure-shaped rows (run with ``-s`` to
see them), and asserts the paper's *shape* criteria — who wins, by
roughly what factor — not absolute numbers.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, runner, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and print it."""
    result = benchmark.pedantic(
        lambda: runner(*args, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
