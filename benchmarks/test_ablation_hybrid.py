"""Ablation A2 — §VII hybrid Docker-then-Kubernetes."""

from repro.experiments import run_ablation_hybrid

from benchmarks.conftest import run_experiment


def test_ablation_hybrid(benchmark):
    result = run_experiment(benchmark, run_ablation_hybrid)
    rows = {row[0]: row for row in result.rows}
    hybrid = rows["hybrid (Docker first, K8s steady-state)"]
    pure = rows["pure Kubernetes"]

    # Hybrid first response at Docker speed; pure K8s pays ~3 s.
    assert hybrid[1] < 1.0
    assert pure[1] > 2.0
    assert hybrid[1] < pure[1] / 3
    # Both end up fully managed by Kubernetes.
    assert hybrid[2] == pure[2]
