"""Ablation A3 — flow-table occupancy: low idle + FlowMemory vs high idle."""

from repro.experiments import run_ablation_flow_occupancy

from benchmarks.conftest import run_experiment


def test_ablation_flow_occupancy(benchmark):
    result = run_experiment(benchmark, run_ablation_flow_occupancy)
    rows = {row[0]: row for row in result.rows}
    low = rows["low idle (5 s) + FlowMemory"]
    high = rows["high idle (120 s)"]

    # The table stays a fraction of the high-timeout size on average...
    assert low[2] < 0.5 * high[2]
    # ...thanks to FlowMemory reinstalls doing the work...
    assert low[4] > 100
    assert high[4] == 0
    # ...while request latency stays in the same millisecond band.
    assert low[3] < 0.01 and high[3] < 0.01
