"""Extension B1 — first-request latency breakdown."""

from repro.experiments import run_extension_breakdown

from benchmarks.conftest import run_experiment


def test_extension_breakdown(benchmark):
    result = run_experiment(benchmark, run_extension_breakdown)
    rows = {row[0]: row for row in result.rows}

    def parts(key):
        _, total, scale, wait, rest = rows[key]
        return total, scale, wait, rest

    # Docker: the blocking start call is the dominant component for the
    # web services.
    total, scale, wait, rest = parts("Nginx / docker")
    assert scale > 0.6 * total
    assert rest < 0.01
    # Kubernetes: the scale call is cheap; the wait absorbs the chain.
    total, scale, wait, rest = parts("Nginx / k8s")
    assert scale < 0.1
    assert wait > 0.9 * total
    # ResNet adds its model load to the wait on both clusters.
    assert rows["ResNet / docker"][3] > 2.0
    assert rows["ResNet / k8s"][3] > 4.0
    # Components sum to the total (within the poll quantisation).
    for key, row in rows.items():
        assert abs(row[1] - (row[2] + row[3] + row[4])) < 1e-6
