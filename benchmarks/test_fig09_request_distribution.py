"""Fig. 9 — 1708 requests to 42 edge services over five minutes."""

from repro.experiments import run_fig09_request_distribution

from benchmarks.conftest import run_experiment


def test_fig09_request_distribution(benchmark):
    result = run_experiment(benchmark, run_fig09_request_distribution)
    assert result.extras["total"] == 1708
    counts = result.extras["per_service_counts"]
    assert len(counts) == 42
    # Every selected service receives at least 20 requests (§VI).
    assert min(counts) >= 20
    # Heavy tail: the hottest service several times the coldest.
    assert max(counts) > 3 * min(counts)
