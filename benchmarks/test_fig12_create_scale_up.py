"""Fig. 12 — total time (median) to Create + Scale Up."""

from repro.experiments import run_fig11_scale_up, run_fig12_create_scale_up

from benchmarks.conftest import run_experiment


def test_fig12_create_scale_up(benchmark):
    result = run_experiment(benchmark, run_fig12_create_scale_up, n_instances=42)
    fig11 = run_fig11_scale_up(n_instances=42)  # cached if already run

    for service in ("Asm", "Nginx", "Nginx+Py"):
        for column in ("docker median (s)", "k8s median (s)"):
            extra = result.cell(service, column) - fig11.cell(service, column)
            # "creating the containers adds around 100 ms"
            assert 0.02 < extra < 0.35, (service, column, extra)

    # For ResNet the create overhead is negligible relative to its
    # multi-second total (the paper shows no visible overhead).
    for column in ("docker median (s)", "k8s median (s)"):
        extra = result.cell("ResNet", column) - fig11.cell("ResNet", column)
        assert extra < 0.1 * result.cell("ResNet", column)
