"""Perf smoke gate: trace-replay wall-clock must stay near the recorded
baseline.

Opt-in (it is wall-clock-sensitive, so not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q

Equivalent CLI form (what CI wires in)::

    PYTHONPATH=src python tools/bench_throughput.py --check

Both reuse the same check: rerun the smallest scale recorded in the
newest benchmark report (``BENCH_PR3.json``, else ``BENCH_PR2.json``,
else ``BENCH_PR1.json``) and fail if wall-clock regressed beyond 2x or
the latency fingerprint (simulated-time results) drifted.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from benchmarks.perf.harness import run_replay_benchmark

_ROOT = pathlib.Path(__file__).resolve().parents[2]
_REPORT = next(
    (
        p
        for p in (
            _ROOT / "BENCH_PR3.json",
            _ROOT / "BENCH_PR2.json",
            _ROOT / "BENCH_PR1.json",
        )
        if p.exists()
    ),
    _ROOT / "BENCH_PR3.json",
)

#: Wall-clock head-room over the recorded baseline before we call it a
#: regression (noisy-neighbour tolerance, matching --tolerance).
TOLERANCE = 2.0


@pytest.mark.perf
def test_trace_replay_wall_clock_within_tolerance():
    if not _REPORT.exists():
        pytest.skip("no benchmark report recorded")
    recorded = json.loads(_REPORT.read_text())
    runs = sorted(recorded["runs"], key=lambda r: r["scale"])
    assert runs, "baseline report holds no runs"
    reference = runs[0]

    result = run_replay_benchmark(
        scale=reference["scale"], seed=recorded["trace_seed"]
    )

    assert result.latency_md5 == reference["latency_md5"], (
        "simulated-time results drifted from the recorded baseline — "
        "a semantic change, not just a slowdown"
    )
    limit = reference["wall_s"] * TOLERANCE
    assert result.wall_s <= limit, (
        f"trace replay took {result.wall_s:.2f}s, over {TOLERANCE:g}x the "
        f"recorded {reference['wall_s']:.2f}s baseline"
    )
