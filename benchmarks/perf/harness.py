"""Shared wall-clock benchmark harness for the bigFlows trace replay.

Builds the same testbed as :func:`repro.experiments.trace_replay`
(42 pre-created Nginx services on the Docker cluster, 20 clients) and
replays the generated trace at an integer *scale*: ``scale=10`` issues
10x the paper's 1708 requests over the same 300 s capture window, so
the request rate — and with it the live flow-table size — grows with
the scale.  That makes the replay a direct stress test of the
per-packet hot path.

The harness measures *wall-clock* seconds (how fast the simulator
runs), never simulated seconds (which must stay byte-identical across
optimisations — ``latency_md5`` fingerprints the full latency sequence
so any semantic drift is caught immediately).

Works against older revisions of the tree as well: kernel event
counters and flow-table peak tracking are read via ``getattr`` with a
cheap fallback, so the same harness can record a pre-change baseline.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
import tracemalloc
import typing as _t

from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig
from repro.workload import BigFlowsParams, TraceDriver, generate_trace

#: Scales the full benchmark sweep runs at.  100x (~170k requests over
#: the 300 s window) probes behaviour past the paper's densest load;
#: PR1 reports predate it, so baseline comparisons cover 1/10/50 only.
DEFAULT_SCALES = (1, 10, 50, 100)
#: Trace seed shared by all benchmark runs (same as the experiments).
DEFAULT_SEED = 42


@dataclasses.dataclass
class BenchResult:
    """One scale's measurement."""

    scale: int
    n_requests: int
    n_ok: int
    n_errors: int
    wall_s: float
    sim_s: float
    requests_per_sec: float
    #: Kernel events processed during the replay (None when the kernel
    #: predates the counter, e.g. a pre-change baseline run).
    events: int | None
    events_per_sec: float | None
    peak_flow_table: int
    final_flow_table: int
    #: MD5 over the full ``time_total`` sequence (17 significant
    #: digits, sample order) — byte-identity fingerprint of the
    #: simulated-time results.
    latency_md5: str
    #: Whether the run had the operational surface fully enabled (REST
    #: app + flow-stats collector).  ``latency_md5`` must not depend on
    #: this flag — that byte-identity is the md5-neutrality guarantee
    #: ``tools/bench_throughput.py --check`` gates — but wall-clock
    #: rows are only comparable at equal ``ops_enabled``.
    ops_enabled: bool = False
    #: tracemalloc peak / end-of-run KiB during the replay (None unless
    #: the run was traced — tracing slows the replay several-fold, so
    #: wall_s from a traced run must never be compared to an untraced
    #: one; the sweep runs a separate traced pass for these numbers).
    alloc_peak_kib: float | None = None
    alloc_current_kib: float | None = None

    def to_json(self) -> dict[str, _t.Any]:
        data = dataclasses.asdict(self)
        if self.alloc_peak_kib is None:
            del data["alloc_peak_kib"], data["alloc_current_kib"]
        return data


def fingerprint_latencies(time_totals: _t.Iterable[float]) -> str:
    """MD5 of the latency sequence at full float precision."""
    digest = hashlib.md5()
    for value in time_totals:
        digest.update(f"{value:.17g}\n".encode("ascii"))
    return digest.hexdigest()


def scaled_params(scale: int, base: BigFlowsParams | None = None) -> BigFlowsParams:
    """The paper's workload with ``scale``x the request volume."""
    base = base or BigFlowsParams()
    return dataclasses.replace(base, n_requests=base.n_requests * scale)


def run_federation_benchmark(
    n_sites: int = 1,
    scale: int = 1,
    seed: int = DEFAULT_SEED,
    ops: bool = False,
) -> BenchResult:
    """Replay the bigFlows trace against the federated control plane.

    Same trace, same seed, same fingerprinting as
    :func:`run_replay_benchmark`, but the testbed is a
    :class:`~repro.testbed.FederatedTestbed`: ``n_sites`` per-site
    controllers over replicated shared state instead of one monolithic
    controller.  Services are registered and pre-created at site 0 and
    the trace's clients are spread round-robin across every site, so
    with ``n_sites > 1`` a share of the requests exercises the
    cross-site redirect path.  With ``n_sites=1`` the run is a direct
    hot-path check of the sharded control plane against the
    single-controller replay (the CI perf-smoke job runs exactly that).
    """
    from repro.testbed import FederatedTestbed, FederationConfig

    params = scaled_params(scale)
    tb = FederatedTestbed(
        FederationConfig(
            n_sites=n_sites,
            clients_per_site=4,
            flow_stats_period_s=1.0 if ops else None,
        )
    )
    site0 = tb.sites[0]
    services = [
        tb.register_template(NGINX, wait_replication=False)
        for _ in range(params.n_services)
    ]
    tb.settle_replication()
    for service in services:
        tb.prepare_created(site0.cluster, service)
    tb.settle(1.0)

    clients = [client for site in tb.sites for client in site.clients]
    events = generate_trace(params, seed=seed)
    driver = TraceDriver(
        tb.env,
        clients,
        services,
        requests={s.name: NGINX.request for s in services},
        recorder=tb.recorder,
    )

    tables = [site.switch.table for site in tb.sites]
    sim_start = tb.env.now
    events_before = getattr(tb.env, "events_processed", None)
    wall_start = time.perf_counter()
    summary = driver.run(events)
    wall_s = time.perf_counter() - wall_start
    events_after = getattr(tb.env, "events_processed", None)

    n_events: int | None = None
    if events_before is not None and events_after is not None:
        n_events = events_after - events_before

    return BenchResult(
        scale=scale,
        n_requests=summary.n_requests,
        n_ok=summary.n_ok,
        n_errors=summary.n_errors,
        wall_s=round(wall_s, 3),
        sim_s=round(tb.env.now - sim_start, 6),
        requests_per_sec=round(summary.n_requests / wall_s, 1),
        events=n_events,
        events_per_sec=round(n_events / wall_s, 1) if n_events else None,
        peak_flow_table=max(int(t.peak_size) for t in tables),
        final_flow_table=max(len(t) for t in tables),
        latency_md5=fingerprint_latencies(
            s.time_total for s in summary.samples
        ),
        ops_enabled=ops,
    )


@dataclasses.dataclass
class ParallelBenchResult:
    """One partitioned-replay measurement (serial or parallel mode).

    ``latency_md5`` is the combined per-site completion fingerprint —
    a serial and a parallel run of the same workload must produce the
    same value (the determinism guarantee of ``repro.sim.parallel``),
    so benchmark reports double as parity evidence.
    """

    n_sites: int
    n_clients: int
    n_requests: int
    #: ``"serial"`` (one process, reference) or ``"parallel"``
    #: (one forked worker per partition).
    mode: str
    #: ``"synthetic"`` (``repro.sim.parallel.model`` replay) or
    #: ``"testbed"`` (the real federated stack sharded per site).
    workload: str
    #: Partition count (sites + backbone); in parallel mode this is
    #: also the worker-process count.
    n_partitions: int
    issued: int
    completed: int
    wall_s: float
    sim_s: float
    #: Synchronization rounds the conservative engine ran.
    rounds: int
    #: Rounds that actually carried payload packets across a cut; the
    #: remainder (``rounds - payload_rounds``) were bound-only
    #: synchronization rounds.  The adaptive engine's whole point is
    #: keeping ``rounds`` close to ``payload_rounds``.
    payload_rounds: int
    events: int
    events_per_sec: float
    requests_per_sec: float
    cross_partition_messages: int
    null_messages: int
    peak_flow_table: int
    latency_md5: str
    #: Per-partition counters: events, busy seconds, per-worker
    #: events/sec, packet/null message counts.
    workers: list[dict[str, _t.Any]]

    def to_json(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


def run_parallel_benchmark(
    n_sites: int = 4,
    n_clients: int = 100_000,
    n_requests: int = 1_000_000,
    duration_s: float = 300.0,
    parallel: bool = False,
    seed: int = DEFAULT_SEED,
    profile_dir: str | None = None,
) -> ParallelBenchResult:
    """Run the synthetic partitioned replay and measure wall-clock.

    The workload is ``repro.sim.parallel.model``'s federated edge
    replay: ``n_sites`` site partitions plus a backbone partition, cut
    at the trunk links.  ``parallel=False`` runs the single-process
    :class:`~repro.sim.parallel.SerialExecutor` reference;
    ``parallel=True`` forks one worker per partition under the
    conservative coordinator.  Same workload + same seed must yield
    the same ``latency_md5`` in both modes.  ``profile_dir`` enables
    per-worker ``cProfile`` dumps under that directory.
    """
    from repro.sim.parallel import ParallelCoordinator, SerialExecutor
    from repro.sim.parallel.model import (
        EdgeWorkload,
        build_specs,
        combined_fingerprint,
        totals,
    )

    workload = EdgeWorkload(
        n_sites=n_sites,
        n_clients=n_clients,
        n_requests=n_requests,
        duration_s=duration_s,
        seed=seed,
    )
    specs = build_specs(workload)
    executor: _t.Any = (
        ParallelCoordinator(specs, profile_dir=profile_dir)
        if parallel
        else SerialExecutor(specs, profile_dir=profile_dir)
    )
    run = executor.run(workload.until_s)
    stats = run.stats
    counts = totals(run.results, n_sites)
    eps = stats.events_per_sec or 0.0
    return ParallelBenchResult(
        n_sites=n_sites,
        n_clients=n_clients,
        n_requests=n_requests,
        mode=stats.mode,
        workload="synthetic",
        n_partitions=len(specs),
        issued=counts["issued"],
        completed=counts["completed"],
        wall_s=round(stats.wall_s, 3),
        sim_s=round(workload.until_s, 6),
        rounds=stats.rounds,
        payload_rounds=stats.payload_rounds,
        events=stats.total_events,
        events_per_sec=round(eps, 1),
        requests_per_sec=round(counts["completed"] / stats.wall_s, 1),
        cross_partition_messages=stats.cross_partition_messages,
        null_messages=stats.null_messages,
        peak_flow_table=max(
            run.results[f"site{s}"]["peak_flow_table"] for s in range(n_sites)
        ),
        latency_md5=combined_fingerprint(run.results, n_sites),
        workers=_worker_rows(stats),
    )


def _worker_rows(stats: _t.Any) -> list[dict[str, _t.Any]]:
    """Per-partition counter rows with the overlap ratio attached.

    ``overlap = busy_s / wall_s`` is the fraction of the run this
    worker spent stepping its partition: near 1.0 on every worker
    means the partitions genuinely computed concurrently; low values
    mean the worker sat in synchronization barriers.  On a single-core
    runner the *sum* of overlaps cannot exceed ~1 — that is the honest
    record of why parallel mode shows no wall-clock win there.
    """
    rows = []
    for partition in stats.partitions:
        row = partition.to_json()
        row["overlap"] = (
            round(partition.busy_s / stats.wall_s, 3) if stats.wall_s else None
        )
        rows.append(row)
    return rows


def run_testbed_benchmark(
    n_sites: int = 2,
    n_requests: int = 40,
    duration_s: float = 4.0,
    parallel: bool = False,
    seed: int = DEFAULT_SEED,
    profile_dir: str | None = None,
) -> ParallelBenchResult:
    """Run the *full-testbed* partitioned replay and measure wall-clock.

    Unlike :func:`run_parallel_benchmark` (synthetic approximation),
    this shards the real federated stack: every site partition builds
    its gNB switch, EGS host, Docker cluster, clients, and
    ``SiteController``; the backbone partition owns the backbone
    switch, cloud, and shared-state hub.  Serial and parallel modes of
    the same plan must produce the same ``latency_md5``.
    """
    from repro.sim.parallel.testbed import (
        build_replay,
        combined_fingerprint,
        run_replay,
        totals,
    )
    from repro.testbed.federation import FederationConfig

    config = FederationConfig(n_sites=n_sites)
    replay = build_replay(
        config, n_requests=n_requests, duration_s=duration_s, seed=seed
    )
    run = run_replay(replay, parallel=parallel, profile_dir=profile_dir)
    stats = run.stats
    counts = totals(run.results, n_sites)
    return ParallelBenchResult(
        n_sites=n_sites,
        n_clients=n_sites * config.clients_per_site,
        n_requests=n_requests,
        mode=stats.mode,
        workload="testbed",
        n_partitions=n_sites + 1,
        issued=counts["issued"],
        completed=counts["completed"],
        wall_s=round(stats.wall_s, 3),
        sim_s=round(replay.horizon_s, 6),
        rounds=stats.rounds,
        payload_rounds=stats.payload_rounds,
        events=stats.total_events,
        events_per_sec=round(stats.events_per_sec or 0.0, 1),
        requests_per_sec=round(counts["completed"] / stats.wall_s, 1),
        cross_partition_messages=stats.cross_partition_messages,
        null_messages=stats.null_messages,
        peak_flow_table=max(
            run.results[f"site{s}"]["peak_flow_table"] for s in range(n_sites)
        ),
        latency_md5=combined_fingerprint(run.results, n_sites),
        workers=_worker_rows(stats),
    )


def run_replay_benchmark(
    scale: int = 1,
    seed: int = DEFAULT_SEED,
    cluster_type: str = "docker",
    trace_allocations: bool = False,
    fault_plan: _t.Any = None,
    ops: bool = False,
) -> BenchResult:
    """Replay the bigFlows trace at ``scale``x and measure wall-clock.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) is armed against
    the testbed just before the replay; its ``at_s`` offsets are
    relative to the replay start.  Faulted runs have different latency
    fingerprints — never compare their md5s to a fault-free baseline.
    ``ops=True`` additionally runs the flow-stats collector (the REST
    app is on in either case); the fingerprint must not change.
    """
    params = scaled_params(scale)
    tb = C3Testbed(
        TestbedConfig(
            cluster_types=(cluster_type,),
            flow_stats_period_s=1.0 if ops else None,
        )
    )
    cluster = tb.docker_cluster if cluster_type == "docker" else tb.k8s_cluster
    assert cluster is not None
    services = [tb.register_template(NGINX) for _ in range(params.n_services)]
    for service in services:
        tb.prepare_created(cluster, service)
    tb.settle(1.0)

    table = tb.switch.table
    # Older trees lack native peak tracking: patch a max() into install.
    peak_tracker: list[int] = [len(table)]
    if getattr(table, "peak_size", None) is None:
        original_install = table.install

        def tracking_install(entry, now):
            original_install(entry, now)
            if len(table) > peak_tracker[0]:
                peak_tracker[0] = len(table)

        table.install = tracking_install  # type: ignore[method-assign]

    if fault_plan is not None:
        from repro.faults import Injector

        Injector(tb, fault_plan).arm()

    events = generate_trace(params, seed=seed)
    driver = TraceDriver(
        tb.env,
        tb.clients,
        services,
        requests={s.name: NGINX.request for s in services},
        recorder=tb.recorder,
    )

    sim_start = tb.env.now
    events_before = getattr(tb.env, "events_processed", None)
    alloc_peak = alloc_current = None
    if trace_allocations:
        tracemalloc.start()
    wall_start = time.perf_counter()
    summary = driver.run(events)
    wall_s = time.perf_counter() - wall_start
    if trace_allocations:
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        alloc_peak = round(peak / 1024, 1)
        alloc_current = round(current / 1024, 1)
    events_after = getattr(tb.env, "events_processed", None)

    n_events: int | None = None
    if events_before is not None and events_after is not None:
        n_events = events_after - events_before

    peak = getattr(table, "peak_size", None)
    if peak is None:
        peak = peak_tracker[0]

    return BenchResult(
        scale=scale,
        n_requests=summary.n_requests,
        n_ok=summary.n_ok,
        n_errors=summary.n_errors,
        wall_s=round(wall_s, 3),
        sim_s=round(tb.env.now - sim_start, 6),
        requests_per_sec=round(summary.n_requests / wall_s, 1),
        events=n_events,
        events_per_sec=round(n_events / wall_s, 1) if n_events else None,
        peak_flow_table=int(peak),
        final_flow_table=len(table),
        latency_md5=fingerprint_latencies(
            s.time_total for s in summary.samples
        ),
        ops_enabled=ops,
        alloc_peak_kib=alloc_peak,
        alloc_current_kib=alloc_current,
    )
