"""Wall-clock performance benchmarks (the perf trajectory baseline).

Unlike the figure-regeneration benchmarks in ``benchmarks/``, the
modules here measure *wall-clock* throughput of the simulator itself:
how fast the kernel, the switch data path, and the control loops chew
through the bigFlows trace replay.  ``tools/bench_throughput.py`` is
the CLI entry point; ``BENCH_PR1.json`` records the baseline every
later PR is measured against.
"""
