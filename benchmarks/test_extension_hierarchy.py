"""Extension H1 — the hierarchical edge continuum (§IV-A)."""

from repro.experiments import run_extension_hierarchy

from benchmarks.conftest import run_experiment


def test_extension_hierarchy(benchmark):
    result = run_experiment(benchmark, run_extension_hierarchy)
    metrics = {row[0]: row[1] for row in result.rows}

    # No request is lost.
    assert metrics["requests ok / total"] == "1708 / 1708"
    # The small near edge holds exactly its capacity.
    capacity = metrics["near-edge capacity"]
    assert metrics["services running near (small edge)"] == capacity
    # The overflow runs at the larger mid tier (all 42 covered).
    assert (
        metrics["services running near (small edge)"]
        + metrics["services running mid (larger edge)"]
        == 42
    )
    # The inward-draining BEST deployments leave nothing on the cloud.
    assert metrics["memorized flows -> cloud"] == 0
    # Latency stays in the edge band despite the constrained near tier.
    assert metrics["median time_total (s)"] < 0.05
