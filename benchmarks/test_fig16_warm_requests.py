"""Fig. 16 — request times once the instance is running."""

from repro.experiments import run_fig16_warm_requests

from benchmarks.conftest import run_experiment


def test_fig16_warm_requests(benchmark):
    result = run_experiment(benchmark, run_fig16_warm_requests)
    docker = {row[0]: row[1] for row in result.rows}
    k8s = {row[0]: row[2] for row in result.rows}

    # Short text responses arrive in ~milliseconds.
    for service in ("Asm", "Nginx", "Nginx+Py"):
        assert docker[service] < 0.01
        assert k8s[service] < 0.01
    # ResNet "requires significantly longer" (inference + 83 KiB POST).
    assert docker["ResNet"] > 20 * docker["Nginx"]
    # "no notable difference between the two clusters" — both run on
    # the same containerd on the EGS.
    for service in ("Asm", "Nginx", "ResNet", "Nginx+Py"):
        assert abs(docker[service] - k8s[service]) < 0.005
