"""Ablation A4 — layer-cache sharing across images."""

from repro.experiments import run_ablation_layer_cache

from benchmarks.conftest import run_experiment


def test_ablation_layer_cache(benchmark):
    result = run_experiment(benchmark, run_ablation_layer_cache)
    medians = {row[0]: row[1] for row in result.rows}
    cold = medians["derived image, cold cache"]
    warm = medians["derived image, base layers cached"]
    # Cached base layers make the pull substantially cheaper.
    assert warm < 0.75 * cold
    assert medians["saving (s)"] > 0
