"""Ablation A5 — data-path cost per flow-table state."""

from repro.experiments import run_ablation_flow_table

from benchmarks.conftest import run_experiment


def test_ablation_flow_table(benchmark):
    result = run_experiment(benchmark, run_ablation_flow_table)
    medians = {row[0]: row[1] for row in result.rows}
    cold = medians["cold (dispatch + deployment)"]
    installed = medians["installed flow (switch only)"]
    memory = medians["FlowMemory reinstall (packet-in)"]

    # Installed flows are the fastest path; the FlowMemory reinstall
    # only adds a controller round trip; a cold dispatch is orders of
    # magnitude above both.
    assert installed < memory < cold
    assert memory - installed < 0.01
    assert cold > 10 * memory
    # The reinstall path was served from memory, not re-dispatched.
    assert result.extras["memory_hits"] >= 5
