"""Full-trace replay: the §VI methodology end to end."""

from repro.experiments import run_trace_replay
from repro.services.catalog import NGINX

from benchmarks.conftest import run_experiment


def test_trace_replay_nginx_docker(benchmark):
    result = run_experiment(
        benchmark, run_trace_replay, template=NGINX, cluster_type="docker"
    )
    metrics = {row[0]: row[1] for row in result.rows}
    assert metrics["requests issued"] == 1708
    assert metrics["request errors"] == 0
    # Every one of the 42 services deployed exactly once.
    assert metrics["services deployed"] == 42
    # Early burst of deployments (fig. 10 measured, not just derived).
    assert metrics["max deployments in one second"] >= 3
    # Warm requests dominate: the median is milliseconds even though
    # cold requests pay the deployment.
    assert metrics["median time_total (s)"] < 0.05
    assert metrics["max time_total (s)"] > 0.3


def test_trace_replay_nginx_k8s(benchmark):
    """The same methodology on Kubernetes: every request still succeeds
    — cold ones simply wait the ~3 s orchestration (the §VII argument
    that K8s 'might be too much' for the first request)."""
    result = run_experiment(
        benchmark, run_trace_replay, template=NGINX, cluster_type="k8s"
    )
    metrics = {row[0]: row[1] for row in result.rows}
    assert metrics["requests issued"] == 1708
    assert metrics["request errors"] == 0
    assert metrics["services deployed"] == 42
    # Cold requests on K8s are seconds, not sub-second.
    assert metrics["max time_total (s)"] > 2.5
    # Warm traffic still dominates the median.
    assert metrics["median time_total (s)"] < 0.05
