"""A Ryu-like SDN controller application framework.

The paper's controller is implemented as a Ryu app; this package
provides the equivalent structure for the simulated control plane:
apps subclass :class:`SDNApp`, attach datapaths, and override the
``on_packet_in`` / ``on_flow_removed`` event handlers.  A
:class:`Datapath` wraps one switch's control channel with the
flow-mod / packet-out / barrier helpers Ryu exposes.
"""

from repro.sdnfw.app import Datapath, SDNApp

__all__ = ["Datapath", "SDNApp"]
