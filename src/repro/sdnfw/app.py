"""Controller application base class and datapath handle."""

from __future__ import annotations

import typing as _t

from repro.net.openflow.actions import Action
from repro.net.openflow.match import FlowMatch
from repro.net.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketOut,
)
from repro.net.openflow.switch import ControlChannel, OpenFlowSwitch
from repro.net.packet import Packet
from repro.sim import Environment, Event


class Datapath:
    """Controller-side handle for one switch."""

    def __init__(self, app: "SDNApp", switch: OpenFlowSwitch, channel: ControlChannel) -> None:
        self.app = app
        self.switch = switch
        self.channel = channel
        self.id = switch.datapath_id

    # -- message helpers ---------------------------------------------------

    def add_flow(
        self,
        match: FlowMatch,
        actions: _t.Sequence[Action],
        priority: int = 1,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: _t.Any = None,
        buffer_id: int | None = None,
        notify_removal: bool = True,
    ) -> None:
        """Install a flow entry (optionally releasing a buffered packet)."""
        self.channel.send_to_switch(
            FlowMod(
                command="add",
                match=match,
                actions=list(actions),
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
                buffer_id=buffer_id,
                notify_removal=notify_removal,
            )
        )

    def delete_flows(
        self, match: FlowMatch | None = None, cookie: _t.Any = None
    ) -> None:
        self.channel.send_to_switch(
            FlowMod(command="delete", match=match, cookie=cookie)
        )

    def packet_out(
        self,
        actions: _t.Sequence[Action],
        buffer_id: int | None = None,
        packet: Packet | None = None,
        in_port: int | None = None,
    ) -> None:
        self.channel.send_to_switch(
            PacketOut(
                actions=list(actions),
                buffer_id=buffer_id,
                packet=packet,
                in_port=in_port,
            )
        )

    def barrier(self) -> Event:
        """Send a barrier; the returned event fires on the reply."""
        request = BarrierRequest()
        event = self.app.env.event()
        self.app._barriers[(self.id, request.xid)] = event
        self.channel.send_to_switch(request)
        return event

    def request_flow_stats(
        self,
        match: FlowMatch | None = None,
        cookie: _t.Any = None,
        cookie_prefix: str | None = None,
    ) -> Event:
        """Query flow statistics; the event fires with the
        :class:`FlowStatsReply`."""
        request = FlowStatsRequest(
            match=match, cookie=cookie, cookie_prefix=cookie_prefix
        )
        event = self.app.env.event()
        self.app._stats_waiters[(self.id, request.xid)] = event
        self.channel.send_to_switch(request)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Datapath {self.id} ({self.switch.name})>"


class SDNApp:
    """Base class for controller applications.

    Subclasses override the ``on_*`` handlers.  Handlers run inline
    (zero simulated duration) — model controller processing cost by
    spawning processes from the handler, as the edge controller does.
    """

    def __init__(self, env: Environment, name: str = "sdn-app") -> None:
        self.env = env
        self.name = name
        self.datapaths: dict[int, Datapath] = {}
        self._barriers: dict[tuple[int, int], Event] = {}
        self._stats_waiters: dict[tuple[int, int], Event] = {}

    def attach(
        self, switch: OpenFlowSwitch, latency_s: float = 200e-6
    ) -> Datapath:
        """Connect a switch to this controller via a new channel.

        A switch belongs to exactly one controller: re-attaching a
        switch that is already bound to a *different* app is rejected
        instead of silently rebinding (the old controller would keep a
        stale datapath handle).  In the federated control plane every
        site controller owns its gNB switches exclusively.
        """
        existing = getattr(switch, "channel", None)
        bound_to = getattr(existing, "controller", None)
        if bound_to is not None and bound_to is not self:
            raise ValueError(
                f"switch {switch.name!r} is already bound to controller "
                f"{bound_to.name!r}; detach it first"
            )
        channel = ControlChannel(self.env, latency_s=latency_s)
        channel.bind(switch, self)
        switch.channel = channel
        datapath = Datapath(self, switch, channel)
        self.datapaths[switch.datapath_id] = datapath
        self.on_datapath_join(datapath)
        return datapath

    def detach(self, switch: OpenFlowSwitch) -> None:
        """Disconnect a switch, freeing it to attach elsewhere."""
        datapath = self.datapaths.pop(switch.datapath_id, None)
        if datapath is None:
            raise ValueError(
                f"switch {switch.name!r} is not attached to {self.name!r}"
            )
        switch.channel = None

    # -- dispatch ------------------------------------------------------------

    def dispatch_switch_message(
        self, switch: OpenFlowSwitch, message: _t.Any
    ) -> None:
        datapath = self.datapaths.get(switch.datapath_id)
        if datapath is None:  # pragma: no cover - defensive
            return
        if isinstance(message, PacketIn):
            self.on_packet_in(datapath, message)
        elif isinstance(message, FlowRemoved):
            self.on_flow_removed(datapath, message)
        elif isinstance(message, BarrierReply):
            event = self._barriers.pop((datapath.id, message.xid), None)
            if event is not None and not event.triggered:
                event.succeed(message)
        elif isinstance(message, FlowStatsReply):
            event = self._stats_waiters.pop((datapath.id, message.xid), None)
            if event is not None and not event.triggered:
                event.succeed(message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown switch message {message!r}")

    # -- handler hooks -------------------------------------------------------------

    def on_datapath_join(self, datapath: Datapath) -> None:
        """Called when a switch attaches.  Default: no-op."""

    def on_packet_in(self, datapath: Datapath, message: PacketIn) -> None:
        """Called on packet-in.  Default: drop (leave buffered)."""

    def on_flow_removed(self, datapath: Datapath, message: FlowRemoved) -> None:
        """Called when a flow entry is removed.  Default: no-op."""
