"""Measurement utilities: sample recorders, summary statistics, and
text rendering for the benchmark harness tables/figures."""

from repro.metrics.stats import Summary, median, percentile, summarize
from repro.metrics.recorder import MetricsRecorder, TimeSeries
from repro.metrics.render import render_histogram, render_series, render_table

__all__ = [
    "MetricsRecorder",
    "Summary",
    "TimeSeries",
    "median",
    "percentile",
    "render_histogram",
    "render_series",
    "render_table",
    "summarize",
]
