"""Plain-text rendering of tables, bar charts, and histograms.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers format them for terminal output so
``pytest benchmarks/ --benchmark-only -s`` shows figure-shaped data.
"""

from __future__ import annotations

import typing as _t


def render_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    title: str | None = None,
) -> str:
    """Format ``rows`` as a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    labels: _t.Sequence[str],
    values: _t.Sequence[float],
    unit: str = "s",
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart: one labelled bar per value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    top = max(values) or 1.0
    label_w = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, int(round(width * value / top)))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.3f} {unit}")
    return "\n".join(lines)


def render_histogram(
    counts: _t.Sequence[int],
    bucket: float,
    unit: str = "s",
    width: int = 40,
    title: str | None = None,
) -> str:
    """Vertical-ish histogram: one row per time bucket with counts."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not counts:
        return "\n".join(lines + ["(no data)"])
    top = max(counts) or 1
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / top))
        lines.append(f"{i * bucket:7.1f}{unit} | {bar} {c}")
    return "\n".join(lines)
