"""Summary statistics over latency samples.

The paper reports medians (figs. 11–16); we additionally expose the
usual percentiles so the harness can print richer rows.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

import numpy as np


def median(samples: _t.Sequence[float]) -> float:
    """Median of ``samples``; raises on empty input."""
    if not samples:
        raise ValueError("median of empty sample set")
    return float(np.median(np.asarray(samples, dtype=float)))


def percentile(samples: _t.Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) using linear interpolation."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a latency distribution (seconds)."""

    count: int
    mean: float
    median: float
    p25: float
    p75: float
    p95: float
    minimum: float
    maximum: float
    stddev: float

    def as_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"n={self.count} median={self.median * 1e3:.1f}ms "
            f"mean={self.mean * 1e3:.1f}ms "
            f"p95={self.p95 * 1e3:.1f}ms "
            f"range=[{self.minimum * 1e3:.1f}, {self.maximum * 1e3:.1f}]ms"
        )


def summarize(samples: _t.Sequence[float]) -> Summary:
    """Compute a :class:`Summary` over ``samples``."""
    if not samples:
        raise ValueError("summarize of empty sample set")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p25=float(np.percentile(arr, 25)),
        p75=float(np.percentile(arr, 75)),
        p95=float(np.percentile(arr, 95)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        stddev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )
