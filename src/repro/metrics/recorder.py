"""Sample recorders used across the simulation.

Every component that wants to report a measurement pushes
``(name, value)`` samples into a shared :class:`MetricsRecorder`; the
experiment harness reads them back as summaries or raw arrays.
"""

from __future__ import annotations

import collections
import typing as _t

from repro.metrics.stats import Summary, summarize


class TimeSeries:
    """(timestamp, value) pairs recorded in simulation order."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def bucket_counts(self, bucket: float, horizon: float) -> list[int]:
        """Count events per ``bucket``-second bin over ``[0, horizon)``.

        Used to regenerate the figure-9/10 time distributions.
        """
        if bucket <= 0:
            raise ValueError(f"bucket must be positive, got {bucket}")
        n = max(1, int(horizon / bucket + 0.5))
        counts = [0] * n
        for t in self._times:
            idx = int(t / bucket)
            if 0 <= idx < n:
                counts[idx] += 1
        return counts


class MetricsRecorder:
    """Collects named scalar samples and named time series."""

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = collections.defaultdict(list)
        self._series: dict[str, TimeSeries] = collections.defaultdict(TimeSeries)
        self._counters: collections.Counter[str] = collections.Counter()

    # -- scalar samples ---------------------------------------------------

    def record(self, name: str, value: float) -> None:
        """Append a scalar sample under ``name``."""
        self._samples[name].append(float(value))

    def samples(self, name: str) -> list[float]:
        """All samples recorded under ``name`` (empty if none)."""
        return list(self._samples.get(name, ()))

    def summary(self, name: str) -> Summary:
        """Summary statistics for ``name``; raises if no samples exist."""
        values = self._samples.get(name)
        if not values:
            raise KeyError(f"no samples recorded under {name!r}")
        return summarize(values)

    def names(self) -> list[str]:
        return sorted(self._samples)

    # -- time series --------------------------------------------------------

    def mark(self, name: str, time: float, value: float = 1.0) -> None:
        """Append an event to the time series ``name``."""
        self._series[name].append(time, value)

    def series(self, name: str) -> TimeSeries:
        return self._series[name]

    # -- counters ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named event counter (breaker transitions,
        retries, ... — things where only the tally matters)."""
        self._counters[name] += n

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        self._samples.clear()
        self._series.clear()
        self._counters.clear()

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold another recorder's samples into this one."""
        for name, values in other._samples.items():
            self._samples[name].extend(values)
        for name, series in other._series.items():
            mine = self._series[name]
            for t, v in zip(series._times, series._values):
                mine.append(t, v)
        self._counters.update(other._counters)
