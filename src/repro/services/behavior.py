"""Container behaviour models and the behaviour registry.

The YAML service definitions reference images by name; the
:class:`BehaviorRegistry` maps each image reference to its behaviour
(boot time, request handler) so the annotator can attach runnable
models to the container definitions it produces.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.net.packet import HTTPRequest, HTTPResponse
from repro.sim import Environment, Resource


class EdgeServiceApp:
    """Generic request handler: fixed service time, fixed response size.

    ``workers`` bounds the requests processed concurrently (nginx
    worker processes, TF-Serving's intra-op thread pool): beyond it,
    requests queue, which is what makes a compute-bound service
    saturate under load.  ``None`` means unbounded concurrency.
    """

    def __init__(
        self,
        env: Environment,
        handle_time_s: float = 0.0,
        response_bytes: int = 120,
        status: int = 200,
        workers: int | None = None,
    ) -> None:
        self.env = env
        self.handle_time_s = handle_time_s
        self.response_bytes = response_bytes
        self.status = status
        self.requests_handled = 0
        self._workers = (
            Resource(env, workers) if workers is not None else None
        )

    def handle(self, request: HTTPRequest):
        if self._workers is None:
            if self.handle_time_s:
                yield self.env.timeout(self.handle_time_s)
            else:
                yield self.env.timeout(0.0)
        else:
            with self._workers.request() as slot:
                yield slot
                yield self.env.timeout(self.handle_time_s)
        self.requests_handled += 1
        return HTTPResponse(status=self.status, body_bytes=self.response_bytes)


@dataclasses.dataclass(frozen=True)
class AppFactory:
    """Picklable factory for :class:`EdgeServiceApp` instances.

    Deployment plans (and, federated, the replicated service records
    that carry them) cross the fork boundary of the partitioned kernel,
    so the factory must pickle by value — a frozen dataclass instead of
    a closure.
    """

    handle_time_s: float
    response_bytes: int = 120
    workers: int | None = None

    def __call__(self, env: Environment) -> EdgeServiceApp:
        return EdgeServiceApp(
            env,
            self.handle_time_s,
            self.response_bytes,
            workers=self.workers,
        )


@dataclasses.dataclass(frozen=True)
class ContainerBehavior:
    """Runtime behaviour of one image."""

    #: Application boot time after the container process spawns.
    boot_time_s: float
    #: Handler service time per request (None: not an HTTP server).
    handle_time_s: float | None = None
    #: Response body size for the handler.
    response_bytes: int = 120
    #: Concurrent requests the app sustains (None: unbounded).
    workers: int | None = None

    def app_factory(self) -> _t.Callable[[Environment], EdgeServiceApp] | None:
        if self.handle_time_s is None:
            return None
        return AppFactory(
            self.handle_time_s, self.response_bytes, self.workers
        )


class BehaviorRegistry:
    """image reference -> :class:`ContainerBehavior`."""

    def __init__(self) -> None:
        self._behaviors: dict[str, ContainerBehavior] = {}

    def register(self, reference: str, behavior: ContainerBehavior) -> None:
        self._behaviors[reference] = behavior

    def get(self, reference: str) -> ContainerBehavior:
        behavior = self._behaviors.get(reference)
        if behavior is None:
            raise KeyError(f"no behaviour registered for image {reference!r}")
        return behavior

    def known(self, reference: str) -> bool:
        return reference in self._behaviors
