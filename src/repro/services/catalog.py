"""The paper's edge-service catalog (Table I).

=========  ==================================  =============  ==========  ====
Service    Image(s)                            Size / Layers  Containers  HTTP
=========  ==================================  =============  ==========  ====
Asm        josefhammer/web-asm:amd64           6.18 KiB / 1   1           GET
Nginx      nginx:1.23.2                        135 MiB / 6    1           GET
ResNet     gcr.io/tensorflow-serving/resnet    308 MiB / 9    1           POST
Nginx+Py   nginx:1.23.2 + env-writer-py        181 MiB / 7    2           GET
=========  ==================================  =============  ==========  ====

A :class:`ServiceTemplate` bundles everything an experiment needs: the
YAML service-definition (as the developer would write it), the image
models, behaviours, and the request profile clients use.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.containers.image import ImageSpec, KIB, MIB
from repro.net.packet import HTTPRequest
from repro.services.behavior import BehaviorRegistry, ContainerBehavior
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION


@dataclasses.dataclass(frozen=True)
class ServiceTemplate:
    """One catalog entry: everything needed to register + exercise it."""

    key: str
    title: str
    images: tuple[ImageSpec, ...]
    #: YAML service definition, as a developer would write it (§V).
    definition_yaml: str
    #: The request clients send (GET for the web services, ResNet POST).
    request: HTTPRequest
    http_method: str

    @property
    def total_bytes(self) -> int:
        return sum(image.total_bytes for image in self.images)

    @property
    def layer_count(self) -> int:
        return sum(image.layer_count for image in self.images)

    @property
    def container_count(self) -> int:
        return len(self.images)


# -- image models (sizes and layer counts straight from Table I) -----------

ASM_IMAGE = ImageSpec.synthesize(
    "josefhammer/web-asm:amd64", int(6.18 * KIB), 1
)
NGINX_IMAGE = ImageSpec.synthesize("nginx:1.23.2", 135 * MIB, 6)
RESNET_IMAGE = ImageSpec.synthesize(
    "gcr.io/tensorflow-serving/resnet", 308 * MIB, 9
)
#: Nginx+Py totals 181 MiB / 7 layers; nginx contributes 135 MiB / 6,
#: so the Python app image is 46 MiB in a single layer.
ENVWRITER_IMAGE = ImageSpec.synthesize(
    "josefhammer/env-writer-py", 46 * MIB, 1
)


def _yaml(containers: str) -> str:
    return (
        "apiVersion: apps/v1\n"
        "kind: Deployment\n"
        "spec:\n"
        "  template:\n"
        "    spec:\n"
        "      containers:\n" + containers
    )


ASM = ServiceTemplate(
    key="asm",
    title="Asm",
    images=(ASM_IMAGE,),
    definition_yaml=_yaml(
        "      - name: web\n"
        "        image: josefhammer/web-asm:amd64\n"
        "        ports:\n"
        "        - containerPort: 8080\n"
    ),
    request=HTTPRequest("GET", "/hello.txt", body_bytes=0),
    http_method="GET",
)

NGINX = ServiceTemplate(
    key="nginx",
    title="Nginx",
    images=(NGINX_IMAGE,),
    definition_yaml=_yaml(
        "      - name: web\n"
        "        image: nginx:1.23.2\n"
        "        ports:\n"
        "        - containerPort: 80\n"
    ),
    request=HTTPRequest("GET", "/index.html", body_bytes=0),
    http_method="GET",
)

RESNET = ServiceTemplate(
    key="resnet",
    title="ResNet",
    images=(RESNET_IMAGE,),
    definition_yaml=_yaml(
        "      - name: serving\n"
        "        image: gcr.io/tensorflow-serving/resnet\n"
        "        ports:\n"
        "        - containerPort: 8501\n"
    ),
    request=HTTPRequest(
        "POST",
        "/v1/models/resnet:predict",
        body_bytes=DEFAULT_CALIBRATION.resnet_request_bytes,
    ),
    http_method="POST",
)

NGINX_PY = ServiceTemplate(
    key="nginx_py",
    title="Nginx+Py",
    images=(NGINX_IMAGE, ENVWRITER_IMAGE),
    definition_yaml=_yaml(
        "      - name: web\n"
        "        image: nginx:1.23.2\n"
        "        ports:\n"
        "        - containerPort: 80\n"
        "        volumeMounts:\n"
        "        - name: content\n"
        "          mountPath: /usr/share/nginx/html\n"
        "      - name: env-writer\n"
        "        image: josefhammer/env-writer-py\n"
        "        env:\n"
        "        - name: WRITE_INTERVAL\n"
        "          value: \"1\"\n"
        "        volumeMounts:\n"
        "        - name: content\n"
        "          mountPath: /content\n"
    ),
    request=HTTPRequest("GET", "/index.html", body_bytes=0),
    http_method="GET",
)

#: The four paper services in Table I order.
PAPER_SERVICES: tuple[ServiceTemplate, ...] = (ASM, NGINX, RESNET, NGINX_PY)


def build_catalog(
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[dict[str, ImageSpec], BehaviorRegistry]:
    """Image library + behaviour registry for the paper's services."""
    images = {
        image.reference: image
        for image in (ASM_IMAGE, NGINX_IMAGE, RESNET_IMAGE, ENVWRITER_IMAGE)
    }
    behaviors = BehaviorRegistry()
    behaviors.register(
        ASM_IMAGE.reference,
        ContainerBehavior(
            boot_time_s=calibration.asm_boot_s,
            handle_time_s=calibration.static_file_handle_s,
            response_bytes=calibration.text_response_bytes,
        ),
    )
    behaviors.register(
        NGINX_IMAGE.reference,
        ContainerBehavior(
            boot_time_s=calibration.nginx_boot_s,
            handle_time_s=calibration.static_file_handle_s,
            response_bytes=calibration.text_response_bytes,
        ),
    )
    behaviors.register(
        RESNET_IMAGE.reference,
        ContainerBehavior(
            boot_time_s=calibration.resnet_boot_s,
            handle_time_s=calibration.resnet_infer_s,
            response_bytes=calibration.resnet_response_bytes,
            # TF-Serving on the EGS: a small pool of inference workers;
            # concurrent classifications queue behind it.
            workers=4,
        ),
    )
    behaviors.register(
        ENVWRITER_IMAGE.reference,
        ContainerBehavior(
            boot_time_s=calibration.envwriter_boot_s,
            handle_time_s=None,  # not an HTTP server
        ),
    )
    return images, behaviors


def template_by_key(key: str) -> ServiceTemplate:
    """Look up a catalog entry by its short key."""
    for template in PAPER_SERVICES:
        if template.key == key:
            return template
    raise KeyError(f"unknown service template {key!r}")
