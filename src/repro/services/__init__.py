"""Edge service models: the paper's Table I catalog and calibration.

Each edge service couples

* an **image model** (size and layer count exactly as Table I reports),
* a **behaviour model** (application boot time and request-handling
  latency, calibrated in :mod:`repro.services.calibration`), and
* an **HTTP profile** (GET with tiny payload, or ResNet's 83 KiB POST).
"""

from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.services.catalog import (
    ASM,
    NGINX,
    NGINX_PY,
    PAPER_SERVICES,
    RESNET,
    ServiceTemplate,
    build_catalog,
)
from repro.services.behavior import BehaviorRegistry, ContainerBehavior, EdgeServiceApp

__all__ = [
    "ASM",
    "BehaviorRegistry",
    "Calibration",
    "ContainerBehavior",
    "DEFAULT_CALIBRATION",
    "EdgeServiceApp",
    "NGINX",
    "NGINX_PY",
    "PAPER_SERVICES",
    "RESNET",
    "ServiceTemplate",
    "build_catalog",
]
