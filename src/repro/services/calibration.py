"""Calibration constants mapping paper measurements to model inputs.

Every timing constant of the reproduction that is *fitted* (rather
than structural) lives here, together with the paper observation it
targets.  Changing a value here re-calibrates every experiment
consistently.

Paper targets (medians):

* fig. 11 — Docker scale-up < 1 s for Asm/Nginx, K8s ≈ 3 s; ResNet
  significantly slower on both; Nginx+Py slower than Nginx.
* fig. 12 — Create adds ≈ 100 ms.
* fig. 13 — pulls: Asm ≪ Nginx < Nginx+Py < ResNet; private registry
  saves ≈ 1.5–2 s.
* fig. 14/15 — ResNet's wait-until-ready is > ¼ of its total.
* fig. 16 — warm requests ≈ 1 ms except ResNet (inference-bound).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Calibration:
    """Application-level latency constants (seconds unless noted)."""

    # -- application boot times (scale-up wait contributors, figs. 14/15)
    #: asmttpd: a few hundred KB of assembly, effectively instant.
    asm_boot_s: float = 0.004
    #: nginx: parse config, bind socket, fork workers.
    nginx_boot_s: float = 0.060
    #: TensorFlow Serving: load + warm the ResNet50 SavedModel.
    resnet_boot_s: float = 2.400
    #: Python env-writer: interpreter start + imports + first write.
    envwriter_boot_s: float = 0.380

    # -- request handling (fig. 16)
    #: Serving a short plain-text file from memory.
    static_file_handle_s: float = 0.0004
    #: One ResNet50 classification on CPU (TF Serving, batch of 1).
    resnet_infer_s: float = 0.120

    # -- HTTP payload sizes (bytes)
    #: Short plain-text responses of the Asm/Nginx services.
    text_response_bytes: int = 120
    #: The cat picture POSTed for classification (83 KiB, §VI).
    resnet_request_bytes: int = 83 * 1024
    #: JSON classification result.
    resnet_response_bytes: int = 600

    # -- SDN controller behaviour
    #: Port-polling interval of the readiness check (§VI: "the
    #: controller continuously tests if the respective port is open").
    port_poll_interval_s: float = 0.020
    #: Controller processing per packet-in (Ryu app, Python).
    controller_processing_s: float = 0.0008

    # -- flow management (§V)
    #: Idle timeout of switch flow entries (kept low by design).
    switch_idle_timeout_s: float = 10.0
    #: Idle timeout of FlowMemory entries (longer; drives scale-down).
    memory_idle_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be >= 0")


DEFAULT_CALIBRATION = Calibration()
