"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — a counted semaphore (e.g. CPU slots on an edge
  node, concurrent layer downloads at a registry).
* :class:`Store` — an unbounded-or-capacitated FIFO of Python objects
  (e.g. a switch's packet queue, the API server's watch channels).
* :class:`PriorityStore` — a store that yields the smallest item first.
* :class:`Container` — a continuous level (e.g. bytes of disk space).

All acquisition objects are events; a process obtains the resource by
yielding them.  ``Request``/``Release`` double as context managers so
the canonical usage reads::

    with resource.request() as req:
        yield req
        ... critical section ...
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request (no-op once granted)."""
        if not self.triggered:
            try:
                self.resource._waiting.remove(self)
            except ValueError:  # pragma: no cover - already granted/cancelled
                pass

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A semaphore with ``capacity`` slots, granted in FIFO order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of unfulfilled requests."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        self._users.discard(request)
        self._grant()

    def _do_request(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.pop(0)
            self._users.add(nxt)
            nxt.succeed(nxt)


class StorePut(Event):
    """A pending insertion into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: _t.Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    """A pending retrieval from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._gets.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw an unfulfilled get (used by timeout races)."""
        if not self.triggered:
            # Locate the owning store lazily via linear scan is avoided:
            # the store prunes cancelled gets on dispatch instead.
            self._defused = True


class Store:
    """A FIFO buffer of items with optional capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: list[_t.Any] = []
        self._puts: list[StorePut] = []
        self._gets: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: _t.Any) -> StorePut:
        """Insert ``item``; fires once there is room."""
        return StorePut(self, item)

    def put_nowait(self, item: _t.Any) -> None:
        """Insert ``item`` immediately, without a :class:`StorePut`.

        Fire-and-forget insertions into an unbounded store (nobody
        yields the put, and it can never block) otherwise pay for a
        put event that is scheduled, popped, and runs zero callbacks.
        Raises :class:`RuntimeError` if the store is full — callers
        that can block must use :meth:`put`.
        """
        if len(self.items) >= self.capacity:
            raise RuntimeError("put_nowait on a full store")
        self._store_item(item)
        self._dispatch()

    def get(self) -> StoreGet:
        """Remove and return the next item; fires once one exists."""
        return StoreGet(self)

    # -- internals -------------------------------------------------------

    def _store_item(self, item: _t.Any) -> None:
        self.items.append(item)

    def _take_item(self) -> _t.Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.pop(0)
                self._store_item(put.item)
                put.succeed(None)
                progress = True
            # Serve gets while items exist (skipping cancelled ones).
            while self._gets and self.items:
                get = self._gets.pop(0)
                if get.triggered or get.defused:
                    continue
                get.succeed(self._take_item())
                progress = True


class PriorityStore(Store):
    """A store that always yields its smallest item (heap order)."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._tiebreak = count()

    def _store_item(self, item: _t.Any) -> None:
        heapq.heappush(self.items, (item, next(self._tiebreak)))

    def _take_item(self) -> _t.Any:
        return heapq.heappop(self.items)[0]

    def _dispatch(self) -> None:  # items are (item, seq) tuples internally
        super()._dispatch()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._puts.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._gets.append(self)
        container._dispatch()


class Container:
    """A continuous quantity between 0 and ``capacity``."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: list[ContainerPut] = []
        self._gets: list[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires once it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires once the level suffices."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._puts and self._level + self._puts[0].amount <= self.capacity:
                put = self._puts.pop(0)
                self._level += put.amount
                put.succeed(None)
                progress = True
            if self._gets and self._gets[0].amount <= self._level:
                get = self._gets.pop(0)
                self._level -= get.amount
                get.succeed(None)
                progress = True
