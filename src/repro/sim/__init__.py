"""Deterministic discrete-event simulation kernel.

This package provides the event loop that the whole reproduction runs on:
the network substrate, the container runtimes, the Kubernetes control
loops, and the SDN controller are all processes scheduled by a single
:class:`~repro.sim.environment.Environment`.

The design follows the classic generator-based process-interaction style
(as popularised by SimPy) but is implemented from scratch so the
reproduction is fully self-contained:

* :class:`Environment` — the event loop with a deterministic heap
  (ties broken by priority, then by schedule order).
* :class:`Event` — one-shot occurrences that carry a value or an error.
* :class:`Process` — a generator wrapped so each ``yield``\\ ed event
  suspends it until the event fires.
* :class:`Timeout` — an event that fires after a simulated delay.
* :class:`AllOf` / :class:`AnyOf` — condition events for fan-in.
* :class:`Resource`, :class:`Store`, :class:`PriorityStore`,
  :class:`Container` — shared-resource primitives.

Simulated time is a ``float`` in **seconds**; determinism does not depend
on float tie-breaking because every scheduled event carries a strictly
increasing sequence number.
"""

from repro.sim.events import AllOf, AnyOf, Condition, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.environment import Environment, SimulationError
from repro.sim.resources import Container, PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
