"""The simulation event loop."""

from __future__ import annotations

import gc
import heapq
import typing as _t
from itertools import count

from repro.sim.events import Event, NORMAL, PENDING, Timeout
from repro.sim.process import Process

#: Guard delays at or above this many seconds go to the deadline
#: side-heap (cancellable, off the main heap); shorter ones stay plain
#: Timeouts with exact legacy scheduling.  The split keeps short,
#: frequently-*firing* test timeouts byte-identical while the long
#: almost-never-firing request guards (120 s by default) stop
#: occupying the main heap — at 50x replay tens of thousands of live
#: guard timeouts otherwise sit in the heap at once, and their depth
#: taxes every push and pop of the run.
DEADLINE_SIDE_HEAP_MIN_S = 30.0


class SimulationError(RuntimeError):
    """Raised when the event loop encounters an unrecoverable state."""


class Deadline(Event):
    """A cancellable guard timeout living in the deadline side-heap.

    Unlike :class:`Timeout`, creation pushes nothing onto the main
    event heap: the environment tracks the deadline in a side-heap and
    keeps a single armed wakeup for the earliest one.  ``cancel()``
    (the normal outcome — the guarded operation won the race) simply
    flags the entry; it is purged when it surfaces at the side-heap
    top.  A deadline that does fire succeeds through the regular event
    path at its exact scheduled time.
    """

    __slots__ = ("_dvalue", "cancelled")

    def __init__(self, env: "Environment", value: _t.Any = None) -> None:
        super().__init__(env)
        self._dvalue = value
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EmptySchedule(Exception):
    """Internal: the event heap ran dry."""


class _StopRun(Exception):
    """Internal: carries the value of the ``until`` event out of run()."""


class Environment:
    """A deterministic discrete-event environment.

    Time is a float in seconds, starting at ``initial_time``.  The event
    heap orders by ``(time, priority, sequence)``; the sequence number is
    a strictly increasing counter, so simultaneous events always run in
    the order they were scheduled — the source of the kernel's
    reproducibility.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Heap entries are (time, priority, seq, event) 4-tuples for
        # real events, or (time, priority, seq, fn, args) 5-tuples for
        # the slim scheduled callbacks of call_at / call_later.  The
        # strictly-increasing seq guarantees comparisons never reach
        # the heterogeneous tail elements, so the two shapes can share
        # one heap; the loop discriminates by tuple length.
        self._queue: list[tuple] = []
        self._seq = count()
        self._active_process: Process | None = None
        #: Total heap entries processed since construction — the
        #: denominator of the events/sec throughput metric.
        self.events_processed = 0
        # Deadline side-heap: (time, local_seq, Deadline) entries with
        # their own tie-break counter, plus a single armed main-heap
        # wakeup for the earliest entry (generation-tagged so a
        # superseded wakeup turns into a no-op).
        self._deadlines: list[tuple] = []
        self._deadline_seq = count()
        self._deadline_gen = 0
        self._deadline_wake_at: float | None = None

    # -- inspection ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def deadline(self, delay: float, value: _t.Any = None) -> Event:
        """A guard timeout: like :meth:`timeout`, but cancellable.

        Use for deadlines that usually do *not* fire (request guards,
        watchdogs): call ``.cancel()`` on the returned event once the
        guarded operation wins the race and the deadline stops costing
        anything.  Long delays are parked in a side-heap so they never
        inflate the main event heap; short ones fall back to a plain
        :class:`Timeout` (whose base-class ``cancel()`` is a no-op)
        with exact legacy scheduling — see ``DEADLINE_SIDE_HEAP_MIN_S``.
        """
        if delay < DEADLINE_SIDE_HEAP_MIN_S:
            return Timeout(self, delay, value)
        event = Deadline(self, value)
        at = self._now + delay
        heapq.heappush(
            self._deadlines, (at, next(self._deadline_seq), event)
        )
        wake = self._deadline_wake_at
        if wake is None or at < wake:
            self._deadline_wake_at = at
            self._deadline_gen += 1
            self.call_at(at, self._deadline_fire, self._deadline_gen)
        return event

    def _deadline_fire(self, gen: int) -> None:
        if gen != self._deadline_gen:
            return  # superseded by an earlier arming
        self._deadline_wake_at = None
        heap = self._deadlines
        now = self._now
        pop = heapq.heappop
        while heap and heap[0][0] <= now:
            event = pop(heap)[2]
            if not event.cancelled and event._value is PENDING:
                event.succeed(event._dvalue)
        while heap and heap[0][2].cancelled:
            pop(heap)
        if heap:
            at = heap[0][0]
            self._deadline_wake_at = at
            self._deadline_gen += 1
            self.call_at(at, self._deadline_fire, self._deadline_gen)

    def process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def run_process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: str | None = None,
    ) -> _t.Any:
        """Convenience: start ``generator`` and run until it finishes,
        returning its value (the ``env.run(until=env.process(...))``
        idiom in one call)."""
        return self.run(until=self.process(generator, name=name))

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Push ``event`` onto the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def schedule_at(
        self,
        event: Event,
        time: float,
        priority: int = NORMAL,
    ) -> None:
        """Push ``event`` onto the heap at absolute simulated ``time``.

        Distinct from ``schedule(delay=time - now)``: float arithmetic
        is not associative, so re-deriving a delay and adding it back
        would not always land on ``time`` exactly.  Deadline-driven
        code (switch expiry wakeups, readiness waits) uses this to hit
        the *precise* tick times the old fixed-interval loops produced.
        """
        if time < self._now:
            raise ValueError(f"time {time!r} lies in the past (now={self._now})")
        heapq.heappush(self._queue, (time, priority, next(self._seq), event))

    def timeout_at(self, time: float, value: _t.Any = None) -> Event:
        """An event firing at absolute simulated ``time`` (yieldable)."""
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, time)
        return event

    def call_at(
        self,
        time: float,
        fn: _t.Callable[..., None],
        *args: _t.Any,
    ) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time`` (lightweight).

        Schedules a single slim heap entry — a bare tuple, no Event,
        no Process, not even a wrapper object — so hot paths (switch
        pipelines, link hops, watch fan-out, expiry wakeups) can
        schedule fire-and-forget work at the cost of one heap push.
        Carrying ``args`` on the entry lets call sites pass a bound
        method plus its operands instead of allocating a closure per
        scheduled call.  ``fn`` must not yield; it runs to completion
        inside the event loop, and an exception escaping it surfaces
        as :class:`SimulationError` (chained to the original).
        Raises ``ValueError`` when ``time`` lies in the past.
        """
        if time < self._now:
            raise ValueError(f"time {time!r} lies in the past (now={self._now})")
        heapq.heappush(
            self._queue, (time, NORMAL, next(self._seq), fn, args)
        )

    def call_later(
        self,
        delay: float,
        fn: _t.Callable[..., None],
        *args: _t.Any,
    ) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds (lightweight).

        The relative-delay companion of :meth:`call_at`; same slim
        heap entry, same error semantics.  Raises ``ValueError`` on a
        negative delay.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, NORMAL, next(self._seq), fn, args)
        )

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the next event on the heap."""
        try:
            item = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = item[0]
        self.events_processed += 1

        if len(item) == 5:
            # Slim path: no callback list, no value, no defuse protocol.
            try:
                item[3](*item[4])
            except (_StopRun, SimulationError):
                raise
            except Exception as exc:
                raise SimulationError(
                    f"scheduled callback {item[3]!r} raised {exc!r}"
                ) from exc
            return
        event = item[3]

        # Mark processed *before* running callbacks so conditions and
        # late registrations observe a consistent state.
        callbacks, event.callbacks = event.callbacks, None
        for callback in _t.cast(list, callbacks):
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it loudly instead of
            # silently dropping the exception.
            exc = _t.cast(BaseException, event._value)
            raise exc

    def run_below(self, limit: float) -> None:
        """Process every event with time strictly below ``limit``.

        The parallel kernel's inner loop: a partition advancing to its
        conservative horizon calls this once per synchronization round,
        so unlike :meth:`run` it allocates no stop event, registers no
        callback, and leaves the gc thresholds alone (the round driver
        brackets the *whole* run instead, amortizing the collector
        dance across thousands of rounds).  Events stamped exactly at
        ``limit`` stay on the heap — the same boundary rule as
        ``run(until=limit)``, whose urgent stop event also fires ahead
        of same-time work — which is what keeps a cross-partition
        packet arriving exactly at the lookahead horizon ordered
        identically in serial and parallel executions.  The clock is
        left at the last processed event; it does NOT jump to
        ``limit``.
        """
        queue = self._queue
        pop = heapq.heappop
        events = self.events_processed
        try:
            while queue and queue[0][0] < limit:
                item = pop(queue)
                self._now = item[0]
                events += 1

                if len(item) == 5:
                    try:
                        item[3](*item[4])
                    except SimulationError:
                        raise
                    except Exception as exc:
                        raise SimulationError(
                            f"scheduled callback {item[3]!r} raised {exc!r}"
                        ) from exc
                    continue

                event = item[3]
                callbacks, event.callbacks = event.callbacks, None
                for callback in _t.cast(list, callbacks):
                    callback(event)

                if not event._ok and not event._defused:
                    raise _t.cast(BaseException, event._value)
        finally:
            self.events_processed = events

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap is empty; a float — run until
            that simulated time; an :class:`Event` — run until it fires
            and return its value.
        """
        stop: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    return stop.value  # already processed
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Urgent so the deadline fires before same-time events.
                heapq.heappush(self._queue, (at, -1, next(self._seq), stop))
                stop.callbacks.append(self._stop_callback)

        # The loop below is step() unrolled with the hot locals bound
        # once: at millions of events per run, the per-event method
        # call, attribute reloads, and counter writes are measurable.
        # Any semantic change here must be mirrored in step().
        #
        # Cyclic gc is the other per-event tax: the default gen-0
        # threshold (700) makes the collector scan the young generation
        # tens of thousands of times per run, yet nearly all per-event
        # garbage (heap tuples, events, segments) dies by refcount and
        # the few real cycles are broken explicitly at disposal (see
        # route_cache.Route.invalidate).  Raising the threshold for the
        # duration of the loop removes ~15% of wall-clock; the old
        # thresholds are restored on every exit path so code outside
        # run() observes stock collector behaviour.
        queue = self._queue
        pop = heapq.heappop
        events = self.events_processed
        gc_thresholds = gc.get_threshold()
        gc.set_threshold(1_000_000, *gc_thresholds[1:])
        try:
            while True:
                try:
                    item = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                self._now = item[0]
                events += 1

                if len(item) == 5:
                    try:
                        item[3](*item[4])
                    except (_StopRun, SimulationError):
                        raise
                    except Exception as exc:
                        raise SimulationError(
                            f"scheduled callback {item[3]!r} raised {exc!r}"
                        ) from exc
                    continue

                event = item[3]
                callbacks, event.callbacks = event.callbacks, None
                for callback in _t.cast(list, callbacks):
                    callback(event)

                if not event._ok and not event._defused:
                    raise _t.cast(BaseException, event._value)
        except _StopRun as marker:
            return marker.args[0]
        except EmptySchedule:
            if stop is not None and not stop.processed:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run(until=event): schedule ran dry before the event fired"
                    ) from None
                # Time-limited run that ran out of events early: simply
                # advance the clock to the requested time.
                self._now = float(_t.cast(float, until))
            return None
        finally:
            # One write on exit instead of one per event; covers every
            # path out of the loop, including escaping exceptions.
            self.events_processed = events
            gc.set_threshold(*gc_thresholds)

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise _StopRun(event._value)
        raise _t.cast(BaseException, event._value)
