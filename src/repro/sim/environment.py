"""The simulation event loop."""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.sim.events import Event, NORMAL, Timeout
from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised when the event loop encounters an unrecoverable state."""


class EmptySchedule(Exception):
    """Internal: the event heap ran dry."""


class _StopRun(Exception):
    """Internal: carries the value of the ``until`` event out of run()."""


class _Callback:
    """A slim heap entry that runs a plain function at its scheduled time.

    Duck-types just enough of the :class:`Event` protocol for
    :meth:`Environment.step` — a ``callbacks`` list plus the class-level
    ``_ok`` / ``_defused`` flags — while skipping the value, waiter, and
    Process machinery entirely.  Hot paths (switch pipelines, watch
    fan-out, expiry wakeups) use it via :meth:`Environment.call_at` /
    :meth:`Environment.call_later` to schedule one-shot work with a
    single small allocation instead of the ``Event`` + ``Timeout`` +
    ``Process`` + ``_Initialize`` chain a generator-based timer costs.

    Not awaitable: a ``_Callback`` never carries a value and cannot be
    yielded from a process.
    """

    __slots__ = ("callbacks",)
    _ok = True
    _defused = False

    def __init__(self, fn: _t.Callable[[], None]) -> None:
        # step() invokes each callback with the heap entry itself;
        # adapt the zero-argument fn to that shape.
        self.callbacks: list | None = [lambda _entry: fn()]


class Environment:
    """A deterministic discrete-event environment.

    Time is a float in seconds, starting at ``initial_time``.  The event
    heap orders by ``(time, priority, sequence)``; the sequence number is
    a strictly increasing counter, so simultaneous events always run in
    the order they were scheduled — the source of the kernel's
    reproducibility.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None
        #: Total heap entries processed since construction — the
        #: denominator of the events/sec throughput metric.
        self.events_processed = 0

    # -- inspection ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create an event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def run_process(
        self,
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: str | None = None,
    ) -> _t.Any:
        """Convenience: start ``generator`` and run until it finishes,
        returning its value (the ``env.run(until=env.process(...))``
        idiom in one call)."""
        return self.run(until=self.process(generator, name=name))

    # -- scheduling ------------------------------------------------------

    def schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Push ``event`` onto the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def schedule_at(
        self,
        event: Event,
        time: float,
        priority: int = NORMAL,
    ) -> None:
        """Push ``event`` onto the heap at absolute simulated ``time``.

        Distinct from ``schedule(delay=time - now)``: float arithmetic
        is not associative, so re-deriving a delay and adding it back
        would not always land on ``time`` exactly.  Deadline-driven
        code (switch expiry wakeups, readiness waits) uses this to hit
        the *precise* tick times the old fixed-interval loops produced.
        """
        if time < self._now:
            raise ValueError(f"time {time!r} lies in the past (now={self._now})")
        heapq.heappush(self._queue, (time, priority, next(self._seq), event))

    def timeout_at(self, time: float, value: _t.Any = None) -> Event:
        """An event firing at absolute simulated ``time`` (yieldable)."""
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, time)
        return event

    def call_at(
        self,
        time: float,
        fn: _t.Callable[[], None],
        priority: int = NORMAL,
    ) -> None:
        """Run ``fn()`` at absolute simulated ``time`` (lightweight).

        Schedules a single slim heap entry instead of a process; use
        for fire-and-forget work on hot paths.  ``fn`` must not yield.
        """
        self.schedule_at(_t.cast(Event, _Callback(fn)), time, priority)

    def call_later(
        self,
        delay: float,
        fn: _t.Callable[[], None],
        priority: int = NORMAL,
    ) -> None:
        """Run ``fn()`` after ``delay`` seconds (lightweight)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, next(self._seq), _Callback(fn)),
        )

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the next event on the heap."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_processed += 1

        # Mark processed *before* running callbacks so conditions and
        # late registrations observe a consistent state.
        callbacks, event.callbacks = event.callbacks, None
        for callback in _t.cast(list, callbacks):
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it loudly instead of
            # silently dropping the exception.
            exc = _t.cast(BaseException, event._value)
            raise exc

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap is empty; a float — run until
            that simulated time; an :class:`Event` — run until it fires
            and return its value.
        """
        stop: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    return stop.value  # already processed
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # Urgent so the deadline fires before same-time events.
                heapq.heappush(self._queue, (at, -1, next(self._seq), stop))
                stop.callbacks.append(self._stop_callback)

        try:
            while True:
                self.step()
        except _StopRun as marker:
            return marker.args[0]
        except EmptySchedule:
            if stop is not None and not stop.processed:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run(until=event): schedule ran dry before the event fired"
                    ) from None
                # Time-limited run that ran out of events early: simply
                # advance the clock to the requested time.
                self._now = float(_t.cast(float, until))
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise _StopRun(event._value)
        raise _t.cast(BaseException, event._value)
