"""The adaptive conservative round engine: serial reference and workers.

Both executors run the *same* barrier-synchronized algorithm over the
same :class:`~repro.sim.parallel.partition.Partition` objects:

.. code-block:: text

    round r:  every partition        inject(inbox, bounds, floor)
                                     advance(min inbound LBTS, capped at T)
                                     drain() -> payload batches
                                              + EOT promise per channel
                                              + next local event time
              coordinator            route batches/bounds -> next inboxes
                                     floor <- min(next locals,
                                                  in-flight arrivals)
              repeat until every partition is drained and idle

Unlike a fixed-step CMB loop (which advances one lookahead per round
and needed 17k rounds for a 35 s testbed horizon at the 2 ms trunk
latency), the engine is **adaptive**: each round the coordinator
reduces every partition's next-local-event time and every in-flight
packet's arrival timestamp into a global *floor* — provably a lower
bound on any event that can still occur anywhere — and grants it with
the next round.  Partitions lift all channel bounds to ``floor +
lookahead``, so an idle stretch of any length costs one round, and the
per-channel EOT promises refine the bound further where one side is
busier than the other.  Determinism is untouched: the floor is a pure
function of the round-barrier state, both executors compute it
identically, and the safe-time rule (process strictly below the
horizon) is exactly the one the fixed-step engine enforced.

The serial executor steps partitions in index order inside one
process; the parallel coordinator forks one worker per partition
(reusing the experiment engine's fork-pool idiom: module-level
builders, picklable specs, nothing env-bound crossing the boundary)
and overlaps their ``advance`` phases, exchanging the identical
batches over pipes.  Because horizons, floors, routing, and injection
order are all derived from the same deterministic round state, both
executions drive every partition's event heap through the identical
sequence — the latency traces come out byte-identical, which
``tests/test_parallel_sim.py`` gates with md5 fingerprints.

Per-partition counters (events processed, busy wall-clock,
packet/null message counts) are collected into :class:`RunStats` —
including the payload/null round split — so benchmark reports can
expose load imbalance and synchronization overhead
(`BENCH_PR8.json`).  Pass ``profile_dir`` to either executor to dump
per-worker ``cProfile`` data (merge with
:func:`merged_profile_stats`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import math
import multiprocessing
import os
import time
import typing as _t

from repro.sim.parallel.partition import (
    ChannelBatch,
    ChannelBounds,
    Partition,
    PartitionSpec,
)

#: Wire message tags (worker <-> coordinator).
_GRANT = "g"  # coordinator -> worker: (batches, bounds, floor)
_UPDATE = "u"  # worker -> coordinator: batches + bounds + liveness
_FINAL = "f"  # coordinator -> worker: run finished, send results
_RESULT = "d"  # worker -> coordinator: model result + stats
_ERROR = "e"  # worker -> coordinator: traceback


@dataclasses.dataclass
class PartitionStats:
    """One partition's counters for a completed run."""

    partition_id: str
    events: int
    busy_s: float
    messages_sent: int
    nulls_sent: int
    messages_received: int

    @classmethod
    def from_partition(
        cls, partition: Partition, busy_s: float
    ) -> "PartitionStats":
        """The one stats builder both executors use.

        The parallel worker pickles the resulting dataclass back to
        the coordinator, so new fields can't drift between the serial
        and forked paths (they used to cross the pipe as a positional
        tuple, unpacked by hand on the other side).
        """
        return cls(
            partition_id=partition.partition_id,
            events=partition.env.events_processed,
            busy_s=busy_s,
            messages_sent=partition.messages_sent,
            nulls_sent=partition.nulls_sent,
            messages_received=partition.messages_received,
        )

    @property
    def events_per_sec(self) -> float | None:
        if self.busy_s <= 0:
            return None
        return self.events / self.busy_s

    def to_json(self) -> dict[str, _t.Any]:
        eps = self.events_per_sec
        return {
            "partition": self.partition_id,
            "events": self.events,
            "busy_s": round(self.busy_s, 3),
            "events_per_sec": round(eps, 1) if eps is not None else None,
            "messages_sent": self.messages_sent,
            "nulls_sent": self.nulls_sent,
            "messages_received": self.messages_received,
        }


@dataclasses.dataclass
class RunStats:
    """Whole-run counters."""

    mode: str
    rounds: int
    payload_rounds: int
    wall_s: float
    partitions: list[PartitionStats]

    @property
    def null_rounds(self) -> int:
        """Rounds that exchanged bounds only — pure synchronization."""
        return self.rounds - self.payload_rounds

    @property
    def total_events(self) -> int:
        return sum(p.events for p in self.partitions)

    @property
    def events_per_sec(self) -> float | None:
        if self.wall_s <= 0:
            return None
        return self.total_events / self.wall_s

    @property
    def cross_partition_messages(self) -> int:
        return sum(p.messages_sent for p in self.partitions)

    @property
    def null_messages(self) -> int:
        return sum(p.nulls_sent for p in self.partitions)


@dataclasses.dataclass
class ParallelRun:
    """Results of one partitioned run."""

    #: partition_id -> whatever the partition model's ``result()`` returned.
    results: dict[str, _t.Any]
    stats: RunStats


class _Router:
    """Routes payload batches and EOT bounds to per-partition inboxes."""

    def __init__(self, specs: _t.Sequence[PartitionSpec]) -> None:
        self._dst: dict[str, str] = {}
        for spec in specs:
            for cs in spec.in_channels:
                self._dst[cs.channel_id] = spec.partition_id
        self.inboxes: dict[str, list[ChannelBatch]] = {
            spec.partition_id: [] for spec in specs
        }
        self.bound_inboxes: dict[str, ChannelBounds] = {
            spec.partition_id: {} for spec in specs
        }
        self.packets_routed = 0
        #: Earliest arrival timestamp among packets routed this round
        #: (reset by the round engine) — in-flight packets are future
        #: events the floor reduction must respect.
        self.pending_min = math.inf

    def route(
        self, batches: _t.Iterable[ChannelBatch], bounds: ChannelBounds
    ) -> None:
        for batch in batches:
            self.inboxes[self._dst[batch[0]]].append(batch)
            self.packets_routed += len(batch[2])
            for ts, _seq, _payload in batch[2]:
                if ts < self.pending_min:
                    self.pending_min = ts
        for channel_id, lbts in bounds.items():
            inbox = self.bound_inboxes[self._dst[channel_id]]
            prev = inbox.get(channel_id)
            if prev is None or lbts > prev:
                inbox[channel_id] = lbts

    def take(self, partition_id: str) -> tuple[list[ChannelBatch], ChannelBounds]:
        inbox = self.inboxes[partition_id]
        self.inboxes[partition_id] = []
        bounds = self.bound_inboxes[partition_id]
        self.bound_inboxes[partition_id] = {}
        return inbox, bounds


class _RoundEngine:
    """Deterministic coordinator-side round state shared by both executors.

    Owns the router, the round/payload-round counters, and the
    **floor**: the global minimum over every partition's next local
    event time and every in-flight packet's arrival timestamp, as of
    the last round barrier.  No partition can produce an event below
    the floor, so granting it with the next round lets every channel
    bound jump to ``floor + lookahead`` in one step — the idle
    fast-forward.  The floor is monotone and capped at ``until``.
    """

    def __init__(
        self, specs: _t.Sequence[PartitionSpec], until: float
    ) -> None:
        self.router = _Router(specs)
        self.until = until
        self.floor = 0.0
        self.rounds = 0
        self.payload_rounds = 0
        self._routed_before = 0
        self._next_locals: list[float] = []
        self._all_done = True

    def begin_round(self) -> None:
        self.rounds += 1
        self._routed_before = self.router.packets_routed
        self.router.pending_min = math.inf
        self._next_locals.clear()
        self._all_done = True

    def grant(
        self, partition_id: str
    ) -> tuple[list[ChannelBatch], ChannelBounds, float]:
        batches, bounds = self.router.take(partition_id)
        return batches, bounds, self.floor

    def collect(
        self,
        batches: list[ChannelBatch],
        bounds: ChannelBounds,
        done: bool,
        next_local: float,
    ) -> None:
        self.router.route(batches, bounds)
        self._all_done = self._all_done and done
        self._next_locals.append(next_local)

    def end_round(self) -> bool:
        """Fold the round's reports into the next floor; True = finished."""
        routed = self.router.packets_routed - self._routed_before
        if routed:
            self.payload_rounds += 1
        floor = min(self._next_locals) if self._next_locals else self.until
        if self.router.pending_min < floor:
            floor = self.router.pending_min
        if floor > self.until:
            floor = self.until
        if floor > self.floor:
            self.floor = floor
        return self._all_done and routed == 0


@contextlib.contextmanager
def _calm_collector() -> _t.Iterator[None]:
    """Raise the gen-0 gc threshold for the duration of a round loop.

    ``Environment.run`` does this per call; the round engines call
    ``run_below`` many times per run, so the collector dance is
    hoisted here and paid once per run instead of once per round.
    """
    thresholds = gc.get_threshold()
    gc.set_threshold(1_000_000, *thresholds[1:])
    try:
        yield
    finally:
        gc.set_threshold(*thresholds)


@contextlib.contextmanager
def _maybe_profile(profile_path: str | None) -> _t.Iterator[None]:
    """Dump ``cProfile`` data for the enclosed block if a path is set."""
    if profile_path is None:
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(profile_path)


def merged_profile_stats(profile_dir: str | os.PathLike) -> _t.Any | None:
    """Merge every per-worker ``*.pstats`` dump under ``profile_dir``
    into one :class:`pstats.Stats` (None if no dumps were written)."""
    import pstats

    paths = sorted(
        os.path.join(profile_dir, name)
        for name in os.listdir(profile_dir)
        if name.endswith(".pstats")
    )
    if not paths:
        return None
    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    return stats


def _step_partition(
    partition: Partition,
    grant: tuple[list[ChannelBatch], ChannelBounds, float],
    until: float,
) -> tuple[list[ChannelBatch], ChannelBounds, bool, float]:
    """One partition's share of one round (also the worker hot loop)."""
    batches, bounds, floor = grant
    partition.inject(batches, bounds, floor)
    partition.advance(partition.horizon(until))
    out_batches, out_bounds, next_local = partition.drain(until)
    return out_batches, out_bounds, partition.done(until), next_local


class SerialExecutor:
    """The deterministic single-process reference execution.

    Runs every partition in index order within one process, using the
    exact round algorithm of :class:`ParallelCoordinator` — this is
    the "serial run" that parallel latency traces are gated
    byte-identical against.
    """

    def __init__(
        self,
        specs: _t.Sequence[PartitionSpec],
        profile_dir: str | os.PathLike | None = None,
    ) -> None:
        self.specs = sorted(specs, key=lambda s: s.index)
        self.profile_dir = profile_dir

    def run(self, until: float) -> ParallelRun:
        wall_start = time.perf_counter()
        partitions = [Partition(spec) for spec in self.specs]
        engine = _RoundEngine(self.specs, until)
        busy = {p.partition_id: 0.0 for p in partitions}
        profile_path = (
            os.path.join(self.profile_dir, "serial.pstats")
            if self.profile_dir is not None
            else None
        )
        with _maybe_profile(profile_path), _calm_collector():
            self._loop(partitions, engine, busy, until)
        for partition in partitions:
            partition.finalize(until)
        wall_s = time.perf_counter() - wall_start
        stats = RunStats(
            mode="serial",
            rounds=engine.rounds,
            payload_rounds=engine.payload_rounds,
            wall_s=wall_s,
            partitions=[
                PartitionStats.from_partition(p, busy[p.partition_id])
                for p in partitions
            ],
        )
        return ParallelRun(
            results={p.partition_id: p.model.result() for p in partitions},
            stats=stats,
        )

    @staticmethod
    def _loop(
        partitions: list[Partition],
        engine: _RoundEngine,
        busy: dict[str, float],
        until: float,
    ) -> None:
        while True:
            engine.begin_round()
            # Snapshot every grant BEFORE stepping anything: the
            # parallel coordinator hands all grants out at the round
            # barrier, so a batch produced in round r must never reach
            # a sibling until round r+1 here either — mid-round
            # delivery would change injection rounds and with them the
            # heap tie-break sequence, breaking byte-identity.
            grants = {
                partition.partition_id: engine.grant(partition.partition_id)
                for partition in partitions
            }
            for partition in partitions:
                t0 = time.perf_counter()
                batches, bounds, done, next_local = _step_partition(
                    partition, grants[partition.partition_id], until
                )
                busy[partition.partition_id] += time.perf_counter() - t0
                engine.collect(batches, bounds, done, next_local)
            if engine.end_round():
                return


def _worker_main(
    conn: _t.Any,
    spec: PartitionSpec,
    until: float,
    profile_path: str | None = None,
) -> None:
    """Worker process: build the partition locally, loop rounds."""
    try:
        with _maybe_profile(profile_path):
            partition = Partition(spec)
            busy = 0.0
            with _calm_collector():
                while True:
                    message = conn.recv()
                    if message[0] == _FINAL:
                        break
                    t0 = time.perf_counter()
                    batches, bounds, done, next_local = _step_partition(
                        partition, message[1], until
                    )
                    busy += time.perf_counter() - t0
                    conn.send((_UPDATE, batches, bounds, done, next_local))
            partition.finalize(until)
        conn.send(
            (
                _RESULT,
                partition.model.result(),
                PartitionStats.from_partition(partition, busy),
            )
        )
    except Exception:  # pragma: no cover - surfaced by the coordinator
        import traceback

        try:
            conn.send((_ERROR, traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class ParallelCoordinator:
    """Forked per-partition workers, barrier-synchronized per round.

    The fork start method is required (and asserted): workers inherit
    the imported modules and the spec constants, so the only pickling
    on the hot path is the per-round batch exchange — and a burst of
    packets crossing a channel in one round is one message.
    """

    def __init__(
        self,
        specs: _t.Sequence[PartitionSpec],
        profile_dir: str | os.PathLike | None = None,
    ) -> None:
        self.specs = sorted(specs, key=lambda s: s.index)
        self.profile_dir = profile_dir

    def run(self, until: float) -> ParallelRun:
        ctx = multiprocessing.get_context("fork")
        wall_start = time.perf_counter()
        engine = _RoundEngine(self.specs, until)
        pipes: dict[str, _t.Any] = {}
        procs: list[_t.Any] = []
        try:
            for spec in self.specs:
                parent_conn, child_conn = ctx.Pipe()
                profile_path = (
                    os.path.join(
                        self.profile_dir, f"{spec.partition_id}.pstats"
                    )
                    if self.profile_dir is not None
                    else None
                )
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec, until, profile_path),
                    name=f"sim-partition-{spec.partition_id}",
                )
                proc.start()
                child_conn.close()
                pipes[spec.partition_id] = parent_conn
                procs.append(proc)

            while True:
                engine.begin_round()
                for spec in self.specs:
                    pipes[spec.partition_id].send(
                        (_GRANT, engine.grant(spec.partition_id))
                    )
                for spec in self.specs:
                    message = self._recv(pipes[spec.partition_id], spec)
                    engine.collect(
                        message[1], message[2], message[3], message[4]
                    )
                if engine.end_round():
                    break

            results: dict[str, _t.Any] = {}
            stats: list[PartitionStats] = []
            for spec in self.specs:
                pipes[spec.partition_id].send((_FINAL,))
            for spec in self.specs:
                message = self._recv(pipes[spec.partition_id], spec)
                results[spec.partition_id] = message[1]
                stats.append(message[2])
            for proc in procs:
                proc.join(timeout=30)
        finally:
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - crash cleanup
                    proc.terminate()
                    proc.join(timeout=5)
            for conn in pipes.values():
                conn.close()
        wall_s = time.perf_counter() - wall_start
        return ParallelRun(
            results=results,
            stats=RunStats(
                mode="parallel",
                rounds=engine.rounds,
                payload_rounds=engine.payload_rounds,
                wall_s=wall_s,
                partitions=stats,
            ),
        )

    @staticmethod
    def _recv(conn: _t.Any, spec: PartitionSpec) -> tuple:
        try:
            message = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"partition worker {spec.partition_id!r} died without "
                "reporting an error (see stderr for its traceback)"
            ) from None
        if message[0] == _ERROR:
            raise RuntimeError(
                f"partition worker {spec.partition_id!r} failed:\n{message[1]}"
            )
        return message
