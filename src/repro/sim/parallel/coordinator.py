"""The conservative round engine: serial reference and forked workers.

Both executors run the *same* barrier-synchronized null-message
algorithm over the same :class:`~repro.sim.parallel.partition.Partition`
objects:

.. code-block:: text

    round r:  every partition        inject(inbox from round r-1)
                                     advance(min inbound LBTS, capped at T)
                                     drain() -> one batch per out-channel
              coordinator            route batches -> next inboxes
              repeat until every partition is drained and idle

The serial executor steps partitions in index order inside one
process; the parallel coordinator forks one worker per partition
(reusing the experiment engine's fork-pool idiom: module-level
builders, picklable specs, nothing env-bound crossing the boundary)
and overlaps their ``advance`` phases, exchanging the identical
batches over pipes.  Because horizons, routing, and injection order
are all derived from the same deterministic round state, both
executions drive every partition's event heap through the identical
sequence — the latency traces come out byte-identical, which
``tests/test_parallel_sim.py`` gates with md5 fingerprints.

Per-partition counters (events processed, busy wall-clock,
packet/null message counts) are collected into :class:`RunStats` so
benchmark reports can expose load imbalance and synchronization
overhead (`BENCH_PR6.json`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import multiprocessing
import time
import typing as _t

from repro.sim.parallel.partition import (
    ChannelBatch,
    Partition,
    PartitionSpec,
)

#: Wire message tags (worker <-> coordinator).
_GRANT = "g"  # coordinator -> worker: one round's inbound batches
_UPDATE = "u"  # worker -> coordinator: outbound batches + liveness
_FINAL = "f"  # coordinator -> worker: run finished, send results
_RESULT = "d"  # worker -> coordinator: model result + stats
_ERROR = "e"  # worker -> coordinator: traceback


@dataclasses.dataclass
class PartitionStats:
    """One partition's counters for a completed run."""

    partition_id: str
    events: int
    busy_s: float
    messages_sent: int
    nulls_sent: int
    messages_received: int

    @property
    def events_per_sec(self) -> float | None:
        if self.busy_s <= 0:
            return None
        return self.events / self.busy_s

    def to_json(self) -> dict[str, _t.Any]:
        eps = self.events_per_sec
        return {
            "partition": self.partition_id,
            "events": self.events,
            "busy_s": round(self.busy_s, 3),
            "events_per_sec": round(eps, 1) if eps is not None else None,
            "messages_sent": self.messages_sent,
            "nulls_sent": self.nulls_sent,
            "messages_received": self.messages_received,
        }


@dataclasses.dataclass
class RunStats:
    """Whole-run counters."""

    mode: str
    rounds: int
    wall_s: float
    partitions: list[PartitionStats]

    @property
    def total_events(self) -> int:
        return sum(p.events for p in self.partitions)

    @property
    def events_per_sec(self) -> float | None:
        if self.wall_s <= 0:
            return None
        return self.total_events / self.wall_s

    @property
    def cross_partition_messages(self) -> int:
        return sum(p.messages_sent for p in self.partitions)

    @property
    def null_messages(self) -> int:
        return sum(p.nulls_sent for p in self.partitions)


@dataclasses.dataclass
class ParallelRun:
    """Results of one partitioned run."""

    #: partition_id -> whatever the partition model's ``result()`` returned.
    results: dict[str, _t.Any]
    stats: RunStats


class _Router:
    """Round-state shared by both executors: routes batches to inboxes."""

    def __init__(self, specs: _t.Sequence[PartitionSpec]) -> None:
        self._dst: dict[str, str] = {}
        for spec in specs:
            for cs in spec.in_channels:
                self._dst[cs.channel_id] = spec.partition_id
        self.inboxes: dict[str, list[ChannelBatch]] = {
            spec.partition_id: [] for spec in specs
        }
        self.packets_routed = 0

    def route(self, batches: _t.Iterable[ChannelBatch]) -> None:
        for batch in batches:
            self.inboxes[self._dst[batch[0]]].append(batch)
            self.packets_routed += len(batch[2])

    def take(self, partition_id: str) -> list[ChannelBatch]:
        inbox = self.inboxes[partition_id]
        self.inboxes[partition_id] = []
        return inbox


@contextlib.contextmanager
def _calm_collector() -> _t.Iterator[None]:
    """Raise the gen-0 gc threshold for the duration of a round loop.

    ``Environment.run`` does this per call; the round engines call
    ``run_below`` tens of thousands of times, so the collector dance is
    hoisted here and paid once per run instead of once per round.
    """
    thresholds = gc.get_threshold()
    gc.set_threshold(1_000_000, *thresholds[1:])
    try:
        yield
    finally:
        gc.set_threshold(*thresholds)


def _step_partition(
    partition: Partition, inbox: list[ChannelBatch], until: float
) -> tuple[list[ChannelBatch], bool, float]:
    """One partition's share of one round (also the worker hot loop)."""
    partition.inject(inbox)
    partition.advance(partition.horizon(until))
    batches, _lower = partition.drain(until)
    return batches, partition.done(until), partition.env.now


class SerialExecutor:
    """The deterministic single-process reference execution.

    Runs every partition in index order within one process, using the
    exact round algorithm of :class:`ParallelCoordinator` — this is
    the "serial run" that parallel latency traces are gated
    byte-identical against.
    """

    def __init__(self, specs: _t.Sequence[PartitionSpec]) -> None:
        self.specs = sorted(specs, key=lambda s: s.index)

    def run(self, until: float) -> ParallelRun:
        wall_start = time.perf_counter()
        partitions = [Partition(spec) for spec in self.specs]
        router = _Router(self.specs)
        busy = {p.partition_id: 0.0 for p in partitions}
        with _calm_collector():
            rounds = self._loop(partitions, router, busy, until)
        for partition in partitions:
            partition.finalize(until)
        wall_s = time.perf_counter() - wall_start
        stats = RunStats(
            mode="serial",
            rounds=rounds,
            wall_s=wall_s,
            partitions=[
                PartitionStats(
                    partition_id=p.partition_id,
                    events=p.env.events_processed,
                    busy_s=busy[p.partition_id],
                    messages_sent=p.messages_sent,
                    nulls_sent=p.nulls_sent,
                    messages_received=p.messages_received,
                )
                for p in partitions
            ],
        )
        return ParallelRun(
            results={p.partition_id: p.model.result() for p in partitions},
            stats=stats,
        )

    @staticmethod
    def _loop(
        partitions: list[Partition],
        router: _Router,
        busy: dict[str, float],
        until: float,
    ) -> int:
        rounds = 0
        while True:
            rounds += 1
            routed_before = router.packets_routed
            # Snapshot every inbox BEFORE stepping anything: the
            # parallel coordinator hands all grants out at the round
            # barrier, so a batch produced in round r must never reach
            # a sibling until round r+1 here either — mid-round
            # delivery would change injection rounds and with them the
            # heap tie-break sequence, breaking byte-identity.
            inboxes = {
                partition.partition_id: router.take(partition.partition_id)
                for partition in partitions
            }
            all_done = True
            for partition in partitions:
                t0 = time.perf_counter()
                batches, done, _now = _step_partition(
                    partition, inboxes[partition.partition_id], until
                )
                busy[partition.partition_id] += time.perf_counter() - t0
                router.route(batches)
                all_done = all_done and done
            if all_done and router.packets_routed == routed_before:
                return rounds


def _worker_main(conn: _t.Any, spec: PartitionSpec, until: float) -> None:
    """Worker process: build the partition locally, loop rounds."""
    try:
        partition = Partition(spec)
        busy = 0.0
        with _calm_collector():
            while True:
                message = conn.recv()
                if message[0] == _FINAL:
                    break
                t0 = time.perf_counter()
                batches, done, _now = _step_partition(
                    partition, message[1], until
                )
                busy += time.perf_counter() - t0
                conn.send((_UPDATE, batches, done))
        partition.finalize(until)
        conn.send(
            (
                _RESULT,
                partition.model.result(),
                (
                    partition.env.events_processed,
                    busy,
                    partition.messages_sent,
                    partition.nulls_sent,
                    partition.messages_received,
                ),
            )
        )
    except Exception:  # pragma: no cover - surfaced by the coordinator
        import traceback

        try:
            conn.send((_ERROR, traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class ParallelCoordinator:
    """Forked per-partition workers, barrier-synchronized per round.

    The fork start method is required (and asserted): workers inherit
    the imported modules and the spec constants, so the only pickling
    on the hot path is the per-round batch exchange — and a burst of
    packets crossing a channel in one round is one message.
    """

    def __init__(self, specs: _t.Sequence[PartitionSpec]) -> None:
        self.specs = sorted(specs, key=lambda s: s.index)

    def run(self, until: float) -> ParallelRun:
        ctx = multiprocessing.get_context("fork")
        wall_start = time.perf_counter()
        router = _Router(self.specs)
        pipes: dict[str, _t.Any] = {}
        procs: list[_t.Any] = []
        try:
            for spec in self.specs:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec, until),
                    name=f"sim-partition-{spec.partition_id}",
                )
                proc.start()
                child_conn.close()
                pipes[spec.partition_id] = parent_conn
                procs.append(proc)

            rounds = 0
            while True:
                rounds += 1
                routed_before = router.packets_routed
                for spec in self.specs:
                    pipes[spec.partition_id].send(
                        (_GRANT, router.take(spec.partition_id))
                    )
                all_done = True
                for spec in self.specs:
                    message = self._recv(pipes[spec.partition_id], spec)
                    router.route(message[1])
                    all_done = all_done and message[2]
                if all_done and router.packets_routed == routed_before:
                    break

            results: dict[str, _t.Any] = {}
            stats: list[PartitionStats] = []
            for spec in self.specs:
                pipes[spec.partition_id].send((_FINAL,))
            for spec in self.specs:
                message = self._recv(pipes[spec.partition_id], spec)
                results[spec.partition_id] = message[1]
                events, busy, sent, nulls, received = message[2]
                stats.append(
                    PartitionStats(
                        partition_id=spec.partition_id,
                        events=events,
                        busy_s=busy,
                        messages_sent=sent,
                        nulls_sent=nulls,
                        messages_received=received,
                    )
                )
            for proc in procs:
                proc.join(timeout=30)
        finally:
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - crash cleanup
                    proc.terminate()
                    proc.join(timeout=5)
            for conn in pipes.values():
                conn.close()
        wall_s = time.perf_counter() - wall_start
        return ParallelRun(
            results=results,
            stats=RunStats(
                mode="parallel",
                rounds=rounds,
                wall_s=wall_s,
                partitions=stats,
            ),
        )

    @staticmethod
    def _recv(conn: _t.Any, spec: PartitionSpec) -> tuple:
        try:
            message = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"partition worker {spec.partition_id!r} died without "
                "reporting an error (see stderr for its traceback)"
            ) from None
        if message[0] == _ERROR:
            raise RuntimeError(
                f"partition worker {spec.partition_id!r} failed:\n{message[1]}"
            )
        return message
