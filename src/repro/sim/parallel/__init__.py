"""Conservative parallel discrete-event simulation (PDES) kernel.

The simulated network is inherently partitioned — each edge site owns
its gNB, clusters, and clients, coupled only through backbone links —
so the data plane shards the same way the control plane did in the
distributed-controller refactor: one :class:`Partition` (with its own
:class:`~repro.sim.Environment`) per site, synchronized conservatively
over the cut links.

The classic null-message (Chandy–Misra–Bryant) argument applies: a
packet crossing a backbone link of latency *L* sent at time *t*
arrives no earlier than ``t + L``, so *L* is the channel's
**lookahead** and every partition may safely process local events up
to the minimum lower-bound timestamp (LBTS) advertised across its
inbound channels.  Partitions advance in barrier-synchronized rounds;
each round every out-channel with traffic carries a batch of
timestamped packet messages (a burst crossing the backbone is ONE
message), and every out-channel — busy or idle — piggybacks an **EOT
promise** (its earliest possible next output time) on the round
update, so an idle partition can never deadlock its neighbours.  The
coordinator additionally reduces all partitions' next-event times
into a global *floor* granted with the next round, so idle stretches
fast-forward in one round instead of creeping lookahead-by-lookahead
(see ``coordinator.py``).

Determinism: the serial executor and the parallel (forked-worker)
coordinator run the *identical* round algorithm over the identical
partitions — same horizons, same message routing, same sorted
injection order — so same-seed runs produce byte-identical event
sequences, and with them byte-identical latency traces.  This is
gated in ``tests/test_parallel_sim.py`` and the parallel perf-smoke
CI job.
"""

from repro.sim.parallel.coordinator import (
    ParallelCoordinator,
    ParallelRun,
    PartitionStats,
    RunStats,
    SerialExecutor,
    merged_profile_stats,
)
from repro.sim.parallel.partition import (
    ChannelSpec,
    Partition,
    PartitionModel,
    PartitionSpec,
    Portal,
    SyncError,
)
from repro.sim.parallel.partitioner import (
    CutLink,
    NodeSpec,
    PartitionError,
    TopologySpec,
    channel_id,
    partition_topology,
)
from repro.sim.parallel.testbed import (
    PortalEndpoint,
    ServiceSpec,
    TestbedReplay,
    build_replay,
    build_replay_specs,
    replay_topology,
    run_replay,
)

__all__ = [
    "ChannelSpec",
    "CutLink",
    "NodeSpec",
    "ParallelCoordinator",
    "ParallelRun",
    "Partition",
    "PartitionError",
    "PartitionModel",
    "PartitionSpec",
    "PartitionStats",
    "Portal",
    "PortalEndpoint",
    "RunStats",
    "SerialExecutor",
    "ServiceSpec",
    "SyncError",
    "TestbedReplay",
    "TopologySpec",
    "build_replay",
    "build_replay_specs",
    "channel_id",
    "merged_profile_stats",
    "partition_topology",
    "replay_topology",
    "run_replay",
]
