"""Cutting the topology at backbone links.

The partitioning rule is the paper's architecture read literally:
every edge site is a self-contained island (gNB switch, clusters,
clients, EGS) whose only coupling to the rest of the federation is its
backbone :class:`~repro.net.link.Link`.  Cutting exactly those links
yields one partition per island, and each cut edge becomes a *pair* of
directed channels (one per direction) whose lookahead is the link's
propagation latency — the physical guarantee the conservative
synchronizer runs on.  Cut links carry a *kind* (``"data"`` trunks,
``"control"`` shared-state replication), each deriving its lookahead
from its own physical latency, so a slow control path never tightens
the data path's synchronization window or vice versa.

A zero-latency cut link has no lookahead: the neighbouring partition
could influence this one "instantaneously", so no safe window exists
and the cut is rejected up front with :class:`PartitionError` instead
of deadlocking (or creeping event-by-event) at run time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.sim.parallel.partition import ChannelSpec, PartitionModel, PartitionSpec


class PartitionError(ValueError):
    """The requested cut cannot be synchronized conservatively."""


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One island of the cut topology (becomes one partition)."""

    name: str
    builder: _t.Callable[..., PartitionModel]
    kwargs: dict[str, _t.Any] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class CutLink:
    """A backbone link severed by the partitioner (both directions)."""

    a: str
    b: str
    latency_s: float
    kind: str = "data"


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """The cut topology: islands plus the links severed between them."""

    nodes: tuple[NodeSpec, ...]
    links: tuple[CutLink, ...]

    def partitions(self) -> list[PartitionSpec]:
        return partition_topology(self.nodes, self.links)

    def min_lookahead_s(self) -> float:
        """The tightest lookahead across every cut link.

        A *fixed-step* conservative engine advances global time by at
        most this per round, so ``horizon / min_lookahead_s()`` bounds
        its round count from below — the reference the adaptive
        engine's round-collapse tests compare against.  Raises
        :class:`PartitionError` on a topology with no cut links (every
        lookahead is infinite there: one free-running partition).
        """
        if not self.links:
            raise PartitionError(
                "topology has no cut links — min lookahead is undefined"
            )
        return min(link.latency_s for link in self.links)


def channel_id(src: str, dst: str, kind: str = "data") -> str:
    """Canonical directed channel name for a cut edge.

    Data channels keep the bare ``src->dst`` form (stable across PRs);
    other kinds get a ``#kind`` suffix so a data trunk and a control
    channel between the same pair of islands coexist.
    """
    if kind == "data":
        return f"{src}->{dst}"
    return f"{src}->{dst}#{kind}"


def partition_topology(
    nodes: _t.Sequence[NodeSpec],
    links: _t.Sequence[CutLink],
) -> list[PartitionSpec]:
    """Turn islands + cut links into runnable :class:`PartitionSpec`s.

    Each cut link contributes two directed :class:`ChannelSpec`s with
    ``lookahead_s`` equal to the link latency.  Raises
    :class:`PartitionError` for duplicate islands, links referencing
    unknown islands, a link joining an island to itself, and — the
    load-bearing check — a cut link with zero (or negative) latency,
    which would leave the conservative synchronizer without a
    lookahead window.
    """
    if not nodes:
        raise PartitionError("cannot partition an empty topology")
    by_name: dict[str, NodeSpec] = {}
    for node in nodes:
        if node.name in by_name:
            raise PartitionError(f"duplicate partition name {node.name!r}")
        by_name[node.name] = node

    outgoing: dict[str, list[ChannelSpec]] = {n.name: [] for n in nodes}
    incoming: dict[str, list[ChannelSpec]] = {n.name: [] for n in nodes}
    seen_pairs: set[tuple[tuple[str, str], str]] = set()
    for link in links:
        for end in (link.a, link.b):
            if end not in by_name:
                raise PartitionError(
                    f"cut link {link.a!r}<->{link.b!r} references unknown "
                    f"partition {end!r} (have {sorted(by_name)})"
                )
        if link.a == link.b:
            raise PartitionError(
                f"cut link {link.a!r}<->{link.b!r} joins a partition to "
                "itself — an intra-partition link must not be cut"
            )
        if not link.kind or "#" in link.kind:
            raise PartitionError(
                f"cut link {link.a!r}<->{link.b!r} has invalid kind "
                f"{link.kind!r}: kinds must be non-empty and free of "
                "'#' (it delimits the kind suffix in channel ids)"
            )
        if link.latency_s <= 0.0:
            raise PartitionError(
                f"{link.kind} cut link between {link.a!r} and {link.b!r} "
                f"has latency {link.latency_s!r}s: conservative "
                "synchronization needs a strictly positive lookahead (a "
                "zero-latency link admits instantaneous cross-partition "
                "influence, so no safe-time window exists) — give the "
                "FederationConfig trunk/control latency a positive value "
                "or keep such links inside one partition instead"
            )
        pair = (link.a, link.b) if link.a < link.b else (link.b, link.a)
        if (pair, link.kind) in seen_pairs:
            raise PartitionError(
                f"duplicate cut link {link.a!r}<->{link.b!r} "
                f"(kind={link.kind!r})"
            )
        seen_pairs.add((pair, link.kind))
        for src, dst in ((link.a, link.b), (link.b, link.a)):
            spec = ChannelSpec(
                channel_id=channel_id(src, dst, link.kind),
                src=src,
                dst=dst,
                lookahead_s=link.latency_s,
                kind=link.kind,
            )
            outgoing[src].append(spec)
            incoming[dst].append(spec)

    specs: list[PartitionSpec] = []
    for index, node in enumerate(nodes):
        specs.append(
            PartitionSpec(
                partition_id=node.name,
                index=index,
                builder=node.builder,
                kwargs=dict(node.kwargs),
                out_channels=tuple(
                    sorted(outgoing[node.name], key=lambda c: c.channel_id)
                ),
                in_channels=tuple(
                    sorted(incoming[node.name], key=lambda c: c.channel_id)
                ),
            )
        )
    return specs
