"""Partitions: one event loop per site, coupled only through portals.

A :class:`Partition` wraps a private :class:`~repro.sim.Environment`
plus the sending ends (:class:`Portal`) of its outbound cross-partition
channels.  Model code inside the partition calls ``portal.send()``
when traffic leaves; the message is stamped with its *arrival*
timestamp (send time + channel lookahead, or an explicit later time)
and buffered in the per-channel outbox.  The round engine (see
``coordinator.py``) drains outboxes, routes them, and injects each
arriving message into the destination environment via a slim
``call_at`` at exactly its timestamp — so a cross-partition packet is
an ordinary deterministic event on the receiving heap.

Wire format (kept to plain tuples so pickling across the fork
boundary stays cheap):

* packet message: ``(arrival_ts, seq, payload)`` — ``seq`` is the
  sender partition's monotone message counter, making the sort key
  ``(arrival_ts, channel_id, seq)`` total and hash-independent;
* channel batch: ``(channel_id, lbts, packets)`` — ``lbts`` is the
  sender's promise that no *future* message on this channel will carry
  a timestamp below it.  An empty ``packets`` list makes the batch a
  pure **null message**; one is emitted per out-channel per round
  whether or not traffic crossed, which is what keeps an idle
  neighbour from deadlocking the federation.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from itertools import count

from repro.sim import Environment

#: A timestamped cross-partition message: (arrival_ts, sender_seq, payload).
PacketMessage = tuple[float, int, _t.Any]
#: One round's traffic on one channel: (channel_id, lbts, packets).
ChannelBatch = tuple[str, float, list[PacketMessage]]


class SyncError(RuntimeError):
    """A partition violated the conservative-sync contract (e.g. tried
    to send a message arriving before ``now + lookahead``)."""


@dataclasses.dataclass(frozen=True)
class ChannelSpec:
    """One directed cross-partition channel (one side of a cut link)."""

    channel_id: str
    src: str
    dst: str
    #: Conservative lookahead: no message sent at time ``t`` may arrive
    #: before ``t + lookahead_s``.  Must be strictly positive — the
    #: partitioner rejects zero-latency cut links.
    lookahead_s: float
    #: ``"data"`` for backbone packet channels, ``"control"`` for
    #: shared-state replication channels (same sync rules).
    kind: str = "data"


class PartitionModel(_t.Protocol):
    """What a partition builder returns.

    ``setup`` wires the model into its partition (registering message
    handlers, scheduling initial events); ``result`` returns a
    picklable summary shipped back to the coordinator when the run
    finalizes.
    """

    def setup(self, partition: "Partition") -> None: ...

    def result(self) -> _t.Any: ...


@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """Picklable description of one partition.

    The builder is a module-level callable (picklable by reference)
    invoked *inside* the worker process as ``builder(**kwargs)``, so
    partitions are constructed where they run — nothing env-bound ever
    crosses the fork boundary.
    """

    partition_id: str
    index: int
    builder: _t.Callable[..., PartitionModel]
    kwargs: dict[str, _t.Any]
    out_channels: tuple[ChannelSpec, ...]
    in_channels: tuple[ChannelSpec, ...]


class Portal:
    """The sending end of one outbound cross-partition channel."""

    __slots__ = ("channel_id", "lookahead_s", "_partition", "_outbox")

    def __init__(
        self, partition: "Partition", spec: ChannelSpec
    ) -> None:
        self.channel_id = spec.channel_id
        self.lookahead_s = spec.lookahead_s
        self._partition = partition
        self._outbox = partition._outbox[spec.channel_id]

    def send(self, payload: _t.Any, arrival_ts: float | None = None) -> None:
        """Ship ``payload`` across the cut link.

        It arrives at ``now + lookahead`` by default; pass a later
        ``arrival_ts`` to model extra in-path delay (e.g. client-link
        latency before the trunk).  Arrivals earlier than the lookahead
        bound would break the safe-time invariant and raise
        :class:`SyncError`.
        """
        part = self._partition
        now = part.env.now
        if arrival_ts is None:
            arrival_ts = now + self.lookahead_s
        elif arrival_ts < now + self.lookahead_s:
            raise SyncError(
                f"channel {self.channel_id!r}: arrival_ts {arrival_ts!r} "
                f"undercuts the lookahead bound {now + self.lookahead_s!r} "
                f"(now={now!r}, lookahead={self.lookahead_s!r})"
            )
        self._outbox.append((arrival_ts, next(part._msg_seq), payload))


class Partition:
    """One shard of the simulated network with its own event loop."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec
        self.partition_id = spec.partition_id
        self.env = Environment()
        self._msg_seq = count()
        self._outbox: dict[str, list[PacketMessage]] = {
            cs.channel_id: [] for cs in spec.out_channels
        }
        self.portals: dict[str, Portal] = {
            cs.channel_id: Portal(self, cs) for cs in spec.out_channels
        }
        self._out_specs = spec.out_channels
        # Inbound LBTS per channel: before anything is received, the
        # peer can reach us no earlier than t0 + lookahead.
        self._lbts: dict[str, float] = {
            cs.channel_id: self.env.now + cs.lookahead_s
            for cs in spec.in_channels
        }
        self._handlers: dict[str, _t.Callable[[_t.Any], None]] = {}
        # Monotone per-channel send bounds (the nulls already promised).
        self._sent_lbts: dict[str, float] = {
            cs.channel_id: self.env.now + cs.lookahead_s
            for cs in spec.out_channels
        }
        #: Cross-partition traffic counters (exported in bench JSON).
        self.messages_sent = 0
        self.nulls_sent = 0
        self.messages_received = 0
        self.model = spec.builder(**spec.kwargs)
        self.model.setup(self)

    # -- model-facing API -------------------------------------------------

    def on_message(
        self, channel_id: str, handler: _t.Callable[[_t.Any], None]
    ) -> None:
        """Register the handler invoked (at arrival timestamp) for each
        message arriving on ``channel_id``."""
        if channel_id not in self._lbts:
            raise KeyError(
                f"{self.partition_id!r} has no inbound channel "
                f"{channel_id!r} (have {sorted(self._lbts)})"
            )
        self._handlers[channel_id] = handler

    # -- round-engine API -------------------------------------------------

    def horizon(self, until: float) -> float:
        """Safe processing bound: events strictly below it may run."""
        if not self._lbts:
            return until
        bound = min(self._lbts.values())
        return bound if bound < until else until

    def inject(self, batches: list[ChannelBatch]) -> None:
        """Apply one round's inbound traffic (packets + null bounds).

        Messages are injected in ``(arrival_ts, channel_id, seq)``
        order — a total, hash-independent key — so the receiving
        heap's tie-break sequence numbers are identical in serial and
        parallel execution.
        """
        pending: list[tuple[float, str, int, _t.Any]] = []
        for channel_id, lbts, packets in batches:
            if lbts > self._lbts[channel_id]:
                self._lbts[channel_id] = lbts
            for ts, seq, payload in packets:
                pending.append((ts, channel_id, seq, payload))
        if not pending:
            return
        pending.sort(key=lambda m: (m[0], m[1], m[2]))
        call_at = self.env.call_at
        handlers = self._handlers
        for ts, channel_id, _seq, payload in pending:
            call_at(ts, handlers[channel_id], payload)
        self.messages_received += len(pending)

    def advance(self, horizon: float) -> None:
        """Process every local event strictly below ``horizon``.

        Uses ``env.run_below(horizon)``: events stamped exactly at the
        horizon stay on the heap for a later round (the same boundary
        rule as ``run(until=...)``, whose stop event is urgent), which
        is what keeps a packet arriving *exactly at* the lookahead
        horizon ordered identically to a serial run.  ``run_below`` is
        the allocation-free variant — this is called once per
        synchronization round, tens of thousands of times per run.
        """
        self.env.run_below(horizon)

    def drain(self, until: float) -> tuple[list[ChannelBatch], float]:
        """Collect this round's outbound batches and the send bound.

        Returns ``(batches, lower_bound)`` where every out-channel gets
        exactly one batch — packets if traffic crossed, a pure null
        otherwise — and ``lower_bound`` is the earliest time this
        partition could still act (its next local event or inbound
        bound, capped at ``until``).
        """
        env = self.env
        peek = env.peek()
        lower = peek
        if self._lbts:
            inbound = min(self._lbts.values())
            if inbound < lower:
                lower = inbound
        if lower > until:
            lower = until
        batches: list[ChannelBatch] = []
        for cs in self._out_specs:
            outbox = self._outbox[cs.channel_id]
            lbts = lower + cs.lookahead_s
            sent = self._sent_lbts[cs.channel_id]
            if lbts < sent:
                lbts = sent  # promises never move backwards
            else:
                self._sent_lbts[cs.channel_id] = lbts
            if outbox:
                packets = list(outbox)
                outbox.clear()
                self.messages_sent += len(packets)
            else:
                packets = []
                self.nulls_sent += 1
            batches.append((cs.channel_id, lbts, packets))
        return batches, lower

    def done(self, until: float) -> bool:
        """True when nothing below ``until`` remains locally."""
        return self.env.peek() >= until

    def finalize(self, until: float) -> None:
        """Advance the clock to exactly ``until`` (no events remain
        below it) so models observe the same end time as a plain
        ``env.run(until=...)``."""
        if until > self.env.now:
            self.env.run(until=until)
