"""Partitions: one event loop per site, coupled only through portals.

A :class:`Partition` wraps a private :class:`~repro.sim.Environment`
plus the sending ends (:class:`Portal`) of its outbound cross-partition
channels.  Model code inside the partition calls ``portal.send()``
when traffic leaves; the message is stamped with its *arrival*
timestamp (send time + channel lookahead, or an explicit later time)
and buffered in the per-channel outbox.  The round engine (see
``coordinator.py``) drains outboxes, routes them, and injects each
arriving message into the destination environment via a slim
``call_at`` at exactly its timestamp — so a cross-partition packet is
an ordinary deterministic event on the receiving heap.

Wire format (kept to plain tuples so pickling across the fork
boundary stays cheap):

* packet message: ``(arrival_ts, seq, payload)`` — ``seq`` is the
  sender partition's monotone message counter, making the sort key
  ``(arrival_ts, channel_id, seq)`` total and hash-independent;
* channel batch: ``(channel_id, lbts, packets)`` — emitted only for
  channels that carried payload this round;
* bounds: ``{channel_id: lbts}`` — one **EOT promise** per
  out-channel per round, payload or not.  Each promise is the
  sender's earliest possible next output time on that channel: its
  next local event time (clamped by in-flight sends and its own
  inbound bounds), plus the channel lookahead.  A bound-only channel
  update is the adaptive equivalent of a classic null message, but it
  rides the round batch instead of being a message of its own — so
  the kind-suffixed data/control channel pairs between the same two
  islands no longer double the null traffic;
* floor: the coordinator's per-round grant of the global minimum
  next-event time (see ``coordinator.py``).  Every inbound bound is
  lifted to at least ``floor + lookahead`` on injection, which is
  what lets an idle stretch collapse into a single round instead of
  creeping lookahead-by-lookahead.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from itertools import count

from repro.sim import Environment

#: A timestamped cross-partition message: (arrival_ts, sender_seq, payload).
PacketMessage = tuple[float, int, _t.Any]
#: One round's traffic on one channel: (channel_id, lbts, packets).
ChannelBatch = tuple[str, float, list[PacketMessage]]
#: One round's EOT promises: channel_id -> lower-bound timestamp.
ChannelBounds = dict[str, float]


class SyncError(RuntimeError):
    """A partition violated the conservative-sync contract (e.g. tried
    to send a message arriving before ``now + lookahead`` or before an
    EOT promise it already advertised)."""


@dataclasses.dataclass(frozen=True)
class ChannelSpec:
    """One directed cross-partition channel (one side of a cut link)."""

    channel_id: str
    src: str
    dst: str
    #: Conservative lookahead: no message sent at time ``t`` may arrive
    #: before ``t + lookahead_s``.  Must be strictly positive — the
    #: partitioner rejects zero-latency cut links.  Data channels
    #: derive it from the trunk latency, control channels from the
    #: shared-state hub's propagation delay (usually much larger).
    lookahead_s: float
    #: ``"data"`` for backbone packet channels, ``"control"`` for
    #: shared-state replication channels (same sync rules).
    kind: str = "data"


class PartitionModel(_t.Protocol):
    """What a partition builder returns.

    ``setup`` wires the model into its partition (registering message
    handlers, scheduling initial events); ``result`` returns a
    picklable summary shipped back to the coordinator when the run
    finalizes.
    """

    def setup(self, partition: "Partition") -> None: ...

    def result(self) -> _t.Any: ...


@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """Picklable description of one partition.

    The builder is a module-level callable (picklable by reference)
    invoked *inside* the worker process as ``builder(**kwargs)``, so
    partitions are constructed where they run — nothing env-bound ever
    crosses the fork boundary.
    """

    partition_id: str
    index: int
    builder: _t.Callable[..., PartitionModel]
    kwargs: dict[str, _t.Any]
    out_channels: tuple[ChannelSpec, ...]
    in_channels: tuple[ChannelSpec, ...]


class Portal:
    """The sending end of one outbound cross-partition channel."""

    __slots__ = ("channel_id", "lookahead_s", "_partition", "_outbox")

    def __init__(
        self, partition: "Partition", spec: ChannelSpec
    ) -> None:
        self.channel_id = spec.channel_id
        self.lookahead_s = spec.lookahead_s
        self._partition = partition
        self._outbox = partition._outbox[spec.channel_id]

    def send(self, payload: _t.Any, arrival_ts: float | None = None) -> None:
        """Ship ``payload`` across the cut link.

        It arrives at ``now + lookahead`` by default; pass a later
        ``arrival_ts`` to model extra in-path delay (e.g. client-link
        latency before the trunk).  Arrivals earlier than the lookahead
        bound — or earlier than an EOT promise this channel already
        advertised — would break the safe-time invariant and raise
        :class:`SyncError`.
        """
        part = self._partition
        now = part.env.now
        if arrival_ts is None:
            arrival_ts = now + self.lookahead_s
        elif arrival_ts < now + self.lookahead_s:
            raise SyncError(
                f"channel {self.channel_id!r}: arrival_ts {arrival_ts!r} "
                f"undercuts the lookahead bound {now + self.lookahead_s!r} "
                f"(now={now!r}, lookahead={self.lookahead_s!r})"
            )
        promised = part._sent_lbts[self.channel_id]
        if arrival_ts < promised:
            raise SyncError(
                f"channel {self.channel_id!r}: arrival_ts {arrival_ts!r} "
                f"undercuts the EOT promise {promised!r} already "
                f"advertised on this channel (the receiver has been "
                f"granted safe time up to that bound; an earlier arrival "
                f"would rewrite its past)"
            )
        self._outbox.append((arrival_ts, next(part._msg_seq), payload))


class Partition:
    """One shard of the simulated network with its own event loop."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec
        self.partition_id = spec.partition_id
        self.env = Environment()
        self._msg_seq = count()
        self._outbox: dict[str, list[PacketMessage]] = {
            cs.channel_id: [] for cs in spec.out_channels
        }
        self.portals: dict[str, Portal] = {
            cs.channel_id: Portal(self, cs) for cs in spec.out_channels
        }
        self._out_specs = spec.out_channels
        self._in_specs = spec.in_channels
        # Inbound LBTS per channel: before anything is received, the
        # peer can reach us no earlier than t0 + lookahead.
        self._lbts: dict[str, float] = {
            cs.channel_id: self.env.now + cs.lookahead_s
            for cs in spec.in_channels
        }
        self._handlers: dict[str, _t.Callable[[_t.Any], None]] = {}
        # Monotone per-channel EOT promises (the bounds already sent).
        self._sent_lbts: dict[str, float] = {
            cs.channel_id: self.env.now + cs.lookahead_s
            for cs in spec.out_channels
        }
        #: Cross-partition traffic counters (exported in bench JSON).
        #: ``nulls_sent`` counts bound-only channel updates — rounds a
        #: channel advertised a new promise without carrying payload.
        self.messages_sent = 0
        self.nulls_sent = 0
        self.messages_received = 0
        self.model = spec.builder(**spec.kwargs)
        self.model.setup(self)

    # -- model-facing API -------------------------------------------------

    def on_message(
        self, channel_id: str, handler: _t.Callable[[_t.Any], None]
    ) -> None:
        """Register the handler invoked (at arrival timestamp) for each
        message arriving on ``channel_id``."""
        if channel_id not in self._lbts:
            raise KeyError(
                f"{self.partition_id!r} has no inbound channel "
                f"{channel_id!r} (have {sorted(self._lbts)})"
            )
        self._handlers[channel_id] = handler

    # -- round-engine API -------------------------------------------------

    def horizon(self, until: float) -> float:
        """Safe processing bound: events strictly below it may run."""
        if not self._lbts:
            return until
        bound = min(self._lbts.values())
        return bound if bound < until else until

    def inject(
        self,
        batches: list[ChannelBatch],
        bounds: ChannelBounds,
        floor: float,
    ) -> None:
        """Apply one round's grant: packets, EOT promises, and floor.

        ``bounds`` carries the peers' per-channel EOT promises;
        ``floor`` is the coordinator's global minimum next-event time.
        No partition can produce an event below the floor, so every
        inbound bound is lifted to at least ``floor + lookahead`` —
        the idle fast-forward that lets sparse stretches collapse into
        one round.  Our own outbound promises are lifted the same way
        (receivers assumed it from the identical floor), keeping both
        sides of every channel in exact float agreement.

        Messages are injected in ``(arrival_ts, channel_id, seq)``
        order — a total, hash-independent key — so the receiving
        heap's tie-break sequence numbers are identical in serial and
        parallel execution.
        """
        lbts = self._lbts
        for channel_id, bound in bounds.items():
            if bound > lbts[channel_id]:
                lbts[channel_id] = bound
        pending: list[tuple[float, str, int, _t.Any]] = []
        for channel_id, bound, packets in batches:
            if bound > lbts[channel_id]:
                lbts[channel_id] = bound
            for ts, seq, payload in packets:
                pending.append((ts, channel_id, seq, payload))
        for cs in self._in_specs:
            lifted = floor + cs.lookahead_s
            if lifted > lbts[cs.channel_id]:
                lbts[cs.channel_id] = lifted
        sent = self._sent_lbts
        for cs in self._out_specs:
            lifted = floor + cs.lookahead_s
            if lifted > sent[cs.channel_id]:
                sent[cs.channel_id] = lifted
        if not pending:
            return
        pending.sort(key=lambda m: (m[0], m[1], m[2]))
        call_at = self.env.call_at
        handlers = self._handlers
        for ts, channel_id, _seq, payload in pending:
            call_at(ts, handlers[channel_id], payload)
        self.messages_received += len(pending)

    def advance(self, horizon: float) -> None:
        """Process every local event strictly below ``horizon``.

        Uses ``env.run_below(horizon)``: events stamped exactly at the
        horizon stay on the heap for a later round (the same boundary
        rule as ``run(until=...)``, whose stop event is urgent), which
        is what keeps a packet arriving *exactly at* the lookahead
        horizon ordered identically to a serial run.  ``run_below`` is
        the allocation-free variant — this is called once per
        synchronization round, thousands of times per run.
        """
        self.env.run_below(horizon)

    def drain(
        self, until: float
    ) -> tuple[list[ChannelBatch], ChannelBounds, float]:
        """Collect this round's outbound traffic and EOT promises.

        Returns ``(batches, bounds, next_local)``:

        * ``batches`` — one batch per out-channel *with payload*;
        * ``bounds`` — one EOT promise per out-channel, payload or
          not: ``min(next local event, min inbound bound) +
          lookahead``, never moving backwards.  With floor-lifted
          inbound bounds the ``min`` usually resolves to the next
          local event time — the promise tracks real activity, not
          the bare ``now + lookahead`` a fixed-step null would carry;
        * ``next_local`` — the earliest future local event on this
          partition's heap (capped at ``until``), the partition's
          contribution to the coordinator's next floor.  An armed
          fault-injector callback or deadline wakeup is an ordinary
          heap event, so it counts.
        """
        env = self.env
        peek = env.peek()
        next_local = peek if peek < until else until
        lower = next_local
        if self._lbts:
            inbound = min(self._lbts.values())
            if inbound < lower:
                lower = inbound
        batches: list[ChannelBatch] = []
        bounds: ChannelBounds = {}
        for cs in self._out_specs:
            outbox = self._outbox[cs.channel_id]
            lbts = lower + cs.lookahead_s
            sent = self._sent_lbts[cs.channel_id]
            if lbts < sent:
                lbts = sent  # promises never move backwards
            else:
                self._sent_lbts[cs.channel_id] = lbts
            if outbox:
                packets = list(outbox)
                outbox.clear()
                self.messages_sent += len(packets)
                batches.append((cs.channel_id, lbts, packets))
            else:
                self.nulls_sent += 1
            bounds[cs.channel_id] = lbts
        return batches, bounds, next_local

    def done(self, until: float) -> bool:
        """True when nothing below ``until`` remains locally."""
        return self.env.peek() >= until

    def finalize(self, until: float) -> None:
        """Advance the clock to exactly ``until`` (no events remain
        below it) so models observe the same end time as a plain
        ``env.run(until=...)``."""
        if until > self.env.now:
            self.env.run(until=until)
