"""The *real* federated testbed sharded onto the parallel kernel.

Where ``repro.sim.parallel.model`` replays a synthetic approximation of
the federation, this module builds each site's **full stack** — gNB
:class:`~repro.net.openflow.OpenFlowSwitch`, EGS host, containerd +
Docker cluster, client hosts, and the site's own
:class:`~repro.core.federation.SiteController` — inside its own
partition, with the backbone switch, :class:`BackboneApp`, cloud host,
and :class:`~repro.core.federation.SharedStateHub` in a partition of
their own.  Every component is the same class the monolithic
:class:`~repro.testbed.federation.FederatedTestbed` runs; only the
wiring differs:

* the trunk :class:`~repro.net.link.Link` between a site switch and
  the backbone becomes a pair of :class:`PortalEndpoint` half-links,
  one per partition, whose serialization timeline mirrors
  :class:`~repro.net.link.LinkEndpoint` float-for-float and whose
  propagation leg rides the cut-edge channel (lookahead = trunk
  latency);
* shared-state replication rides a second, ``control``-kind channel
  per site: the site's :class:`~repro.core.federation.SiteReplica`
  talks to a :class:`~repro.core.federation.RemoteHubHandle`, the hub
  fans out through :meth:`SharedStateHub.attach_remote` sends — each
  leg paying exactly the ``propagation_delay_s`` the in-process hub
  charges (lookahead = propagation delay).

Build-in-worker: partitions are constructed *inside* the forked worker
from a picklable :class:`TestbedReplay` (config + service schedule +
request schedule — plain data, no env-bound objects), the same idiom
as the experiment engine's fork pool.  Because the serial executor and
the parallel coordinator drive the identical partition builds through
the identical round algorithm, latency traces are byte-identical by
construction — gated in ``tests/test_parallel_testbed.py``.

Determinism notes:

* request/service schedules are generated up front in
  :func:`build_replay` from integer-seeded per-site RNGs — no draws
  happen during the run, so completion interleaving cannot perturb
  the workload;
* host connection ids come from disjoint per-partition ranges (the
  module counter is re-based per partition index), so two sites'
  clients can never collide at a shared server's ``conn_id`` demux —
  in serial and parallel execution alike;
* route-cache recordings are aborted at the portal (a cross-partition
  traversal is not replayable, and a recording holds env-bound hop
  objects that must never be pickled), so cross-site flows take the
  slow path under *both* executors — identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import random
import typing as _t
from collections import deque
from functools import partial
from heapq import heappush

import repro.net.host as _host_mod
from repro.cluster import DockerCluster
from repro.containers import Containerd, DockerEngine, Registry
from repro.containers.registry import PRIVATE_PROFILE, PUBLIC_PROFILE
from repro.core import (
    Annotator,
    ControllerConfig,
    LowLatencyScheduler,
    ServiceRegistry,
    SwitchTopology,
)
from repro.core.federation import (
    RemoteHubHandle,
    SharedStateHub,
    SiteController,
    SiteReplica,
)
from repro.core.federation.state import ReplicaLink
from repro.metrics import MetricsRecorder
from repro.net import Host, Link
from repro.net.addressing import IPv4Address, MACAllocator
from repro.net.cloud import CloudHost
from repro.net.packet import HEADER_BYTES
from repro.net.openflow import OpenFlowSwitch
from repro.ops import OPS_PORT, FlowStatsCollector, OpsApp, OpsReadModel
from repro.services import DEFAULT_CALIBRATION, build_catalog
from repro.services.catalog import template_by_key
from repro.sim.events import NORMAL
from repro.sim.parallel.model import BACKBONE
from repro.sim.parallel.partition import Partition, PartitionSpec, Portal
from repro.sim.parallel.partitioner import (
    CutLink,
    NodeSpec,
    TopologySpec,
    channel_id,
)

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import NetworkInterface
    from repro.net.packet import Packet
    from repro.testbed.federation import FederationConfig

__all__ = [
    "MigrationSpec",
    "PortalEndpoint",
    "ServiceSpec",
    "TestbedReplay",
    "build_backbone_partition",
    "build_migration_replay",
    "build_replay",
    "build_replay_specs",
    "build_site_partition",
    "replay_topology",
    "run_replay",
]

#: Conn-id range width per partition: disjoint blocks far above any
#: realistic connection count, so ids never collide across sites.
_CONN_ID_STRIDE = 1 << 40


# -- deterministic addressing (no objects cross the fork boundary) ---------

def egs_ip(site: int) -> IPv4Address:
    """Site ``site``'s EGS address: ``10.0.<site+1>.1``."""
    return IPv4Address(0x0A000000 + ((site + 1) << 8) + 1)


def client_ip(site: int, client: int) -> IPv4Address:
    """Client ``client`` at ``site``: ``10.0.<site+1>.<10+client>``."""
    return IPv4Address(0x0A000000 + ((site + 1) << 8) + 10 + client)


def cloud_ip() -> IPv4Address:
    return IPv4Address.parse("198.51.100.1")


def service_ip(index: int) -> IPv4Address:
    """Service ``index``'s perceived-cloud address: ``203.0.113.<i+1>``."""
    return IPv4Address(0xCB007100 + index + 1)


# -- the picklable build plan ----------------------------------------------

@dataclasses.dataclass(frozen=True)
class ServiceSpec:
    """One service in the replay: which template, where, and when."""

    key: str
    #: Index into the replay's service list (fixes the service IP).
    index: int
    #: Site whose controller registers the service.
    origin_site: int
    register_at_s: float


@dataclasses.dataclass(frozen=True)
class MigrationSpec:
    """One scheduled live migration in the replay.

    The *destination* site's manager drives it (the pipeline is
    destination-initiated), so the spec is scheduled in the
    ``to_site`` partition; its checkpoint traffic crosses the cut
    trunks as ordinary packets.
    """

    at_s: float
    service_index: int
    from_site: int
    to_site: int
    #: "precopy" / "stopcopy" / None (per-template default).
    mode: str | None = None


@dataclasses.dataclass(frozen=True)
class TestbedReplay:
    """Picklable plan for one full-testbed partitioned run.

    Everything a forked worker needs to build its partition: the
    federation shape, the service registration schedule, and every
    site's request schedule — plain data derived once (deterministic)
    in :func:`build_replay`.
    """

    config: "FederationConfig"
    services: tuple[ServiceSpec, ...]
    #: Per site: tuple of (issue time, client index, service index,
    #: request id) in issue order.
    requests_by_site: tuple[
        tuple[tuple[float, int, int, int], ...], ...
    ]
    horizon_s: float
    seed: int
    request_timeout_s: float = 60.0
    #: Optional per-site fault schedules (``FaultPlan`` instances are
    #: plain data, so they cross the fork boundary with the plan),
    #: aligned with site index; empty tuple = fault-free.  Faults must
    #: target site-local components — the cut trunks and control
    #: channels have no Injector-visible link objects.  Serial and
    #: parallel execution of a faulted replay stay byte-identical
    #: (both build the same partitions), but faulted fingerprints are
    #: never comparable to fault-free ones.
    faults_by_site: tuple[_t.Any, ...] = ()
    #: Scheduled live migrations (plain data; each is armed in its
    #: destination partition).  Every site builds its own private
    #: :class:`~repro.core.migration.BandwidthLedger`; the serial
    #: executor of a partitioned replay builds the identical set, so
    #: admission decisions — and hence fingerprints — match by
    #: construction.
    migrations: tuple[MigrationSpec, ...] = ()

    @property
    def n_sites(self) -> int:
        return self.config.n_sites


def build_replay(
    config: "FederationConfig",
    n_requests: int = 40,
    duration_s: float = 4.0,
    seed: int = 42,
    service_keys: tuple[str, ...] = ("asm", "nginx"),
    request_start_s: float = 2.0,
) -> TestbedReplay:
    """Derive the deterministic replay plan for ``config``.

    Services register early (site0 first, the last site second when
    the federation has one) so registration + replication + intercept
    installation settle before the request window opens at
    ``request_start_s``.
    """
    services = []
    for i, key in enumerate(service_keys):
        origin = 0 if i % 2 == 0 else config.n_sites - 1
        services.append(
            ServiceSpec(
                key=key,
                index=i,
                origin_site=origin,
                register_at_s=0.2 + 0.15 * i,
            )
        )
    per_site: list[tuple[tuple[float, int, int, int], ...]] = []
    base, rem = divmod(n_requests, config.n_sites)
    for site in range(config.n_sites):
        # Integer-only seeding, one stream per site: the schedule is
        # identical no matter which process generates or replays it.
        rng = random.Random(seed * 1_000_003 + site + 1)
        count = base + (1 if site < rem else 0)
        issues = sorted(
            request_start_s + rng.random() * duration_s for _ in range(count)
        )
        requests = tuple(
            (
                at,
                rng.randrange(config.clients_per_site),
                rng.randrange(len(services)),
                site * 1_000_000 + i + 1,
            )
            for i, at in enumerate(issues)
        )
        per_site.append(requests)
    return TestbedReplay(
        config=config,
        services=tuple(services),
        requests_by_site=tuple(per_site),
        # Tail long enough for on-demand pulls (nginx over the public
        # registry is ~5.5 s) plus the response drain.
        horizon_s=request_start_s + duration_s + 30.0,
        seed=seed,
    )


def build_migration_replay(
    config: "FederationConfig",
    n_requests: int = 40,
    duration_s: float = 4.0,
    seed: int = 42,
    service_keys: tuple[str, ...] = ("asm", "nginx"),
) -> TestbedReplay:
    """A migration-heavy variant of :func:`build_replay`.

    After the request window closes, every service is migrated from
    its origin site to the next site over — alternating pre-copy and
    stop-and-copy — so a replay exercises checkpoint transfer over the
    cut trunks, the make-before-break flip, source release, and
    replicated withdrawal, under both executors.
    """
    replay = build_replay(
        config,
        n_requests=n_requests,
        duration_s=duration_s,
        seed=seed,
        service_keys=service_keys,
    )
    start = 2.0 + duration_s + 1.0  # past the request window
    migrations = tuple(
        MigrationSpec(
            at_s=start + 0.5 * i,
            service_index=spec.index,
            from_site=spec.origin_site,
            to_site=(spec.origin_site + 1) % config.n_sites,
            mode="precopy" if i % 2 == 0 else "stopcopy",
        )
        for i, spec in enumerate(replay.services)
        if config.n_sites > 1
    )
    return dataclasses.replace(replay, migrations=migrations)


# -- the half-link: a LinkEndpoint whose far side is another partition ------

class _PortalLinkStub:
    """Stands in for :class:`~repro.net.link.Link` on a portal endpoint.

    The route cache snapshots ``endpoint.link.epoch`` when a recorded
    hop egresses here; the epoch never moves because a portal's
    parameters never change mid-run (recordings through it are aborted
    at serialization end anyway).
    """

    __slots__ = ("epoch", "down", "bandwidth_bps")

    def __init__(self) -> None:
        self.epoch = 0
        self.down = False
        #: Stamped by :class:`PortalEndpoint` so the flow-stats
        #: collector's utilization math sees the same trunk bandwidth
        #: as the monolithic testbed's real ``Link``.
        self.bandwidth_bps = 0.0


class PortalEndpoint:
    """One side of a cut trunk link, transmitting into a portal.

    Mirrors :class:`~repro.net.link.LinkEndpoint`'s FIFO transmitter
    exactly — same busy/deque discipline, same
    ``(HEADER_BYTES + payload) * 8 / bandwidth`` serialization float,
    same end-of-serialization scheduling — but the propagation leg is
    a ``portal.send`` with ``arrival_ts = now + latency`` instead of a
    local delivery callback, so the packet lands on the peer
    partition's heap at the exact instant ``LinkEndpoint._deliver``
    would have fired.  Route-cache state is stripped before the send:
    recordings hold env-bound hops (unpicklable, and a cross-partition
    traversal is not replayable anyway), so cross-site flows stay on
    the slow path under both executors.
    """

    __slots__ = (
        "portal",
        "iface",
        "peer",
        "link",
        "_pending",
        "_busy",
        "_env",
        "_bw",
        "_lat",
        "_serialized_cb",
    )

    def __init__(
        self,
        portal: Portal,
        iface: "NetworkInterface",
        bandwidth_bps: float,
        latency_s: float,
    ) -> None:
        if latency_s < portal.lookahead_s:
            raise ValueError(
                f"portal endpoint latency {latency_s!r}s undercuts channel "
                f"{portal.channel_id!r} lookahead {portal.lookahead_s!r}s"
            )
        self.portal = portal
        self.iface = iface
        #: No peer endpoint in this partition: inbound ``_record_hop``
        #: sees ``in_ep.peer is None`` and aborts recording, exactly
        #: the packet-out-injection fallback of the monolithic path.
        self.peer = None
        self.link = _PortalLinkStub()
        self.link.bandwidth_bps = float(bandwidth_bps)
        self._pending: deque["Packet"] = deque()
        self._busy = False
        self._env = iface.device.env
        self._bw = float(bandwidth_bps)
        self._lat = float(latency_s)
        self._serialized_cb = self._serialized
        iface.endpoint = self

    def _serialize(self, packet: "Packet") -> None:
        env = self._env
        heappush(
            env._queue,
            (
                env._now
                + (HEADER_BYTES + packet.tcp.payload_bytes) * 8 / self._bw,
                NORMAL,
                next(env._seq),
                self._serialized_cb,
                (packet,),
            ),
        )

    def transmit(self, packet: "Packet") -> None:
        if self._busy:
            self._pending.append(packet)
        else:
            self._busy = True
            self._serialize(packet)

    def _serialized(self, packet: "Packet") -> None:
        env = self._env
        hop = packet._fp_next
        if hop is not None:
            # A fused fast hop can never target a portal (recordings
            # through it never finalize), but a stale pointer from an
            # upstream invalidation may survive: kill it before pickling.
            hop.route.invalidate()
            packet._fp_next = None
        if packet._fp_rec is not None:
            packet._fp_rec = None  # cross-partition traversals don't replay
        self.portal.send(packet, arrival_ts=env._now + self._lat)
        if self._pending:
            self._serialize(self._pending.popleft())
        else:
            self._busy = False


# -- partition models -------------------------------------------------------

def _rebase_conn_ids(partition_index: int) -> None:
    """Give this partition's hosts a disjoint conn-id range.

    ``Host`` demultiplexes server-side connections by ``conn_id``
    alone; forked workers inherit the same module counter, so without
    re-basing, clients at two sites could collide at a shared server.
    Under the serial executor the last assignment wins and every
    partition draws from one shared counter — globally unique either
    way (the values differ between executors, but conn ids never enter
    flow matches, timings, or latency digests).
    """
    _host_mod._conn_ids = itertools.count(partition_index * _CONN_ID_STRIDE + 1)


def build_site_partition(
    replay: TestbedReplay, site: int
) -> "SitePartitionModel":
    return SitePartitionModel(replay, site)


def build_backbone_partition(replay: TestbedReplay) -> "BackbonePartitionModel":
    return BackbonePartitionModel(replay)


class SitePartitionModel:
    """One site's full stack, built inside its own partition."""

    def __init__(self, replay: TestbedReplay, site: int) -> None:
        self.replay = replay
        self.site = site
        self.name = f"site{site}"
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self._digest = hashlib.md5()

    def setup(self, partition: Partition) -> None:
        self.partition = partition
        env = self.env = partition.env
        config = self.replay.config
        _rebase_conn_ids(partition.spec.index)
        calibration = DEFAULT_CALIBRATION
        macs = MACAllocator()

        # gNB switch with the trunk as a portal half-link.
        dpid = self.site + 2  # backbone owns dpid 1
        self.switch = OpenFlowSwitch(env, f"gnb-{self.name}", datapath_id=dpid)
        self.topology = SwitchTopology()
        trunk_port, trunk_iface = self.switch.add_port(macs.allocate())
        self.trunk_iface = trunk_iface
        PortalEndpoint(
            partition.portals[channel_id(self.name, BACKBONE)],
            trunk_iface,
            config.trunk_bandwidth_bps,
            config.trunk_latency_s,
        )
        self.topology.set_cloud_port(dpid, trunk_port)

        # Image registries + catalog are per-partition (pull traffic is
        # site-local; the profiles make it deterministic).
        images, behaviors = build_catalog(calibration)
        self.public_registry = public = Registry(env, "docker-hub", PUBLIC_PROFILE)
        self.private_registry = private = Registry(env, "private-lan", PRIVATE_PROFILE)
        for image in images.values():
            public.publish(image)
            private.publish(image)
        self.active_registry = active = (
            private if config.registry == "private" else public
        )

        # EGS with its runtime and Docker cluster.
        self.egs = Host(env, f"{self.name}-egs", macs.allocate(), egs_ip(self.site))
        self._wire_host(
            self.egs,
            macs,
            config.egs_link_bandwidth_bps,
            config.egs_link_latency_s,
        )
        containerd = Containerd(env, self.egs)
        engine = DockerEngine(env, containerd)
        self.cluster = DockerCluster(
            env, f"{self.name}-docker", self.egs, engine, active, distance=0
        )

        self.clients = []
        for j in range(config.clients_per_site):
            client = Host(
                env,
                f"{self.name}-rpi{j:02d}",
                macs.allocate(),
                client_ip(self.site, j),
            )
            self._wire_host(
                client,
                macs,
                config.client_link_bandwidth_bps,
                config.client_link_latency_s,
            )
            self.clients.append(client)

        # Remote hosts are reachable through the trunk.
        for other in range(config.n_sites):
            if other == self.site:
                continue
            self.topology.register_host(dpid, egs_ip(other), trunk_port)
            for j in range(config.clients_per_site):
                self.topology.register_host(
                    dpid, client_ip(other, j), trunk_port
                )

        # Shared state over the control channel: replica -> remote hub.
        handle = RemoteHubHandle(
            partition.portals[
                channel_id(self.name, BACKBONE, "control")
            ].send
        )
        self.replica = SiteReplica(
            env, self.name, ReplicaLink(env, handle, self.name)
        )
        handle.link = self.replica.link
        partition.on_message(
            channel_id(BACKBONE, self.name, "control"),
            self.replica.apply_remote,
        )
        partition.on_message(
            channel_id(BACKBONE, self.name), self._packet_from_backbone
        )

        self.recorder = MetricsRecorder()
        registry = ServiceRegistry(
            Annotator(images, behaviors), state=self.replica
        )
        controller_config = dataclasses.replace(
            ControllerConfig.from_calibration(calibration),
            auto_scale_down=config.auto_scale_down,
        )
        self.controller = SiteController(
            env,
            registry,
            [self.cluster],
            LowLatencyScheduler(),
            self.topology,
            self.replica,
            config=controller_config,
            calibration=calibration,
            recorder=self.recorder,
            remote_distance_penalty=config.remote_distance_penalty,
        )
        self.controller.attach(
            self.switch, latency_s=config.control_channel_latency_s
        )

        # Live migration: daemon + manager on every site, identically
        # under both executors.  The ledger is partition-private; the
        # serial executor builds the same per-site ledgers, so planner
        # admission is byte-identical.
        from repro.core.migration import BandwidthLedger, MigrationManager

        clients_by_ip = {client.ip: client for client in self.clients}

        def _conntrack(ip, dst_ip, dst_port):
            host = clients_by_ip.get(ip)
            return host.tracked_ports(dst_ip, dst_port) if host else ()

        self.controller.conntrack = _conntrack
        self.ledger = BandwidthLedger(
            env,
            default_capacity_bps=int(
                config.trunk_bandwidth_bps
                * getattr(config, "migration_budget_fraction", 0.4)
            ),
        )
        self.manager = MigrationManager(
            env,
            self.name,
            self.controller,
            self.cluster,
            self.egs,
            {f"site{i}": egs_ip(i) for i in range(config.n_sites)},
            self.ledger,
        )
        # Operational surface: same per-site wiring as the monolithic
        # testbed.  Listeners and scheduled ticks are created *here*
        # (post-fork) — Host pickling strips listeners, so the port
        # must open inside the worker.  Both executors run this same
        # setup, so serial/parallel parity is preserved with the ops
        # surface on.  ``getattr``: a replay plan pickled by an older
        # tree lacks the ops knobs.
        self.collector: FlowStatsCollector | None = None
        if getattr(config, "flow_stats_period_s", None) is not None:
            self.collector = FlowStatsCollector(
                env,
                self.name,
                self.switch,
                {f"trunk:{self.name}": trunk_iface.endpoint.link},
                state=self.replica,
                period_s=config.flow_stats_period_s,
                recorder=self.recorder,
            ).start()
        self.ops = OpsReadModel(
            env,
            self.controller,
            site=self.name,
            switches=(self.switch,),
            manager=self.manager,
            collector=self.collector,
        )
        self.ops_app: OpsApp | None = None
        if getattr(config, "ops_api", True):
            self.ops_app = OpsApp(self.ops)
            self.egs.open_port(OPS_PORT, self.ops_app)

        for mig in self.replay.migrations:
            if mig.to_site == self.site:
                env.call_at(mig.at_s, self._start_migration, mig)

        # Schedule this site's service registrations and requests.
        for spec in self.replay.services:
            if spec.origin_site == self.site:
                env.call_at(spec.register_at_s, self._register_service, spec)
        for at, client_idx, service_idx, req_id in (
            self.replay.requests_by_site[self.site]
        ):
            env.call_at(at, self._start_request, client_idx, service_idx, req_id)

        # Fault wiring: the plan crossed the fork boundary as plain
        # data; arm it against this site's components only.
        faults = self.replay.faults_by_site
        if faults and faults[self.site] is not None:
            from repro.faults import Injector

            self.injector = Injector(
                _SiteFaultView(self), faults[self.site]
            ).arm()

    # -- wiring helpers ---------------------------------------------------

    def _wire_host(
        self,
        host: Host,
        macs: MACAllocator,
        bandwidth_bps: float,
        latency_s: float,
    ) -> None:
        port_no, iface = self.switch.add_port(macs.allocate())
        Link(self.env, host.iface, iface, bandwidth_bps, latency_s)
        self.topology.register_host(self.switch.datapath_id, host.ip, port_no)

    def _packet_from_backbone(self, packet: "Packet") -> None:
        self.switch.receive(packet, self.trunk_iface)

    # -- workload ---------------------------------------------------------

    def _register_service(self, spec: ServiceSpec) -> None:
        template = template_by_key(spec.key)
        self.controller.register_service(
            template.definition_yaml,
            service_ip(spec.index),
            80,
            template_key=template.key,
        )

    def _start_request(
        self, client_idx: int, service_idx: int, req_id: int
    ) -> None:
        self.issued += 1
        self.env.process(self._run_request(client_idx, service_idx, req_id))

    def _start_migration(self, spec: MigrationSpec) -> None:
        service = self.controller.registry.lookup(
            service_ip(spec.service_index), 80
        )
        if service is None:
            # Registration never replicated in (e.g. faulted replay):
            # identical no-op under both executors.
            return
        self.manager.request_migration(
            service.name, f"site{spec.from_site}", mode=spec.mode
        )

    def _run_request(self, client_idx: int, service_idx: int, req_id: int):
        template = template_by_key(self.replay.services[service_idx].key)
        try:
            result = yield from self.clients[client_idx].http_request(
                service_ip(service_idx),
                80,
                template.request,
                timeout=self.replay.request_timeout_s,
            )
        except Exception as exc:
            self.failed += 1
            self._digest.update(
                f"{req_id}:!{type(exc).__name__}\n".encode("ascii")
            )
            return
        self.completed += 1
        self._digest.update(
            f"{req_id}:{result.time_total:.17g}\n".encode("ascii")
        )

    # -- results ----------------------------------------------------------

    def result(self) -> dict[str, _t.Any]:
        migration_digest = hashlib.md5()
        for o in self.manager.outcomes:
            migration_digest.update(
                f"{o.service_name}:{o.from_site}->{o.to_site}:{o.mode}:"
                f"{o.rounds}:{o.bytes_moved}:{int(o.completed)}:"
                f"{o.failed_phase}:{o.downtime_s:.17g}\n".encode("ascii")
            )
        return {
            "site": self.site,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "latency_md5": self._digest.hexdigest(),
            "migration_md5": migration_digest.hexdigest(),
            "migrations_completed": sum(
                1 for o in self.manager.outcomes if o.completed
            ),
            "migrations_aborted": sum(
                1 for o in self.manager.outcomes if not o.completed
            ),
            "peak_flow_table": int(self.switch.table.peak_size),
            "switch_stats": dict(self.switch.stats),
        }


class _SiteFaultView:
    """Duck-typed testbed view the fault Injector resolves targets on.

    Exposes exactly one site's components (hosts, switch, cluster,
    registries, controller), so a site's fault plan cannot reach
    across the partition boundary.
    """

    def __init__(self, model: SitePartitionModel) -> None:
        self.env = model.env
        self.egs = model.egs
        self.clients = model.clients
        self.clusters = [model.cluster]
        self.switches = {model.switch.datapath_id: model.switch}
        self.public_registry = model.public_registry
        self.private_registry = model.private_registry
        self.active_registry = model.active_registry
        self.controllers = [model.controller]
        self.recorder = model.recorder


class BackbonePartitionModel:
    """The backbone island: switch, static app, cloud, shared-state hub."""

    def __init__(self, replay: TestbedReplay) -> None:
        self.replay = replay

    def setup(self, partition: Partition) -> None:
        # Deferred import: repro.testbed imports this module's
        # siblings; importing it lazily keeps the package acyclic.
        from repro.testbed.federation import BackboneApp

        self.partition = partition
        env = self.env = partition.env
        config = self.replay.config
        _rebase_conn_ids(partition.spec.index)
        macs = MACAllocator()

        self.switch = OpenFlowSwitch(env, "backbone", datapath_id=1)
        self.topology = SwitchTopology()
        self.app = BackboneApp(env, self.topology)
        self.cloud = CloudHost(env, "cloud", macs.allocate(), cloud_ip())
        cloud_port, cloud_iface = self.switch.add_port(macs.allocate())
        Link(
            env,
            self.cloud.iface,
            cloud_iface,
            config.cloud_link_bandwidth_bps,
            config.cloud_link_latency_s,
        )
        self.topology.set_cloud_port(1, cloud_port)

        # One portal half-link per site trunk; every host of a site is
        # reachable through that site's port.
        self.hub = SharedStateHub(
            env, propagation_delay_s=config.propagation_delay_s
        )
        for site in range(config.n_sites):
            name = f"site{site}"
            port_no, iface = self.switch.add_port(macs.allocate())
            PortalEndpoint(
                partition.portals[channel_id(BACKBONE, name)],
                iface,
                config.trunk_bandwidth_bps,
                config.trunk_latency_s,
            )
            self.topology.register_host(1, egs_ip(site), port_no)
            for j in range(config.clients_per_site):
                self.topology.register_host(1, client_ip(site, j), port_no)
            partition.on_message(
                channel_id(name, BACKBONE),
                partial(self._packet_from_site, iface),
            )
            # Control plane: site writes arrive here having already
            # paid the site -> hub delay (channel lookahead); fan-out
            # to other remote sites pays hub -> site over their portals.
            self.hub.attach_remote(
                name,
                partition.portals[channel_id(BACKBONE, name, "control")].send,
            )
            partition.on_message(
                channel_id(name, BACKBONE, "control"),
                partial(self.hub.deliver, name),
            )

        self.app.attach(
            self.switch, latency_s=config.control_channel_latency_s
        )

        # Cloud side of every service is up from t=0 (the monolithic
        # testbed opens it at registration; opening early only means
        # the cloud answers requests that could not yet arrive).
        _images, behaviors = build_catalog(DEFAULT_CALIBRATION)
        for spec in self.replay.services:
            template = template_by_key(spec.key)
            behavior = behaviors.get(template.images[0].reference)
            factory = behavior.app_factory()
            if factory is not None:
                self.cloud.open_service(
                    service_ip(spec.index), 80, factory(env)
                )

    def _packet_from_site(
        self, iface: "NetworkInterface", packet: "Packet"
    ) -> None:
        self.switch.receive(packet, iface)

    def result(self) -> dict[str, _t.Any]:
        return {
            "switch_stats": dict(self.switch.stats),
            "hub_entries": len(self.hub._values),
        }


# -- topology + runners -----------------------------------------------------

def replay_topology(replay: TestbedReplay) -> TopologySpec:
    """Cut the full testbed at the trunks *and* the control channels.

    Each kind derives its lookahead from its own physical latency
    (``FederationConfig.data_lookahead_s`` /
    ``control_lookahead_s``): data channels ride the trunk, control
    channels ride the shared-state hub's propagation delay — usually
    an order of magnitude wider, so replication traffic never forces
    trunk-sized synchronization rounds.  The adaptive round engine
    piggybacks both kinds' bounds on the same round batch, so the
    kind-suffixed channel pairs cost no extra null messages.
    """
    config = replay.config
    nodes = [NodeSpec(BACKBONE, build_backbone_partition, {"replay": replay})]
    links = []
    for site in range(config.n_sites):
        name = f"site{site}"
        nodes.append(
            NodeSpec(
                name, build_site_partition, {"replay": replay, "site": site}
            )
        )
        links.append(
            CutLink(name, BACKBONE, config.data_lookahead_s, kind="data")
        )
        links.append(
            CutLink(
                name, BACKBONE, config.control_lookahead_s, kind="control"
            )
        )
    return TopologySpec(nodes=tuple(nodes), links=tuple(links))


def build_replay_specs(replay: TestbedReplay) -> list[PartitionSpec]:
    return replay_topology(replay).partitions()


def run_replay(
    replay: TestbedReplay,
    parallel: bool = False,
    profile_dir: _t.Any = None,
):
    """Run the full-testbed replay; returns a ``ParallelRun``.

    ``profile_dir`` (a directory path) enables per-worker ``cProfile``
    dumps — merge them with
    :func:`repro.sim.parallel.coordinator.merged_profile_stats`.
    """
    from repro.sim.parallel.coordinator import (
        ParallelCoordinator,
        SerialExecutor,
    )

    specs = build_replay_specs(replay)
    executor = (
        ParallelCoordinator(specs, profile_dir=profile_dir)
        if parallel
        else SerialExecutor(specs, profile_dir=profile_dir)
    )
    return executor.run(until=replay.horizon_s)


def combined_fingerprint(results: dict[str, _t.Any], n_sites: int) -> str:
    """MD5 over the per-site latency digests in site order."""
    digest = hashlib.md5()
    for site in range(n_sites):
        digest.update(results[f"site{site}"]["latency_md5"].encode("ascii"))
    return digest.hexdigest()


def totals(results: dict[str, _t.Any], n_sites: int) -> dict[str, int]:
    """Aggregate request counters across sites."""
    issued = completed = failed = 0
    for site in range(n_sites):
        issued += results[f"site{site}"]["issued"]
        completed += results[f"site{site}"]["completed"]
        failed += results[f"site{site}"]["failed"]
    return {"issued": issued, "completed": completed, "failed": failed}
