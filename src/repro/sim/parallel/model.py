"""Synthetic site-partitioned edge data plane for large-scale replays.

The full testbed's per-packet machinery tops out around a quarter
million events per second in one process; driving a 1M-client /
10M-request replay through it would take hours.  This model keeps the
*shape* of the paper's data plane — per-site gNB with a real
:class:`~repro.net.openflow.table.FlowTable` (installs, idle-timeout
sweeps, peak tracking), per-hop link latencies, a backbone that
forwards cross-site bursts and fronts the cloud — but drives it with
slim scheduled callbacks, so a request costs a handful of events
instead of dozens of packet hops.  Every random draw happens at
request issue time from an integer-seeded per-site RNG, which makes
the replay deterministic regardless of how completions interleave —
the property the serial-vs-parallel byte-identity gate rests on.

Topology (mirrors ``testbed/federation.py``): one partition per site
plus a backbone partition, cut at the trunk links whose latency is the
conservative lookahead:

.. code-block:: text

    site0 ══ trunk ══╗                 ╔══ trunk ══ site1
                     backbone ── cloud
    site2 ══ trunk ══╝                 ╚══ trunk ══ site3

Latency fingerprints are incremental per-site md5s over
``"req_id:latency"`` lines in completion order; the combined
fingerprint (site order) is what the determinism gates compare.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import typing as _t

from repro.net.addressing import IPv4Address
from repro.net.openflow.match import FlowMatch
from repro.net.openflow.table import FlowEntry, FlowTable
from repro.sim.parallel.partition import Partition, PartitionSpec
from repro.sim.parallel.partitioner import (
    CutLink,
    NodeSpec,
    TopologySpec,
    channel_id,
)

#: Partition name of the backbone/cloud island.
BACKBONE = "backbone"
#: ``dst_site`` sentinel routing a request to the cloud.
CLOUD = -1
#: Client IPs start here (10.0.0.0), service ports here.
_CLIENT_IP_BASE = 0x0A000000
_SERVICE_PORT_BASE = 1024


@dataclasses.dataclass(frozen=True)
class EdgeWorkload:
    """Knobs of the synthetic federated replay."""

    n_sites: int = 4
    #: Total logical clients across all sites.
    n_clients: int = 100_000
    #: Total requests across all sites.
    n_requests: int = 1_000_000
    #: Capture window the requests spread over.
    duration_s: float = 300.0
    n_services: int = 32
    #: Fraction of requests served by a *different* site (crosses the
    #: backbone twice each way) and by the cloud.
    remote_fraction: float = 0.08
    cloud_fraction: float = 0.02
    client_latency_s: float = 200e-6
    egs_latency_s: float = 50e-6
    #: Site <-> backbone one-way latency: the lookahead window.
    trunk_latency_s: float = 0.0125
    backbone_switch_delay_s: float = 30e-6
    cloud_latency_s: float = 0.015
    service_time_mean_s: float = 0.002
    flow_idle_timeout_s: float = 30.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one site")
        if self.remote_fraction + self.cloud_fraction > 1.0:
            raise ValueError("remote + cloud fractions exceed 1")

    @property
    def until_s(self) -> float:
        """Run horizon: the window plus a response-drain tail."""
        return self.duration_s + 5.0

    def site_share(self, total: int, site: int) -> int:
        """Site ``site``'s share of ``total`` (even split, remainder low)."""
        base, rem = divmod(total, self.n_sites)
        return base + (1 if site < rem else 0)

    def client_base(self, site: int) -> int:
        return sum(self.site_share(self.n_clients, s) for s in range(site))


def build_specs(workload: EdgeWorkload) -> list[PartitionSpec]:
    """Partition the synthetic federation: cut at the trunk links."""
    return topology_spec(workload).partitions()


def topology_spec(workload: EdgeWorkload) -> TopologySpec:
    nodes = [
        NodeSpec(BACKBONE, build_backbone_model, {"workload": workload})
    ]
    links = []
    for site in range(workload.n_sites):
        name = f"site{site}"
        nodes.append(
            NodeSpec(name, build_site_model, {"workload": workload, "site": site})
        )
        links.append(CutLink(name, BACKBONE, workload.trunk_latency_s))
    return TopologySpec(nodes=tuple(nodes), links=tuple(links))


def build_site_model(workload: EdgeWorkload, site: int) -> "SiteModel":
    return SiteModel(workload, site)


def build_backbone_model(workload: EdgeWorkload) -> "BackboneModel":
    return BackboneModel(workload)


class SiteModel:
    """One edge site: clients, gNB flow table, local serving."""

    def __init__(self, workload: EdgeWorkload, site: int) -> None:
        self.workload = workload
        self.site = site
        self.name = f"site{site}"
        self.n_clients = workload.site_share(workload.n_clients, site)
        self.n_requests = workload.site_share(workload.n_requests, site)
        self.client_base = workload.client_base(site)
        # Integer-only seeding: string seeds hash differently across
        # processes (PYTHONHASHSEED), which would silently break the
        # serial-vs-parallel byte-identity guarantee.
        self.rng = random.Random(workload.seed * 1_000_003 + site + 1)
        self.table = FlowTable()
        self.flows: dict[tuple[int, int], FlowEntry] = {}
        self.issued = 0
        self.completed = 0
        self.n_local = 0
        self.n_remote = 0
        self.n_cloud = 0
        self.flows_installed = 0
        self.flows_swept = 0
        self.latency_sum = 0.0
        self.latency_min = float("inf")
        self.latency_max = 0.0
        self._digest = hashlib.md5()

    # -- wiring ----------------------------------------------------------

    def setup(self, partition: Partition) -> None:
        self.partition = partition
        self.env = partition.env
        self.trunk = partition.portals[channel_id(self.name, BACKBONE)]
        partition.on_message(channel_id(BACKBONE, self.name), self._from_backbone)
        w = self.workload
        self._rate = (
            self.n_requests / w.duration_s if w.duration_s > 0 else 0.0
        )
        if self.n_requests:
            self.env.call_at(
                self.rng.expovariate(self._rate), self._issue_request
            )
        self._sweep_interval = max(w.flow_idle_timeout_s / 8.0, 0.5)
        self.env.call_at(self._sweep_interval, self._sweep)

    # -- workload driver -------------------------------------------------

    def _issue_request(self) -> None:
        env = self.env
        now = env.now
        rng = self.rng
        w = self.workload
        self.issued += 1
        req_id = self.issued
        client = rng.randrange(self.n_clients)
        service = rng.randrange(w.n_services)
        roll = rng.random()
        service_time = rng.expovariate(1.0 / w.service_time_mean_s)

        if roll < w.cloud_fraction:
            self.n_cloud += 1
            self.trunk.send(
                ("q", CLOUD, (self.site, req_id, client, service,
                              service_time, now)),
                arrival_ts=now + w.client_latency_s + w.trunk_latency_s,
            )
        elif roll < w.cloud_fraction + w.remote_fraction and w.n_sites > 1:
            self.n_remote += 1
            pick = rng.randrange(w.n_sites - 1)
            dst = pick + 1 if pick >= self.site else pick
            self.trunk.send(
                ("q", dst, (self.site, req_id, client, service,
                            service_time, now)),
                arrival_ts=now + w.client_latency_s + w.trunk_latency_s,
            )
        else:
            self.n_local += 1
            self._touch_flow(self.client_base + client, service, now)
            done = (
                now
                + 2.0 * (w.client_latency_s + w.egs_latency_s)
                + service_time
            )
            env.call_at(done, self._complete, req_id, now)

        if self.issued < self.n_requests:
            gap = rng.expovariate(self._rate)
            if now + gap <= w.duration_s:
                env.call_at(now + gap, self._issue_request)

    def _complete(self, req_id: int, t_issued: float) -> None:
        self._record(req_id, self.env.now - t_issued)

    def _record(self, req_id: int, latency: float) -> None:
        self.completed += 1
        self.latency_sum += latency
        if latency < self.latency_min:
            self.latency_min = latency
        if latency > self.latency_max:
            self.latency_max = latency
        self._digest.update(f"{req_id}:{latency:.17g}\n".encode("ascii"))

    # -- cross-partition traffic -----------------------------------------

    def _from_backbone(self, message: tuple) -> None:
        kind = message[0]
        env = self.env
        w = self.workload
        if kind == "s":
            # Serve a remote site's request here: touch/install the
            # redirect flow, process, respond over the trunk.
            src_site, req_id, client, service, service_time, t_issued = message[1]
            self._touch_flow(
                w.client_base(src_site) + client, service, env.now
            )
            env.call_at(
                env.now + 2.0 * w.egs_latency_s + service_time,
                self._respond,
                src_site,
                req_id,
                t_issued,
            )
        else:  # "p": response to a request this site originated
            _kind, req_id, t_issued = message
            self._record(
                req_id, (env.now + w.client_latency_s) - t_issued
            )

    def _respond(self, src_site: int, req_id: int, t_issued: float) -> None:
        self.trunk.send(("r", src_site, req_id, t_issued))

    # -- flow table ------------------------------------------------------

    def _touch_flow(self, client_ip: int, service: int, now: float) -> None:
        key = (client_ip, service)
        entry = self.flows.get(key)
        if entry is not None:
            entry.touch(now)
            return
        entry = FlowEntry(
            FlowMatch(
                ip_src=IPv4Address(_CLIENT_IP_BASE + client_ip),
                tcp_dst=_SERVICE_PORT_BASE + service,
            ),
            actions=(),
            idle_timeout=self.workload.flow_idle_timeout_s,
            cookie=key,
            notify_removal=False,
        )
        self.table.install(entry, now)
        self.flows[key] = entry
        self.flows_installed += 1

    def _sweep(self) -> None:
        now = self.env.now
        expired, earliest = self.table.sweep_and_deadline(now)
        if expired:
            flows = self.flows
            for entry, _reason in expired:
                del flows[entry.cookie]
            self.flows_swept += len(expired)
        wake = now + self._sweep_interval
        if earliest is not None and earliest > wake:
            wake = earliest
        if wake < self.workload.until_s:
            self.env.call_at(wake, self._sweep)

    # -- results ---------------------------------------------------------

    def result(self) -> dict[str, _t.Any]:
        return {
            "site": self.site,
            "issued": self.issued,
            "completed": self.completed,
            "local": self.n_local,
            "remote": self.n_remote,
            "cloud": self.n_cloud,
            "flows_installed": self.flows_installed,
            "flows_swept": self.flows_swept,
            "peak_flow_table": int(self.table.peak_size),
            "final_flow_table": len(self.table),
            "latency_sum": self.latency_sum,
            "latency_min": (
                self.latency_min if self.completed else None
            ),
            "latency_max": (self.latency_max if self.completed else None),
            "latency_md5": self._digest.hexdigest(),
        }


class BackboneModel:
    """The backbone island: cross-site forwarding plus the cloud."""

    def __init__(self, workload: EdgeWorkload) -> None:
        self.workload = workload
        self.forwarded = 0
        self.cloud_served = 0

    def setup(self, partition: Partition) -> None:
        self.partition = partition
        self.env = partition.env
        self.to_site = {
            site: partition.portals[channel_id(BACKBONE, f"site{site}")]
            for site in range(self.workload.n_sites)
        }
        for site in range(self.workload.n_sites):
            partition.on_message(
                channel_id(f"site{site}", BACKBONE), self._from_site
            )

    def _from_site(self, message: tuple) -> None:
        w = self.workload
        now = self.env.now
        kind = message[0]
        if kind == "q":
            dst = message[1]
            req = message[2]
            if dst == CLOUD:
                # Cloud round trip fused into one response message: the
                # uplink+serve+downlink delay all happen backbone-side,
                # so the arrival timestamp carries the whole detour.
                src_site, req_id, _client, _service, service_time, t_issued = req
                self.cloud_served += 1
                self.to_site[src_site].send(
                    ("p", req_id, t_issued),
                    arrival_ts=now
                    + w.backbone_switch_delay_s
                    + 2.0 * w.cloud_latency_s
                    + service_time
                    + w.trunk_latency_s,
                )
            else:
                self.forwarded += 1
                self.to_site[dst].send(
                    ("s", req),
                    arrival_ts=now
                    + w.backbone_switch_delay_s
                    + w.trunk_latency_s,
                )
        else:  # "r": response heading back to the originating site
            _kind, src_site, req_id, t_issued = message
            self.forwarded += 1
            self.to_site[src_site].send(
                ("p", req_id, t_issued),
                arrival_ts=now
                + w.backbone_switch_delay_s
                + w.trunk_latency_s,
            )

    def result(self) -> dict[str, _t.Any]:
        return {
            "forwarded": self.forwarded,
            "cloud_served": self.cloud_served,
        }


def combined_fingerprint(results: dict[str, _t.Any], n_sites: int) -> str:
    """MD5 over the per-site digests in site order."""
    digest = hashlib.md5()
    for site in range(n_sites):
        digest.update(results[f"site{site}"]["latency_md5"].encode("ascii"))
    return digest.hexdigest()


def totals(results: dict[str, _t.Any], n_sites: int) -> dict[str, int]:
    """Aggregate issue/completion counters across sites."""
    issued = completed = 0
    for site in range(n_sites):
        issued += results[f"site{site}"]["issued"]
        completed += results[f"site{site}"]["completed"]
    return {"issued": issued, "completed": completed}
