"""Event primitives for the simulation kernel.

An :class:`Event` moves through three states:

``pending``
    Created but not yet triggered; it sits in no queue.
``triggered``
    A value (or an error) has been attached and the event has been
    pushed onto the environment's heap.
``processed``
    The event loop has popped it and run all its callbacks.

Callbacks are plain callables taking the event itself.  Processes use
them to resume; condition events use them to count completions.
"""

from __future__ import annotations

import heapq
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class _Pending:
    """Sentinel for "no value attached yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING = _Pending()

#: Scheduling priorities. Lower values run first at equal times.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence on the simulation timeline.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (in registration order) when the event is
        #: processed.  ``None`` once processed.
        self.callbacks: list[_t.Callable[[Event], None]] | None = []
        self._value: _t.Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether a value has been attached (event is or was scheduled)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event carries a value (``True``) or an error."""
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The attached value or exception; raises if still pending."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure has been acknowledged by some process.

        An event that fails and is never yielded by any process would
        silently swallow its exception; the environment re-raises such
        un-defused failures at the end of their step.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled."""
        self._defused = True

    def cancel(self) -> None:
        """Withdraw interest in this event (no-op for plain events).

        Subclasses with retained scheduling state — store gets,
        :class:`~repro.sim.environment.Deadline` guards — override
        this so an abandoned waiter stops costing anything.  Calling
        it on an event that cannot be cancelled is deliberately
        harmless, which lets guard-timeout code cancel its deadline
        without caring which concrete type the environment handed out.
        """

    # -- triggering -----------------------------------------------------

    def succeed(self, value: _t.Any = None) -> "Event":
        """Attach a success value and schedule the event now."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): succeed() runs once per store
        # hand-off, process resumption and condition fire, and the
        # zero-delay case needs none of schedule()'s generality.
        env = self.env
        heapq.heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Attach an exception and schedule the event now."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        heapq.heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback shape)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))

    # -- composition ----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay = float(delay)
        self._ok = True
        self._value = value
        # Inlined env.schedule (delay already validated above).
        heapq.heappush(env._queue, (env._now + delay, NORMAL, next(env._seq), self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """An event that triggers when ``evaluate`` says enough children did.

    The condition's value is a dict mapping each *finished* child event
    to its value, preserving the original child order.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: _t.Callable[[int, int], bool],
        events: _t.Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._count = 0
        self._evaluate = evaluate

        if not self._events:
            # Trivially true.
            self.succeed({})
            return

        check = self._check
        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                # A sibling failed after the condition already fired;
                # the condition can no longer surface it.
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, _t.Any]:
        return {
            e: e._value for e in self._events if e.callbacks is None and e._ok
        }

    @property
    def events(self) -> tuple[Event, ...]:
        return self._events


# Shared evaluators: one function object for the process lifetime
# instead of a fresh closure per condition (conditions are created per
# timeout-guarded wait, one of the hottest allocation sites).
def _all_done(total: int, done: int) -> bool:
    return done == total


def _any_done(total: int, done: int) -> bool:
    return done >= 1


class AllOf(Condition):
    """Triggers once *all* child events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Iterable[Event]) -> None:
        super().__init__(env, _all_done, events)


class AnyOf(Condition):
    """Triggers once *any* child event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Iterable[Event]) -> None:
        super().__init__(env, _any_done, events)


class FirstOf(Event):
    """Lean two-event race: triggers when either child does.

    The guarded waits on the request path (``reply | deadline``,
    ``data | deadline``) are among the hottest allocation sites in the
    simulator; this is :class:`AnyOf` stripped to that exact shape —
    no child tuple, no count, no per-child value dict (the value is
    always ``None``; callers inspect the children directly).  The
    trigger/failure push sequence matches AnyOf's, so swapping one for
    the other does not move any heap sequence numbers.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", a: Event, b: Event) -> None:
        super().__init__(env)
        on_child = self._on_child
        if a.callbacks is None:
            on_child(a)
        else:
            a.callbacks.append(on_child)
        if b.callbacks is None:
            on_child(b)
        else:
            b.callbacks.append(on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                # Sibling failed after the race was decided; the race
                # can no longer surface it.
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))
            return
        self.succeed(None)


def guard_timeout(
    deadline: Event,
    event: Event,
    exc_type: type,
    *parts: _t.Any,
) -> None:
    """Arm ``deadline`` to *fail* ``event`` when it fires first.

    The cheapest shape for a timeout-guarded wait: the process yields
    the primary ``event`` directly (no :class:`FirstOf` race object,
    and — on the success path — no extra heap entry for the race's own
    trigger).  If the deadline fires while the primary is still
    pending, the primary is cancelled (a no-op for plain events;
    store gets leave their queue) and failed with
    ``exc_type("".join(map(str, parts)))``, which the waiting process
    receives as a thrown exception at its ``yield``.  The exception
    message is assembled lazily — winners never pay for the
    formatting.  The caller must still ``deadline.cancel()`` after a
    successful wait so an unfired side-heap deadline is purged.
    """

    def _fire(_deadline: Event) -> None:
        if event._value is PENDING:
            event.cancel()
            event.fail(exc_type("".join(map(str, parts))))

    _t.cast(list, deadline.callbacks).append(_fire)
