"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each value the generator
``yield``\\ s must be an :class:`~repro.sim.events.Event`; the process
suspends until that event fires and is then resumed with the event's
value (or the event's exception is thrown into it).

Processes are events themselves: they trigger when the generator
returns (value = the generator's return value) or raises.
"""

from __future__ import annotations

import typing as _t

from repro.sim.events import Event, NORMAL, URGENT

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupting cause is available as :attr:`cause`.
    """

    @property
    def cause(self) -> _t.Any:
        return self.args[0] if self.args else None


class _Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        _t.cast(list, self.callbacks).append(process._resume)
        env.schedule(self, priority=URGENT)


class _HotStart:
    """Pre-succeeded pseudo-event fed to ``_resume`` for hot starts.

    Carries just the two attributes ``_resume`` reads on the success
    path; one shared instance replaces the per-process ``_Initialize``
    event (and its heap entry) when a caller asks for a synchronous
    start.
    """

    __slots__ = ()
    _ok = True
    _value = None


_HOT_START = _HotStart()


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator yielding events.
    name:
        Optional label used in ``repr`` and error messages.
    hot:
        Start the generator synchronously inside the constructor
        instead of via an urgent start event.  High-volume spawners
        (the trace driver starts one process per request) use this to
        skip the per-process start event; the first resumption then
        runs at creation time rather than at the next scheduler step,
        so it is only equivalent when the creator would otherwise
        yield to the scheduler immediately.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: _t.Generator[Event, _t.Any, _t.Any],
        name: str | None = None,
        hot: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits for (``None`` when
        #: running or finished).
        self._target: Event | None = None
        if hot:
            prev = env._active_process
            self._resume(_t.cast(Event, _HOT_START))
            env._active_process = prev
        else:
            _Initialize(env, self)

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator has finished."""
        return not self.triggered

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process is rescheduled immediately (urgent priority); the
        event it was waiting for remains valid and may be re-yielded.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        _t.cast(list, interrupt_event.callbacks).append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

        # Detach from the event we were waiting on so its eventual
        # occurrence does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
            self._target = None

    # -- internal --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The caller takes responsibility for the failure.
                    event.defuse()
                    next_event = self._generator.throw(
                        _t.cast(BaseException, event._value)
                    )
            except StopIteration as stop:
                env._active_process = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                proto = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._target = None
                self.fail(proto)
                return

            if next_event.callbacks is not None:
                # Event still outstanding: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return

            # The event has already been processed: loop and feed its
            # outcome straight back into the generator.
            event = next_event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} at {id(self):#x}>"
