"""Synthetic bigFlows-like request trace.

We cannot ship the bigFlows.pcap capture, so we generate traces that
reproduce the published marginals the evaluation depends on:

* exactly ``n_services`` services (paper: 42), each receiving at least
  ``min_requests_per_service`` requests (paper: 20),
* exactly ``n_requests`` requests total (paper: 1708) over
  ``duration_s`` seconds (paper: 300),
* a heavy-tailed request count per service (a handful of hot services
  dominate, as in fig. 9),
* service *first occurrences* concentrated near the start of the
  capture — the pcap begins with many live conversations — yielding
  fig. 10's burst of deployments (up to 8 per second early on).

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np


@dataclasses.dataclass(frozen=True)
class RequestEvent:
    """One client request in the trace."""

    time_s: float
    service_index: int
    client_index: int


@dataclasses.dataclass(frozen=True)
class BigFlowsParams:
    """Trace-shape parameters (defaults = the paper's workload)."""

    n_services: int = 42
    n_requests: int = 1708
    duration_s: float = 300.0
    min_requests_per_service: int = 20
    n_clients: int = 20
    #: Zipf-ish skew of the per-service request counts.
    skew: float = 1.1
    #: Fraction of services whose conversations are live at capture
    #: start (first request within the first couple of seconds).
    early_fraction: float = 0.45
    #: Window (seconds) in which "early" services first appear.
    early_window_s: float = 3.0
    #: Mean of the exponential start-time distribution for the rest.
    late_start_mean_s: float = 45.0

    def __post_init__(self) -> None:
        if self.n_services < 1 or self.n_requests < self.n_services:
            raise ValueError("need at least one request per service")
        if self.min_requests_per_service * self.n_services > self.n_requests:
            raise ValueError(
                "min_requests_per_service * n_services exceeds n_requests"
            )
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.early_fraction <= 1:
            raise ValueError("early_fraction must be in [0, 1]")


def _request_counts(params: BigFlowsParams, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed per-service counts, each >= the minimum, summing
    exactly to ``n_requests``."""
    base = params.min_requests_per_service
    extra_total = params.n_requests - base * params.n_services
    # Zipf-like weights over a random permutation of ranks.
    ranks = rng.permutation(params.n_services) + 1
    weights = 1.0 / ranks.astype(float) ** params.skew
    weights /= weights.sum()
    extras = np.floor(weights * extra_total).astype(int)
    # Distribute the rounding remainder to the largest weights.
    shortfall = extra_total - int(extras.sum())
    order = np.argsort(weights)[::-1]
    for i in range(shortfall):
        extras[order[i % params.n_services]] += 1
    return base + extras


def _start_times(params: BigFlowsParams, rng: np.random.Generator) -> np.ndarray:
    """First-occurrence time per service (bursty at capture start)."""
    n_early = int(round(params.early_fraction * params.n_services))
    early = rng.uniform(0.0, params.early_window_s, size=n_early)
    late = rng.exponential(
        params.late_start_mean_s, size=params.n_services - n_early
    )
    late = np.clip(late, 0.0, params.duration_s * 0.9)
    return np.concatenate([early, late])


def generate_trace(
    params: BigFlowsParams | None = None, seed: int = 42
) -> list[RequestEvent]:
    """Generate the full request trace, sorted by time."""
    params = params or BigFlowsParams()
    rng = np.random.default_rng(seed)

    counts = _request_counts(params, rng)
    starts = _start_times(params, rng)

    events: list[RequestEvent] = []
    for service_index in range(params.n_services):
        count = int(counts[service_index])
        start = float(starts[service_index])
        span = max(params.duration_s - start, 1.0)
        # First request at the service's start; the rest spread as a
        # Poisson process over the remaining capture.
        gaps = rng.exponential(span / max(count - 1, 1), size=count - 1)
        times = start + np.concatenate([[0.0], np.cumsum(gaps)])
        times = np.clip(times, 0.0, params.duration_s - 1e-6)
        for t in times:
            client = int(rng.integers(0, params.n_clients))
            events.append(RequestEvent(float(t), service_index, client))

    events.sort(key=lambda e: (e.time_s, e.service_index))
    return events


def first_occurrences(events: _t.Sequence[RequestEvent]) -> dict[int, float]:
    """Time of each service's first request (the deployment times of
    fig. 10 when nothing is pre-deployed)."""
    firsts: dict[int, float] = {}
    for event in events:
        if event.service_index not in firsts:
            firsts[event.service_index] = event.time_s
    return firsts


def requests_per_bucket(
    events: _t.Sequence[RequestEvent], bucket_s: float, duration_s: float
) -> list[int]:
    """Histogram of request times (fig. 9's series)."""
    n = max(1, int(duration_s / bucket_s + 0.5))
    counts = [0] * n
    for event in events:
        idx = int(event.time_s / bucket_s)
        if 0 <= idx < n:
            counts[idx] += 1
    return counts
