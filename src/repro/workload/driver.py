"""Drives a generated trace against the testbed.

One process per request event: at the event's time, the assigned
client issues the service's request through the transparent-edge path
and the timecurl measurement records ``time_total``.

The driver paces itself with a single walking callback instead of
pre-spawning every request process at time zero: the old shape pushed
one start event plus one ``timeout(event.time_s)`` per request onto
the heap up front, which kept ~2 heap entries per *future* request
alive for the whole run — at 50x replay that is a standing six-figure
heap whose log-factor taxes every single event.  The pacer arms one
``call_at`` for the next batch of due requests and hot-starts each
request process inline, in trace order, at exactly the instant the old
per-request timeout would have fired (same ``base + time_s`` float),
so request launch times — and the recorded latency sequences — are
byte-identical.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.service_registry import EdgeService
from repro.metrics import MetricsRecorder, summarize
from repro.net.packet import HTTPRequest
from repro.sim import Environment
from repro.sim.process import Process
from repro.workload.bigflows import RequestEvent
from repro.workload.timecurl import TimecurlClient, TimecurlSample

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


@dataclasses.dataclass
class TraceRunSummary:
    """Outcome of a full trace run."""

    n_requests: int
    n_ok: int
    n_errors: int
    samples: list[TimecurlSample]
    #: (service_index, deployment start time) for every first request.
    first_request_times: dict[int, float]

    @property
    def time_totals(self) -> list[float]:
        return [s.time_total for s in self.samples if s.ok]


class TraceDriver:
    """Runs a trace of :class:`RequestEvent` against registered services."""

    def __init__(
        self,
        env: Environment,
        clients: _t.Sequence["Host"],
        services: _t.Sequence[EdgeService],
        requests: _t.Mapping[str, HTTPRequest] | None = None,
        recorder: MetricsRecorder | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.env = env
        self.services = list(services)
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        self.requests = dict(requests or {})
        self.timecurls = [
            TimecurlClient(host, self.recorder, timeout_s=timeout_s)
            for host in clients
        ]

    def run(self, events: _t.Sequence[RequestEvent]) -> TraceRunSummary:
        """Execute the whole trace; returns once every request finished."""
        first_seen: dict[int, float] = {}
        n_services = len(self.services)
        for event in events:
            if event.service_index >= n_services:
                raise ValueError(
                    f"event references service {event.service_index}, "
                    f"but only {len(self.services)} are registered"
                )
            first_seen.setdefault(event.service_index, event.time_s)

        env = self.env
        done = env.event()
        remaining = len(events)
        if not remaining:
            done.succeed(None)

        def finished(proc: Process) -> None:
            # Countdown replacing AllOf: no per-process result dict,
            # fail-fast on the first crashed request (fetch() already
            # absorbs the expected connection errors into samples, so
            # a failure here is a real bug surfacing through run()).
            nonlocal remaining
            if not proc._ok:
                proc.defuse()
                if not done.triggered:
                    done.fail(_t.cast(BaseException, proc._value))
                return
            remaining -= 1
            if not remaining and not done.triggered:
                done.succeed(None)

        services = self.services
        timecurls = self.timecurls
        n_timecurls = len(timecurls)
        requests = self.requests
        base = env.now
        iterator = iter(events)
        pending = next(iterator, None)

        def pace() -> None:
            # Start every request due now (trace order), then re-arm
            # for the next distinct launch time.  ``base + time_s`` is
            # the same float the old per-request timeout fired at.
            nonlocal pending
            now = env._now
            while pending is not None:
                target = base + pending.time_s
                if target > now:
                    env.call_at(target, pace)
                    return
                event = pending
                pending = next(iterator, None)
                service = services[event.service_index]
                client = timecurls[event.client_index % n_timecurls]
                proc = Process(
                    env,
                    client.fetch(service, requests.get(service.name)),
                    hot=True,
                )
                if proc.callbacks is not None:
                    proc.callbacks.append(finished)
                else:  # pragma: no cover - fetch always yields first
                    finished(proc)

        if pending is not None:
            pace()
        env.run(until=done)

        samples = [s for tc in self.timecurls for s in tc.samples]
        samples.sort(key=lambda s: s.started_at)
        n_ok = sum(1 for s in samples if s.ok)
        return TraceRunSummary(
            n_requests=len(samples),
            n_ok=n_ok,
            n_errors=len(samples) - n_ok,
            samples=samples,
            first_request_times=first_seen,
        )
