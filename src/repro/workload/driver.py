"""Drives a generated trace against the testbed.

One process per request event: at the event's time, the assigned
client issues the service's request through the transparent-edge path
and the timecurl measurement records ``time_total``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.service_registry import EdgeService
from repro.metrics import MetricsRecorder, summarize
from repro.net.packet import HTTPRequest
from repro.sim import AllOf, Environment
from repro.workload.bigflows import RequestEvent
from repro.workload.timecurl import TimecurlClient, TimecurlSample

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


@dataclasses.dataclass
class TraceRunSummary:
    """Outcome of a full trace run."""

    n_requests: int
    n_ok: int
    n_errors: int
    samples: list[TimecurlSample]
    #: (service_index, deployment start time) for every first request.
    first_request_times: dict[int, float]

    @property
    def time_totals(self) -> list[float]:
        return [s.time_total for s in self.samples if s.ok]


class TraceDriver:
    """Runs a trace of :class:`RequestEvent` against registered services."""

    def __init__(
        self,
        env: Environment,
        clients: _t.Sequence["Host"],
        services: _t.Sequence[EdgeService],
        requests: _t.Mapping[str, HTTPRequest] | None = None,
        recorder: MetricsRecorder | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.env = env
        self.services = list(services)
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        self.requests = dict(requests or {})
        self.timecurls = [
            TimecurlClient(host, self.recorder, timeout_s=timeout_s)
            for host in clients
        ]

    def run(self, events: _t.Sequence[RequestEvent]) -> TraceRunSummary:
        """Execute the whole trace; returns once every request finished."""
        first_seen: dict[int, float] = {}
        procs = []
        for event in events:
            if event.service_index >= len(self.services):
                raise ValueError(
                    f"event references service {event.service_index}, "
                    f"but only {len(self.services)} are registered"
                )
            first_seen.setdefault(event.service_index, event.time_s)
            procs.append(
                self.env.process(
                    self._one(event), name=f"trace:{event.time_s:.2f}"
                )
            )
        done = AllOf(self.env, procs)
        self.env.run(until=done)

        samples = [s for tc in self.timecurls for s in tc.samples]
        samples.sort(key=lambda s: s.started_at)
        n_ok = sum(1 for s in samples if s.ok)
        return TraceRunSummary(
            n_requests=len(samples),
            n_ok=n_ok,
            n_errors=len(samples) - n_ok,
            samples=samples,
            first_request_times=first_seen,
        )

    def _one(self, event: RequestEvent):
        yield self.env.timeout(event.time_s)
        service = self.services[event.service_index]
        client = self.timecurls[event.client_index % len(self.timecurls)]
        request = self.requests.get(service.name)
        yield from client.fetch(service, request)
