"""Workloads: the bigFlows-like trace and the timecurl measurement client.

The paper extracts its request workload from the five-minute
``bigFlows.pcap`` capture: all TCP conversations to public port-80
addresses with ≥ 20 requests → **42 services, 1708 requests** (fig. 9);
the first request to each service triggers its deployment (fig. 10,
up to 8 deployments/s at the start).  :mod:`repro.workload.bigflows`
generates synthetic traces reproducing those marginals; the measured
quantity is timecurl's ``time_total``.
"""

from repro.workload.bigflows import BigFlowsParams, RequestEvent, generate_trace
from repro.workload.timecurl import TimecurlClient, TimecurlSample
from repro.workload.driver import TraceDriver, TraceRunSummary

__all__ = [
    "BigFlowsParams",
    "RequestEvent",
    "TimecurlClient",
    "TimecurlSample",
    "TraceDriver",
    "TraceRunSummary",
    "generate_trace",
]
