"""The timecurl measurement client.

"We measured the times using our timecurl.sh script.  The time_total
provided by Curl includes everything from when Curl starts
establishing a TCP connection until it gets a response for the HTTP
request." (§VI)  :class:`TimecurlClient` wraps one simulated client
host and records exactly that quantity.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.service_registry import EdgeService
from repro.metrics import MetricsRecorder
from repro.net.host import ConnectionRefused, ConnectionTimeout, Host
from repro.net.packet import HTTPRequest


@dataclasses.dataclass(frozen=True)
class TimecurlSample:
    """One measured request."""

    service_name: str
    started_at: float
    time_total: float
    time_connect: float
    status: int
    ok: bool
    error: str | None = None


class TimecurlClient:
    """Measures ``time_total`` for requests from one client host."""

    def __init__(
        self,
        host: Host,
        recorder: MetricsRecorder | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.host = host
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        self.timeout_s = timeout_s
        self.samples: list[TimecurlSample] = []

    def fetch(
        self,
        service: EdgeService,
        request: HTTPRequest | None = None,
        label: str | None = None,
    ):
        """Issue one request (generator returning TimecurlSample)."""
        env = self.host.env
        request = request or HTTPRequest("GET", "/", body_bytes=0)
        label = label or (service.template_key or service.name)
        started = env.now
        try:
            result = yield from self.host.http_request(
                service.cloud_ip, service.port, request, timeout=self.timeout_s
            )
        except (ConnectionRefused, ConnectionTimeout) as exc:
            sample = TimecurlSample(
                service_name=service.name,
                started_at=started,
                time_total=env.now - started,
                time_connect=0.0,
                status=0,
                ok=False,
                error=type(exc).__name__,
            )
            self.samples.append(sample)
            self.recorder.record(f"timecurl_errors/{label}", 1.0)
            return sample
        sample = TimecurlSample(
            service_name=service.name,
            started_at=started,
            time_total=result.time_total,
            time_connect=result.time_connect,
            status=result.response.status,
            ok=result.response.ok,
        )
        self.samples.append(sample)
        self.recorder.record(f"time_total/{label}", result.time_total)
        self.recorder.mark(f"requests/{label}", started)
        return sample
