"""Ablations for the design choices DESIGN.md calls out.

* A1 — with-waiting vs. without-waiting vs. cloud-only first requests;
* A2 — the §VII hybrid Docker-then-Kubernetes strategy;
* A4 — layer-cache sharing across images (pull-time reduction);
* A5 — data-path cost: installed flow vs. FlowMemory reinstall vs.
  full dispatch.
"""

from __future__ import annotations

import typing as _t

from repro.containers import Containerd, ImageSpec, Registry
from repro.containers.image import MIB
from repro.containers.registry import PUBLIC_PROFILE
from repro.core import HybridDockerK8sScheduler, LowLatencyScheduler
from repro.core.schedulers import CloudOnlyScheduler
from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.net import Host
from repro.net.addressing import IPAllocator, MACAllocator
from repro.services.catalog import NGINX, ServiceTemplate
from repro.sim import Environment
from repro.testbed import C3Testbed, TestbedConfig


def run_ablation_waiting_modes(
    template: ServiceTemplate = NGINX, n_instances: int = 10
) -> ExperimentResult:
    """A1: what the first request costs under each deployment mode."""
    rows = []

    # (a) With waiting: hold the request while the near edge deploys.
    tb = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    samples = []
    for i in range(n_instances):
        svc = tb.register_template(template)
        tb.prepare_created(tb.docker_cluster, svc)
        samples.append(
            tb.run_request(tb.clients[i % 20], svc, template.request).time_total
        )
        tb.settle(0.2)
    rows.append(["with-waiting (near deploys)", round(summarize(samples).median, 4)])

    # (b) Without waiting: far edge already runs an instance.
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",)), scheduler=LowLatencyScheduler()
    )
    far = tb.add_far_edge("far-docker", distance=1)
    samples = []
    for i in range(n_instances):
        svc = tb.register_template(template)
        tb.prepare_created(tb.docker_cluster, svc)
        tb.prepare_created(far, svc)
        proc = tb.env.process(far.scale_up(svc.plan))
        tb.env.run(until=proc)
        proc = tb.env.process(far.wait_ready(svc.plan, timeout_s=30))
        tb.env.run(until=proc)
        samples.append(
            tb.run_request(tb.clients[i % 20], svc, template.request).time_total
        )
        tb.settle(0.2)
    rows.append(
        ["without-waiting (far instance)", round(summarize(samples).median, 4)]
    )

    # (c) Without waiting, cloud fallback: nothing runs anywhere.
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",)), scheduler=LowLatencyScheduler()
    )
    samples = []
    for i in range(n_instances):
        svc = tb.register_template(template)
        tb.prepare_created(tb.docker_cluster, svc)
        samples.append(
            tb.run_request(tb.clients[i % 20], svc, template.request).time_total
        )
        tb.settle(0.2)
    rows.append(["without-waiting (cloud fallback)", round(summarize(samples).median, 4)])

    # (d) Cloud only, no edge at all (baseline).
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",)), scheduler=CloudOnlyScheduler()
    )
    samples = []
    for i in range(n_instances):
        svc = tb.register_template(template)
        samples.append(
            tb.run_request(tb.clients[i % 20], svc, template.request).time_total
        )
        tb.settle(0.2)
    rows.append(["cloud-only baseline", round(summarize(samples).median, 4)])

    return ExperimentResult(
        experiment_id="Ablation A1",
        title="First-request latency per on-demand deployment mode",
        headers=["mode", "median first request (s)"],
        rows=rows,
        paper_shape=(
            "with-waiting pays the deployment; redirecting to a running "
            "instance (or the cloud) answers in network time instead."
        ),
    )


def run_ablation_hybrid(
    template: ServiceTemplate = NGINX, n_instances: int = 10
) -> ExperimentResult:
    """A2: hybrid Docker-then-K8s vs. pure Kubernetes first requests."""
    rows = []

    def first_requests(scheduler, cluster_types):
        tb = C3Testbed(
            TestbedConfig(cluster_types=cluster_types), scheduler=scheduler
        )
        samples = []
        k8s_serving = 0
        for i in range(n_instances):
            svc = tb.register_template(template)
            for cluster in tb.clusters:
                tb.prepare_created(cluster, svc)
            samples.append(
                tb.run_request(tb.clients[i % 20], svc, template.request).time_total
            )
            tb.settle(0.2)
        # Let background K8s deployments finish, then count flows on K8s.
        tb.env.run(until=tb.env.now + 15.0)
        if tb.k8s_cluster is not None:
            for svc in tb.service_registry.all():
                if tb.k8s_cluster.is_running(svc.plan):
                    k8s_serving += 1
        return samples, k8s_serving

    hybrid_samples, hybrid_k8s = first_requests(
        HybridDockerK8sScheduler("docker", "k8s"), ("docker", "k8s")
    )
    rows.append(
        [
            "hybrid (Docker first, K8s steady-state)",
            round(summarize(hybrid_samples).median, 4),
            hybrid_k8s,
        ]
    )

    k8s_samples, k8s_k8s = first_requests(None, ("k8s",))
    rows.append(
        ["pure Kubernetes", round(summarize(k8s_samples).median, 4), k8s_k8s]
    )

    return ExperimentResult(
        experiment_id="Ablation A2",
        title="Hybrid Docker-then-K8s vs pure Kubernetes (§VII)",
        headers=["strategy", "median first request (s)", "K8s instances after"],
        rows=rows,
        paper_shape=(
            "Hybrid answers the first request at Docker speed (<1 s) while "
            "ending up with Kubernetes-managed instances, combining 'fast "
            "initial response (Docker) and automated cluster management "
            "(Kubernetes)'."
        ),
    )


def run_ablation_layer_cache(repetitions: int = 5) -> ExperimentResult:
    """A4: shared base layers make re-pulls cheaper (§IV-C note)."""

    def pull_pair(pull_base_first: bool) -> float:
        env = Environment()
        ips, macs = IPAllocator("10.9.0.0"), MACAllocator()
        node = Host(env, "node", macs.allocate(), ips.allocate())
        registry = Registry(env, "hub", PUBLIC_PROFILE)
        base = ImageSpec.synthesize("base:1", 80 * MIB, 4)
        derived = ImageSpec.synthesize(
            "derived:1", 120 * MIB, 6, shared_layers=base.layers
        )
        registry.publish(base)
        registry.publish(derived)
        runtime = Containerd(env, node)

        def go(env):
            if pull_base_first:
                yield from runtime.pull(base, registry)
            t0 = env.now
            yield from runtime.pull(derived, registry)
            return env.now - t0

        proc = env.process(go(env))
        return env.run(until=proc)

    cold = [pull_pair(False) for _ in range(repetitions)]
    warm = [pull_pair(True) for _ in range(repetitions)]
    rows = [
        ["derived image, cold cache", round(summarize(cold).median, 3)],
        ["derived image, base layers cached", round(summarize(warm).median, 3)],
        ["saving (s)", round(summarize(cold).median - summarize(warm).median, 3)],
    ]
    return ExperimentResult(
        experiment_id="Ablation A4",
        title="Layer-cache sharing across images",
        headers=["scenario", "median pull (s)"],
        rows=rows,
        paper_shape=(
            "'popular base layers of the image might also be included in "
            "other cached images and thus already be on disk' — shared "
            "layers are skipped on pull."
        ),
    )


def run_ablation_flow_occupancy(
    n_services: int = 8,
    n_clients: int = 10,
    duration_s: float = 160.0,
    request_period_s: float = 20.0,
) -> ExperimentResult:
    """A3: why FlowMemory lets switch idle timeouts stay low.

    The same periodic workload runs under a *low* (5 s) and a *high*
    (120 s) switch idle timeout.  With the low timeout the table stays
    small — expired flows are reinstalled from FlowMemory at packet-in
    cost; with the high timeout every (client, service) pair
    accumulates in the switch.
    """
    import dataclasses as _dc

    from repro.services import DEFAULT_CALIBRATION

    def run_once(switch_idle_s: float):
        calibration = _dc.replace(
            DEFAULT_CALIBRATION,
            switch_idle_timeout_s=switch_idle_s,
            memory_idle_timeout_s=600.0,
        )
        tb = C3Testbed(
            TestbedConfig(cluster_types=("docker",)), calibration=calibration
        )
        services = [tb.register_template(NGINX) for _ in range(n_services)]
        for svc in services:
            tb.prepare_created(tb.docker_cluster, svc)

        table_samples: list[int] = []
        latencies: list[float] = []

        def sampler(env):
            while True:
                yield env.timeout(2.0)
                table_samples.append(
                    sum(
                        1
                        for e in tb.switch.table
                        if str(e.cookie or "").startswith("redirect:")
                    )
                )

        def client_loop(env, client, svc, offset):
            yield env.timeout(offset)
            while env.now < start + duration_s:
                result = yield from tb.http_request(client, svc, NGINX.request)
                latencies.append(result.time_total)
                yield env.timeout(request_period_s)

        start = tb.env.now
        tb.env.process(sampler(tb.env))
        for i in range(n_clients):
            for j, svc in enumerate(services):
                tb.env.process(
                    client_loop(
                        tb.env,
                        tb.clients[i % 20],
                        svc,
                        offset=(i * 0.37 + j * 0.73) % request_period_s,
                    )
                )
        tb.env.run(until=start + duration_s + 5.0)
        return {
            "peak_table": max(table_samples),
            "mean_table": sum(table_samples) / len(table_samples),
            "median_latency": summarize(latencies).median,
            "memory_hits": tb.controller.stats["memory_hits"],
        }

    low = run_once(5.0)
    high = run_once(120.0)
    rows = [
        [
            "low idle (5 s) + FlowMemory",
            low["peak_table"],
            round(low["mean_table"], 1),
            round(low["median_latency"], 5),
            low["memory_hits"],
        ],
        [
            "high idle (120 s)",
            high["peak_table"],
            round(high["mean_table"], 1),
            round(high["median_latency"], 5),
            high["memory_hits"],
        ],
    ]
    return ExperimentResult(
        experiment_id="Ablation A3",
        title="Switch flow-table occupancy: low idle + FlowMemory vs high idle",
        headers=[
            "configuration",
            "peak redirect entries",
            "mean entries",
            "median latency (s)",
            "memory reinstalls",
        ],
        rows=rows,
        paper_shape=(
            "§V: memorizing flows 'allows us to keep the idle timeout "
            "values in the switches low' — the table stays a fraction of "
            "the high-timeout size while latency stays in the same "
            "millisecond band."
        ),
    )


def run_ablation_flow_table(
    template: ServiceTemplate = NGINX, n_requests: int = 20
) -> ExperimentResult:
    """A5: per-request cost of the three data-path states."""
    tb = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    svc = tb.register_template(template)
    tb.prepare_created(tb.docker_cluster, svc)
    client = tb.clients[0]

    # Cold: full dispatch incl. deployment (first request).
    cold = tb.run_request(client, svc, template.request).time_total

    # Warm flow: switch entry still installed.
    warm = [
        tb.run_request(client, svc, template.request).time_total
        for _ in range(n_requests)
    ]

    # FlowMemory path: expire the switch entry, keep the memory entry.
    idle = tb.controller.config.switch_idle_timeout_s
    memory_path = []
    for _ in range(5):
        tb.env.run(until=tb.env.now + idle + 1.0)
        memory_path.append(
            tb.run_request(client, svc, template.request).time_total
        )

    rows = [
        ["cold (dispatch + deployment)", round(cold, 4)],
        ["installed flow (switch only)", round(summarize(warm).median, 5)],
        ["FlowMemory reinstall (packet-in)", round(summarize(memory_path).median, 5)],
    ]
    return ExperimentResult(
        experiment_id="Ablation A5",
        title="Per-request cost of data-path states",
        headers=["path", "median time_total (s)"],
        rows=rows,
        paper_shape=(
            "Memorized flows let switch idle timeouts stay low: the "
            "reinstall path costs only a controller round trip more than "
            "an installed flow, far from a full dispatch."
        ),
        extras={"memory_hits": tb.controller.stats["memory_hits"]},
    )
