"""Extension experiment M1 — live migration under a handover storm.

The paper keeps services where they were first deployed; under
mobility that strands sessions on an ever-more-remote edge.  M1
evaluates the live stateful migration pipeline
(:mod:`repro.core.migration`) with a *stadium-letout* scenario: a
whole client population attached to one site pours across to the
neighbouring site within a couple of seconds while actively using a
stateful service, and the service follows them — checkpoint shipped
over the simulated backbone, destination warm-started, flows flipped
make-before-break.

Two questions, two sweeps:

* **storm sweep** — pre-copy vs stop-and-copy under the storm: session
  availability must stay at 1.0 (the freeze gate queues, never
  refuses), and pre-copy's dirty-rate-bounded rounds must shrink the
  frozen window well below the stop-and-copy transfer time.
* **planner batch** — several services migrating at once under the
  per-trunk bandwidth budget (arXiv:2111.08936): the ledger trace must
  never exceed the budget, excess requests queue (shortest job first)
  instead of oversubscribing.

Everything is a seeded discrete-event run: byte-identical across
repetitions and across experiment-engine worker placements.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import percentile
from repro.net.host import ConnectionRefused, ConnectionReset, ConnectionTimeout
from repro.services.catalog import ASM, NGINX, NGINX_PY, ServiceTemplate
from repro.testbed import FederatedTestbed, FederationConfig

_CLIENT_ERRORS = (ConnectionRefused, ConnectionReset, ConnectionTimeout)


def storm_cell(
    mode: str,
    n_clients: int = 6,
    template: ServiceTemplate = NGINX,
    period_s: float = 0.25,
    horizon_s: float = 14.0,
    storm_at_s: float = 2.0,
) -> dict[str, _t.Any]:
    """One handover storm: every client of site0 moves to site1 in a
    ~1 s burst and the service migrates after them with ``mode``."""
    tb = FederatedTestbed(
        FederationConfig(n_sites=2, clients_per_site=n_clients)
    )
    svc = tb.register_template(template)
    site0, site1 = tb.sites

    # Deploy at the origin and pre-pull at the destination, so the
    # storm itself measures transfer + flip, not registry bandwidth.
    tb.run_request(site0.clients[0], svc, template.request)
    tb.settle(30.0)
    tb.prepare_created(site1.cluster, svc)
    tb.settle_replication()

    env = tb.env
    base = env.now
    latencies: list[float] = []
    errors = 0

    def client_loop(client, offset_s: float):
        nonlocal errors
        yield env.timeout(offset_s)
        while env.now - base < horizon_s:
            t0 = env.now
            try:
                yield from tb.http_request(
                    client, svc, template.request, timeout=30.0
                )
                latencies.append(env.now - t0)
            except _CLIENT_ERRORS:
                errors += 1
            yield env.timeout(period_s)

    def storm():
        # The letout: one handover every 100 ms, service follows as
        # soon as the first client has crossed.
        yield env.timeout(storm_at_s)
        for i, client in enumerate(list(site0.clients)):
            tb.move_client(client, site1)
            if i == 0:
                site1.manager.request_migration(
                    svc.name, site0.name, mode=mode
                )
            yield env.timeout(0.1)

    for i, client in enumerate(site0.clients):
        env.process(
            client_loop(client, period_s * i / n_clients),
            name=f"storm:{client.name}",
        )
    env.process(storm(), name="storm:letout")
    env.run(until=base + horizon_s + 10.0)

    from repro.experiments.resilience import migration_stats

    outcome = site1.manager.outcomes[0]
    total = len(latencies) + errors
    return {
        "mode": mode,
        "migrations": migration_stats(tb.recorder),
        "requests": total,
        "availability": len(latencies) / total if total else 0.0,
        "latencies": latencies,
        "p99_s": percentile(latencies, 99.0) if latencies else None,
        "outcome": outcome,
        "oversubscriptions": tb.ledger.oversubscriptions(),
        "dest_running": site1.cluster.is_running(svc.plan),
        "source_running": site0.cluster.is_running(svc.plan),
    }


def planner_cell(
    templates: _t.Sequence[ServiceTemplate] = (ASM, NGINX, NGINX_PY),
) -> dict[str, _t.Any]:
    """Batch migration of several services at once: the per-trunk
    budget (0.4 × 10 Gbit/s against 2 Gbit/s per transfer) admits two
    and defers the third until a slot frees up."""
    tb = FederatedTestbed(
        FederationConfig(n_sites=2, clients_per_site=len(templates))
    )
    site0, site1 = tb.sites
    services = []
    for i, template in enumerate(templates):
        svc = tb.register_template(template)
        tb.run_request(site0.clients[i], svc, template.request)
        services.append((svc, template))
    tb.settle(60.0)
    for svc, _ in services:
        tb.prepare_created(site1.cluster, svc)
    tb.settle_replication()

    events = [
        site1.manager.request_migration(svc.name, site0.name)
        for svc, _ in services
    ]
    for event in events:
        tb.env.run(until=event)
    tb.settle(5.0)

    link = "trunk:site0"
    peak = max(
        (c for (_, l, c) in tb.ledger.trace if l == link), default=0
    )
    from repro.experiments.resilience import migration_stats

    return {
        "outcomes": list(site1.manager.outcomes),
        "migrations": migration_stats(tb.recorder),
        "deferred": site1.manager.planner.deferred,
        "peak_committed_bps": peak,
        "budget_bps": tb.ledger.capacity(link),
        "oversubscriptions": tb.ledger.oversubscriptions(),
        "finish_order": [o.service_name for o in site1.manager.outcomes],
    }


def run_extension_m1_migration(
    n_clients: int = 6,
    modes: _t.Sequence[str] = ("precopy", "stopcopy"),
    with_planner: bool = True,
) -> ExperimentResult:
    """The M1 table: one row per storm mode plus the planner batch."""
    headers = [
        "scenario",
        "availability",
        "p99_s",
        "downtime_s",
        "bytes_moved",
        "rounds",
        "deferred",
        "oversub",
    ]
    rows: list[list[_t.Any]] = []
    cells: dict[str, _t.Any] = {}

    for mode in modes:
        cell = storm_cell(mode, n_clients=n_clients)
        cells[mode] = cell
        outcome = cell["outcome"]
        rows.append(
            [
                f"storm {mode}",
                round(cell["availability"], 4),
                round(cell["p99_s"], 4) if cell["p99_s"] is not None else "-",
                round(outcome.downtime_s, 4),
                outcome.bytes_moved,
                outcome.rounds,
                "-",
                len(cell["oversubscriptions"]),
            ]
        )

    if with_planner:
        batch = planner_cell()
        cells["planner"] = batch
        rows.append(
            [
                "planner batch x3",
                "-",
                "-",
                round(sum(o.downtime_s for o in batch["outcomes"]), 4),
                sum(o.bytes_moved for o in batch["outcomes"]),
                sum(o.rounds for o in batch["outcomes"]),
                batch["deferred"],
                len(batch["oversubscriptions"]),
            ]
        )

    return ExperimentResult(
        experiment_id="extension_m1",
        title="Live migration under a handover storm (make-before-break)",
        headers=headers,
        rows=rows,
        paper_shape=(
            "availability stays 1.0 in both modes (frozen requests queue, "
            "never fail); pre-copy downtime is a small fraction of "
            "stop-and-copy's (only the dirty residue ships frozen); the "
            "planner defers the batch overflow instead of oversubscribing "
            "the trunk budget"
        ),
        extras={"cells": cells},
    )
