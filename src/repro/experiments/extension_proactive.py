"""Extension experiment — proactive deployment via prediction (§VII).

A periodic client (period longer than the FlowMemory idle timeout, so
the service is scaled down between visits) hits the edge repeatedly:

* **reactive** — every visit is a cold start: the request waits for
  the on-demand deployment;
* **proactive** — the EWMA predictor learns the period from the
  packet-ins and the deployer re-instantiates the service shortly
  before each predicted visit, so later requests find it running.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services import DEFAULT_CALIBRATION
from repro.services.catalog import NGINX, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig


def _periodic_run(
    template: ServiceTemplate,
    proactive: bool,
    period_s: float,
    n_visits: int,
) -> list[float]:
    calibration = dataclasses.replace(
        DEFAULT_CALIBRATION,
        switch_idle_timeout_s=5.0,
        memory_idle_timeout_s=30.0,
    )
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",), auto_scale_down=True),
        calibration=calibration,
    )
    if proactive:
        tb.controller.enable_proactive(check_interval_s=2.0, lead_time_s=10.0)
    service = tb.register_template(template)
    tb.prepare_created(tb.docker_cluster, service)

    times: list[float] = []
    for _ in range(n_visits):
        result = tb.run_request(tb.clients[0], service, template.request)
        times.append(result.time_total)
        tb.env.run(until=tb.env.now + period_s)
    return times


def run_extension_proactive(
    template: ServiceTemplate = NGINX,
    period_s: float = 60.0,
    n_visits: int = 10,
) -> ExperimentResult:
    """Reactive vs proactive first-request latency on a periodic client."""
    rows = []
    raw: dict[str, list[float]] = {}
    for label, proactive in (("reactive", False), ("proactive", True)):
        times = _periodic_run(template, proactive, period_s, n_visits)
        raw[label] = times
        cold = sum(1 for t in times if t > 0.1)
        rows.append(
            [
                label,
                n_visits,
                cold,
                n_visits - cold,
                round(summarize(times).median, 4),
                round(max(times), 4),
            ]
        )
    return ExperimentResult(
        experiment_id="Extension P1",
        title=(
            f"Proactive deployment: periodic {template.title} client "
            f"(period {period_s:.0f}s > idle timeout)"
        ),
        headers=["mode", "visits", "cold", "warm", "median (s)", "max (s)"],
        rows=rows,
        paper_shape=(
            "§I/§VII: prediction pre-deploys just in time; after the "
            "predictor has learned the period, visits find a running "
            "instance — while the on-demand path still covers the "
            "unpredicted (early) visits."
        ),
        extras={"samples": raw},
    )
