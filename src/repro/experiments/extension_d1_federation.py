"""Extension experiment D1 — the distributed control plane.

The paper evaluates one EGS with one controller.  D1 scales the
control plane out: *n* radio sites, each with its own
:class:`~repro.core.federation.SiteController`, coordinating through
replicated shared state with explicit propagation latency
(:mod:`repro.core.federation`).

Two sweeps:

* **site sweep** (fixed propagation delay): how first-packet latency,
  cross-site serving, and cross-site handover behave as the federation
  grows from 1 to 8 sites;
* **delay sweep** (fixed site count): what eventual consistency costs
  — within the propagation window every site that sees a cold request
  deploys its own copy (duplicate deployments), and redirects taken on
  a view the hub has already superseded are counted as stale.

Both sweeps are pure discrete-event simulations driven from seeded
state, so results are byte-identical across runs and across the
parallel experiment engine's worker placements.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.services.catalog import ASM, NGINX, ServiceTemplate
from repro.testbed import FederatedTestbed, FederationConfig


def _drain(tb: FederatedTestbed, seconds: float = 30.0) -> None:
    tb.env.run(until=tb.env.now + seconds)


def federation_cell(
    n_sites: int,
    propagation_delay_s: float,
    template: ServiceTemplate = NGINX,
    concurrent_template: ServiceTemplate = ASM,
) -> dict[str, _t.Any]:
    """Measure one federation configuration; returns raw metrics."""
    tb = FederatedTestbed(
        FederationConfig(
            n_sites=n_sites,
            clients_per_site=2,
            propagation_delay_s=propagation_delay_s,
        )
    )
    svc = tb.register_template(template)
    origin, peer = tb.sites[0], tb.sites[-1]

    # Cold first packet at the origin site: the low-latency policy
    # serves it from the cloud while the local edge deploys.
    cold = tb.run_request(origin.clients[0], svc, template.request)
    _drain(tb)  # background deployment completes
    tb.settle_replication()
    warm = tb.run_request(origin.clients[0], svc, template.request)

    remote_s = handover_s = None
    if n_sites > 1:
        # Peer site's first packet rides the replicated instance view:
        # served cross-site instead of from the 15 ms WAN.
        remote_s = tb.run_request(peer.clients[0], svc, template.request).time_total
        # Cross-site handover: a warm client moves to the peer site.
        mover = origin.clients[1]
        tb.run_request(mover, svc, template.request)
        tb.move_client(mover, peer)
        handover_s = tb.run_request(mover, svc, template.request).time_total
        _drain(tb)  # peer's background deployment settles

    # Stale-window probe: a second service goes cold-to-hot at EVERY
    # site at once.  No instance view has propagated yet, so each site
    # deploys its own copy — the duplication eventual consistency buys.
    svc2 = tb.register_template(concurrent_template)
    outcomes: list[_t.Any] = []

    def one(client):
        result = yield from tb.http_request(client, svc2, concurrent_template.request)
        outcomes.append(result)

    for site in tb.sites:
        tb.env.process(one(site.clients[0]))
    _drain(tb, 90.0)
    duplicates = sum(
        1 for site in tb.sites if site.cluster.is_running(svc2.plan)
    )

    cross_site = sum(
        tb.recorder.counter(f"cross_site_redirects/{site.name}")
        for site in tb.sites
    )
    stale = sum(
        tb.recorder.counter(f"stale_redirects/{site.name}") for site in tb.sites
    )
    return {
        "n_sites": n_sites,
        "propagation_delay_s": propagation_delay_s,
        "cold_s": cold.time_total,
        "warm_s": warm.time_total,
        "remote_first_s": remote_s,
        "handover_s": handover_s,
        "duplicate_deployments": duplicates,
        "cross_site_redirects": cross_site,
        "stale_redirects": stale,
        "concurrent_ok": sum(1 for r in outcomes if r.response.status == 200),
        "concurrent_total": len(tb.sites),
    }


def run_extension_d1_federation(
    site_counts: _t.Sequence[int] = (1, 2, 4, 8),
    delays: _t.Sequence[float] = (0.005, 0.025, 0.1),
    fixed_delay_s: float = 0.025,
    fixed_sites: int = 4,
    kernel: str | None = None,
    replay_sites: int = 2,
    replay_requests: int = 12,
) -> ExperimentResult:
    """Sweep federation size and state-propagation delay.

    ``kernel`` additionally runs the *full-testbed partitioned replay*
    (``repro.sim.parallel.testbed``) under the chosen executor —
    ``"serial"`` (single-process reference) or ``"parallel"`` (one
    forked worker per partition) — and appends one row carrying only
    kernel-independent values (request counts and the latency
    fingerprint, byte-identical across executors by construction), so
    a serial and a parallel run of the same experiment must produce
    *equal* rows while caching under distinct keys.
    """
    if kernel not in (None, "serial", "parallel"):
        raise ValueError(
            f"kernel must be 'serial' or 'parallel' (or None), got {kernel!r}"
        )
    rows: list[list[_t.Any]] = []

    def fmt(value: float | None) -> _t.Any:
        return "-" if value is None else round(value, 4)

    for n_sites in site_counts:
        cell = federation_cell(n_sites, fixed_delay_s)
        rows.append(
            [
                f"sites={n_sites}",
                fmt(cell["cold_s"]),
                fmt(cell["warm_s"]),
                fmt(cell["remote_first_s"]),
                fmt(cell["handover_s"]),
                cell["duplicate_deployments"],
                cell["cross_site_redirects"],
                cell["stale_redirects"],
                f"{cell['concurrent_ok']}/{cell['concurrent_total']}",
            ]
        )
    for delay in delays:
        cell = federation_cell(fixed_sites, delay)
        rows.append(
            [
                f"delay={delay * 1000:g}ms",
                fmt(cell["cold_s"]),
                fmt(cell["warm_s"]),
                fmt(cell["remote_first_s"]),
                fmt(cell["handover_s"]),
                cell["duplicate_deployments"],
                cell["cross_site_redirects"],
                cell["stale_redirects"],
                f"{cell['concurrent_ok']}/{cell['concurrent_total']}",
            ]
        )

    extras: dict[str, _t.Any] = {
        "site_counts": list(site_counts),
        "delays": list(delays),
    }
    if kernel is not None:
        from repro.sim.parallel.testbed import (
            build_replay,
            combined_fingerprint,
            run_replay,
            totals,
        )

        replay = build_replay(
            FederationConfig(
                n_sites=replay_sites,
                clients_per_site=2,
                propagation_delay_s=fixed_delay_s,
            ),
            n_requests=replay_requests,
            duration_s=3.0,
        )
        run = run_replay(replay, parallel=kernel == "parallel")
        counts = totals(run.results, replay_sites)
        fingerprint = combined_fingerprint(run.results, replay_sites)
        # Only kernel-independent values may enter the row: the serial
        # and parallel executors must produce equal tables.
        rows.append(
            [
                f"replay sites={replay_sites} md5={fingerprint[:12]}",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                f"{counts['completed']}/{counts['issued']}",
            ]
        )
        extras["replay"] = {
            "kernel": kernel,
            "sites": replay_sites,
            "requests": replay_requests,
            "fingerprint": fingerprint,
            **counts,
        }

    return ExperimentResult(
        experiment_id="Extension D1",
        title="Distributed control plane: per-site controllers over shared state",
        headers=[
            "configuration",
            "cold first-packet (s)",
            "warm local (s)",
            "remote first-packet (s)",
            "cross-site handover (s)",
            "duplicate deployments",
            "cross-site redirects",
            "stale redirects",
            "concurrent ok",
        ],
        rows=rows,
        paper_shape=(
            "Remote first packets ride a peer site's instance (~trunk "
            "RTT) instead of the WAN; handover stays in the warm band; "
            "every site that sees a cold request inside the propagation "
            "window deploys its own copy, so duplicate deployments "
            "track the site count at every tested delay — simultaneous "
            "cold starts land inside even a 5 ms window; all requests "
            "succeed at every size.  A kernel replay row, when present, "
            "is identical whichever executor produced it."
        ),
        extras=extras,
    )
