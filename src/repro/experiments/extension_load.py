"""Extension experiment — warm-request latency under concurrent load.

Fig. 16 measures isolated warm requests.  Real edge services see
bursts; a compute-bound service with a bounded worker pool (TF-Serving
style) saturates while an I/O-light file server does not.  This
experiment sweeps the number of *simultaneous* clients hitting one
running instance and reports the median ``time_total`` per level.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import NGINX, RESNET, ServiceTemplate
from repro.sim import AllOf
from repro.testbed import C3Testbed, TestbedConfig


def _burst_latencies(
    template: ServiceTemplate, concurrency: int, rounds: int
) -> list[float]:
    tb = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    service = tb.register_template(template)
    tb.prepare_created(tb.docker_cluster, service)
    tb.run_request(tb.clients[0], service, template.request)  # deploy
    tb.settle(0.5)

    latencies: list[float] = []

    def one(env, client):
        result = yield from tb.http_request(client, service, template.request)
        latencies.append(result.time_total)

    for _ in range(rounds):
        procs = [
            tb.env.process(one(tb.env, tb.clients[i % 20]))
            for i in range(concurrency)
        ]
        tb.env.run(until=AllOf(tb.env, procs))
        tb.settle(0.5)
    return latencies


def run_extension_load(
    services: _t.Sequence[ServiceTemplate] = (NGINX, RESNET),
    concurrency_levels: _t.Sequence[int] = (1, 4, 8, 16),
    rounds: int = 5,
) -> ExperimentResult:
    """Median warm latency vs number of simultaneous clients."""
    rows = []
    raw: dict[tuple[str, int], list[float]] = {}
    for template in services:
        row: list[_t.Any] = [template.title]
        for level in concurrency_levels:
            samples = _burst_latencies(template, level, rounds)
            raw[(template.key, level)] = samples
            row.append(round(summarize(samples).median, 4))
        rows.append(row)
    return ExperimentResult(
        experiment_id="Extension L1",
        title="Warm-request latency under concurrent load (Docker edge)",
        headers=["Service"]
        + [f"x{level} median (s)" for level in concurrency_levels],
        rows=rows,
        paper_shape=(
            "The file server's latency stays flat with concurrency; the "
            "inference service queues behind its worker pool and its "
            "latency grows once the burst exceeds the pool size."
        ),
        extras={"samples": raw},
    )
