"""Extension experiment — the hierarchical edge continuum (§IV-A).

"Edge clusters are usually organized hierarchically.  Clusters in
close vicinity of the users tend to be smaller, with cluster size and
performance growing when further away (i.e., located closer to the
'cloud')."

We build that hierarchy — a small near edge (capacity-limited), a
larger mid edge on the WAN path, and the cloud — replay the
bigFlows-like trace with the no-waiting scheduler, and report where
requests land and what they cost.  The near edge fills up with the hot
services; the tail overflows to the mid tier; nothing is lost to the
cloud permanently because BEST deployments keep draining inward.
"""

from __future__ import annotations

import typing as _t

from repro.core import LowLatencyScheduler
from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import NGINX, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig
from repro.workload import BigFlowsParams, TraceDriver, generate_trace


def run_extension_hierarchy(
    template: ServiceTemplate = NGINX,
    near_capacity: int = 8,
    params: BigFlowsParams | None = None,
    seed: int = 42,
) -> ExperimentResult:
    """Replay the trace over a two-tier edge hierarchy plus cloud."""
    params = params or BigFlowsParams()
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",)),
        scheduler=LowLatencyScheduler(),
    )
    near = tb.docker_cluster
    assert near is not None
    near.capacity = near_capacity
    mid = tb.add_far_edge("mid-docker", distance=1, latency_s=0.004)

    services = [tb.register_template(template) for _ in range(params.n_services)]
    for service in services:
        tb.prepare_created(near, service)
        tb.prepare_created(mid, service)
    tb.settle(1.0)

    events = generate_trace(params, seed=seed)
    driver = TraceDriver(
        tb.env,
        tb.clients,
        services,
        requests={s.name: template.request for s in services},
        recorder=tb.recorder,
    )
    summary = driver.run(events)
    tb.env.run(until=tb.env.now + 20.0)  # drain background deployments

    near_running = sum(1 for s in services if near.is_running(s.plan))
    mid_running = sum(1 for s in services if mid.is_running(s.plan))
    flows = tb.controller.flow_memory
    placement = {"docker": 0, "mid-docker": 0, "cloud": 0}
    for service in services:
        for flow in flows.flows_for_service(service):
            placement[flow.cluster_name] = placement.get(flow.cluster_name, 0) + 1

    stats = summarize(summary.time_totals)
    rows = [
        ["requests ok / total", f"{summary.n_ok} / {summary.n_requests}"],
        ["near-edge capacity", near_capacity],
        ["services running near (small edge)", near_running],
        ["services running mid (larger edge)", mid_running],
        ["memorized flows -> near", placement["docker"]],
        ["memorized flows -> mid", placement["mid-docker"]],
        ["memorized flows -> cloud", placement["cloud"]],
        ["median time_total (s)", round(stats.median, 4)],
        ["p95 time_total (s)", round(stats.p95, 4)],
    ]
    return ExperimentResult(
        experiment_id="Extension H1",
        title="Hierarchical edge continuum under the bigFlows-like trace",
        headers=["metric", "value"],
        rows=rows,
        paper_shape=(
            "The small near edge saturates at its capacity; the overflow "
            "runs at the larger mid tier; every request still succeeds "
            "and the median stays in the warm-request band."
        ),
        extras={
            "near_running": near_running,
            "mid_running": mid_running,
            "placement": placement,
            "summary": summary,
        },
    )
