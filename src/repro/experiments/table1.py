"""Table I — the edge services used in the evaluation."""

from __future__ import annotations

from repro.containers.image import KIB, MIB
from repro.experiments.base import ExperimentResult
from repro.services.catalog import PAPER_SERVICES


def _format_size(total_bytes: int) -> str:
    if total_bytes < MIB:
        return f"{total_bytes / KIB:.2f} KiB"
    return f"{total_bytes / MIB:.0f} MiB"


def run_table1() -> ExperimentResult:
    """Regenerate Table I from the service catalog."""
    rows = []
    for template in PAPER_SERVICES:
        rows.append(
            [
                template.title,
                " + ".join(i.reference for i in template.images),
                f"{_format_size(template.total_bytes)} / {template.layer_count}",
                template.container_count,
                template.http_method,
            ]
        )
    return ExperimentResult(
        experiment_id="Table I",
        title="Edge services used in this work",
        headers=["Service", "Image(s)", "Size / Layers", "Containers", "HTTP"],
        rows=rows,
        paper_shape=(
            "Asm 6.18 KiB/1 layer; Nginx 135 MiB/6; ResNet 308 MiB/9; "
            "Nginx+Py 181 MiB/7 with 2 containers; ResNet uses POST."
        ),
    )
