"""Figure 16 — request times once the instance is already running."""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import PAPER_SERVICES, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig


def _warm_times(
    template: ServiceTemplate, cluster_type: str, n_requests: int
) -> list[float]:
    tb = C3Testbed(TestbedConfig(cluster_types=(cluster_type,)))
    cluster = tb.docker_cluster if cluster_type == "docker" else tb.k8s_cluster
    assert cluster is not None
    service = tb.register_template(template)
    tb.prepare_created(cluster, service)
    # Warm-up request performs the deployment; excluded from samples.
    tb.run_request(tb.clients[0], service, template.request)
    tb.settle(0.5)
    samples = []
    for i in range(n_requests):
        client = tb.clients[i % len(tb.clients)]
        result = tb.run_request(client, service, template.request)
        if not result.response.ok:
            raise RuntimeError(f"warm request failed: {result.response.status}")
        samples.append(result.time_total)
    return samples


def run_fig16_warm_requests(
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
    n_requests: int = 50,
) -> ExperimentResult:
    """Fig. 16: total time (median) when the instance is running."""
    rows = []
    raw: dict[tuple[str, str], list[float]] = {}
    for template in services:
        row: list[_t.Any] = [template.title]
        for cluster_type in cluster_types:
            samples = _warm_times(template, cluster_type, n_requests)
            raw[(template.key, cluster_type)] = samples
            row.append(round(summarize(samples).median, 5))
        rows.append(row)
    return ExperimentResult(
        experiment_id="Fig. 16",
        title="Total time (median) for requests to running edge services",
        headers=["Service"] + [f"{c} median (s)" for c in cluster_types],
        rows=rows,
        paper_shape=(
            "No notable difference between the clusters (shared containerd); "
            "short text responses in ~a millisecond; ResNet significantly "
            "longer (inference-bound)."
        ),
        extras={"samples": raw},
    )
