"""Experiment runners: one per table/figure of the evaluation (§VI).

Each ``run_*`` function builds the testbed(s), executes the paper's
measurement protocol, and returns an :class:`ExperimentResult` whose
rows mirror the corresponding figure.  The benchmark harness under
``benchmarks/`` and EXPERIMENTS.md are both generated from these.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.fig09_10_workload import (
    run_fig09_request_distribution,
    run_fig10_deployment_distribution,
)
from repro.experiments.fig11_15_deployment import (
    run_fig11_scale_up,
    run_fig12_create_scale_up,
    run_fig14_wait_after_scale_up,
    run_fig15_wait_after_create_scale_up,
    run_scale_up_experiment,
)
from repro.experiments.fig13_pull import run_fig13_pull
from repro.experiments.fig16_warm import run_fig16_warm_requests
from repro.experiments.trace_replay import run_trace_replay
from repro.experiments.ablations import (
    run_ablation_flow_occupancy,
    run_ablation_flow_table,
    run_ablation_hybrid,
    run_ablation_layer_cache,
    run_ablation_waiting_modes,
)
from repro.experiments.extension_serverless import run_extension_serverless
from repro.experiments.resilience import run_resilience
from repro.experiments.extension_proactive import run_extension_proactive
from repro.experiments.extension_load import run_extension_load
from repro.experiments.extension_breakdown import run_extension_breakdown
from repro.experiments.extension_hierarchy import run_extension_hierarchy
from repro.experiments.extension_d1_federation import run_extension_d1_federation
from repro.experiments.extension_m1_migration import run_extension_m1_migration

#: Name -> runner, for the CLI and docs generation.
EXPERIMENTS = {
    "table1": run_table1,
    "fig09": run_fig09_request_distribution,
    "fig10": run_fig10_deployment_distribution,
    "fig11": run_fig11_scale_up,
    "fig12": run_fig12_create_scale_up,
    "fig13": run_fig13_pull,
    "fig14": run_fig14_wait_after_scale_up,
    "fig15": run_fig15_wait_after_create_scale_up,
    "fig16": run_fig16_warm_requests,
    "trace": run_trace_replay,
    "ablation_waiting": run_ablation_waiting_modes,
    "ablation_hybrid": run_ablation_hybrid,
    "ablation_layer_cache": run_ablation_layer_cache,
    "ablation_flow_table": run_ablation_flow_table,
    "ablation_flow_occupancy": run_ablation_flow_occupancy,
    "extension_serverless": run_extension_serverless,
    "extension_proactive": run_extension_proactive,
    "extension_load": run_extension_load,
    "extension_breakdown": run_extension_breakdown,
    "extension_hierarchy": run_extension_hierarchy,
    "extension_federation": run_extension_d1_federation,
    "extension_migration": run_extension_m1_migration,
    "resilience": run_resilience,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_ablation_flow_occupancy",
    "run_ablation_flow_table",
    "run_ablation_hybrid",
    "run_ablation_layer_cache",
    "run_ablation_waiting_modes",
    "run_fig09_request_distribution",
    "run_fig10_deployment_distribution",
    "run_fig11_scale_up",
    "run_fig12_create_scale_up",
    "run_fig13_pull",
    "run_fig14_wait_after_scale_up",
    "run_fig15_wait_after_create_scale_up",
    "run_extension_breakdown",
    "run_extension_d1_federation",
    "run_extension_hierarchy",
    "run_extension_m1_migration",
    "run_extension_load",
    "run_extension_proactive",
    "run_extension_serverless",
    "run_fig16_warm_requests",
    "run_resilience",
    "run_scale_up_experiment",
    "run_table1",
    "run_trace_replay",
]
