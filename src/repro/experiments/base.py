"""Common result container for experiment runners."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.metrics import render_table


@dataclasses.dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[_t.Any]]
    #: Shape expectations from the paper, stated as prose.
    paper_shape: str = ""
    #: Free-form extra data (raw samples, series) for tests/figures.
    extras: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
        )
        if self.paper_shape:
            text += f"\n\npaper shape: {self.paper_shape}"
        return text

    def column(self, header: str) -> list[_t.Any]:
        """All values of one column, by header name."""
        index = self._header_index(header)
        return [row[index] for row in self.rows]

    def cell(self, row_key: _t.Any, header: str) -> _t.Any:
        """Value addressed by first-column key and header name."""
        index = self._header_index(header)
        for row in self.rows:
            if row[0] == row_key:
                return row[index]
        raise KeyError(
            f"{self.experiment_id}: no row with key {row_key!r}; "
            f"available: {', '.join(repr(row[0]) for row in self.rows)}"
        )

    def _header_index(self, header: str) -> int:
        try:
            return self.headers.index(header)
        except ValueError:
            raise KeyError(
                f"{self.experiment_id}: no column {header!r}; "
                f"available: {', '.join(repr(h) for h in self.headers)}"
            ) from None

    def to_csv(self) -> str:
        """The rows as CSV text (header line included)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()
