"""Full trace replay: the paper's actual measurement methodology.

"We use a single service type per test run.  Every time a service
instance is not running yet, it will be deployed by the SDN
controller" (§VI).  This experiment registers 42 services of one
catalog type, replays the bigFlows-like trace through the 20 clients,
and reports both the request outcome and the resulting deployment
distribution (fig. 10 as *measured*, not merely derived)."""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import NGINX, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig
from repro.workload import BigFlowsParams, TraceDriver, generate_trace


def run_trace_replay(
    template: ServiceTemplate = NGINX,
    cluster_type: str = "docker",
    params: BigFlowsParams | None = None,
    seed: int = 42,
    pre_create: bool = True,
) -> ExperimentResult:
    """Replay the trace against one service type on one cluster."""
    params = params or BigFlowsParams()
    tb = C3Testbed(TestbedConfig(cluster_types=(cluster_type,)))
    cluster = tb.docker_cluster if cluster_type == "docker" else tb.k8s_cluster
    assert cluster is not None

    services = [
        tb.register_template(template) for _ in range(params.n_services)
    ]
    for service in services:
        if pre_create:
            tb.prepare_created(cluster, service)
        else:
            tb.prepare_pulled(cluster, service)
    tb.settle(1.0)

    events = generate_trace(params, seed=seed)
    driver = TraceDriver(
        tb.env,
        tb.clients,
        services,
        requests={s.name: template.request for s in services},
        recorder=tb.recorder,
    )
    summary = driver.run(events)

    deployments = tb.recorder.series("deployments")
    base_time = deployments.times[0] if len(deployments) else 0.0
    per_second: dict[int, int] = {}
    for t in deployments.times:
        bucket = int(t - base_time)
        per_second[bucket] = per_second.get(bucket, 0) + 1

    stats = summarize(summary.time_totals)
    first_requests = [
        s.time_total
        for s in summary.samples
        if s.ok and s.time_total > stats.median * 5
    ]
    rows = [
        ["requests issued", summary.n_requests],
        ["requests ok", summary.n_ok],
        ["request errors", summary.n_errors],
        ["services deployed", len(deployments)],
        ["max deployments in one second", max(per_second.values() or [0])],
        ["median time_total (s)", round(stats.median, 4)],
        ["p95 time_total (s)", round(stats.p95, 4)],
        ["max time_total (s)", round(stats.maximum, 4)],
        ["cold (deployment-bound) requests", len(first_requests)],
    ]
    return ExperimentResult(
        experiment_id="Trace replay",
        title=(
            f"bigFlows-like trace: {params.n_requests} requests, "
            f"{params.n_services} x {template.title} on {cluster_type}"
        ),
        headers=["metric", "value"],
        rows=rows,
        paper_shape=(
            "Every service deploys exactly once (on its first request); "
            "deployments burst early; warm requests dominate the median."
        ),
        extras={
            "summary": summary,
            "deployments_per_second": per_second,
            "time_total_summary": stats,
        },
    )
