"""Figure 13 — image pull times, public versus private registry."""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import PAPER_SERVICES, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig


def _pull_once(template: ServiceTemplate, registry: str) -> float:
    """Cold pull of all of one service's images onto the EGS."""
    tb = C3Testbed(TestbedConfig(cluster_types=("docker",), registry=registry))
    service = tb.register_template(template)
    cluster = tb.docker_cluster
    assert cluster is not None
    start = tb.env.now
    proc = tb.env.process(cluster.pull(service.plan))
    tb.env.run(until=proc)
    return tb.env.now - start


def run_fig13_pull(
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    repetitions: int = 5,
) -> ExperimentResult:
    """Fig. 13: total time to pull each image set, per registry.

    Each repetition uses a fresh (cold) image store, as the paper pulls
    onto a cleaned EGS.  The public registry stands for Docker Hub /
    GCR; the private one sits on the testbed's LAN.
    """
    rows = []
    raw: dict[tuple[str, str], list[float]] = {}
    for template in services:
        row: list[_t.Any] = [template.title]
        for registry in ("public", "private"):
            samples = [_pull_once(template, registry) for _ in range(repetitions)]
            raw[(template.key, registry)] = samples
            row.append(round(summarize(samples).median, 3))
        row.append(round(row[1] - row[2], 3))
        rows.append(row)
    return ExperimentResult(
        experiment_id="Fig. 13",
        title="Total time to pull service images (public vs private registry)",
        headers=[
            "Service",
            "public median (s)",
            "private median (s)",
            "saving (s)",
        ],
        rows=rows,
        paper_shape=(
            "Pull ordering Asm << Nginx < Nginx+Py < ResNet; pulling from "
            "the private LAN registry improves times by about 1.5-2 s "
            "for the multi-layer images."
        ),
        extras={"samples": raw},
    )
