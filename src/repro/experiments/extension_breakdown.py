"""Extension experiment — where the first-request time goes.

Decomposes the with-waiting first request (fig. 5's sequence) into its
components, per service and cluster:

* **scale-up API** — the orchestrator call (blocking for Docker,
  fire-and-forget for Kubernetes),
* **wait-ready** — port polling until the service answers,
* **create** / **pull** when those phases ran,
* **control + network** — the residual: packet-in round trips,
  controller processing, flow installation, handshake, and the HTTP
  exchange itself.

This is the quantitative version of the paper's §VI narrative about
which phase dominates for which service.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import median
from repro.services.catalog import PAPER_SERVICES, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig


def _breakdown(
    template: ServiceTemplate, cluster_type: str, n_instances: int
) -> dict[str, float]:
    tb = C3Testbed(TestbedConfig(cluster_types=(cluster_type,)))
    cluster = tb.docker_cluster if cluster_type == "docker" else tb.k8s_cluster
    assert cluster is not None
    totals = []
    for i in range(n_instances):
        service = tb.register_template(template)
        tb.prepare_created(cluster, service)
        result = tb.run_request(tb.clients[i % 20], service, template.request)
        totals.append(result.time_total)
        tb.settle(0.25)

    rec = tb.recorder
    key = f"{cluster.name}/{template.key}"
    scale = median(rec.samples(f"scale_up/{key}"))
    wait = median(rec.samples(f"wait_ready/{key}"))
    total = median(totals)
    return {
        "total": total,
        "scale_up_api": scale,
        "wait_ready": wait,
        "control_network": max(0.0, total - scale - wait),
    }


def run_extension_breakdown(
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
    n_instances: int = 10,
) -> ExperimentResult:
    """Median component breakdown of the scale-up-only first request."""
    rows = []
    for template in services:
        for cluster_type in cluster_types:
            parts = _breakdown(template, cluster_type, n_instances)
            rows.append(
                [
                    f"{template.title} / {cluster_type}",
                    round(parts["total"], 4),
                    round(parts["scale_up_api"], 4),
                    round(parts["wait_ready"], 4),
                    round(parts["control_network"], 4),
                ]
            )
    return ExperimentResult(
        experiment_id="Extension B1",
        title="First-request latency breakdown (scale-up only)",
        headers=[
            "service / cluster",
            "total (s)",
            "scale-up API (s)",
            "wait-ready (s)",
            "control+network (s)",
        ],
        rows=rows,
        paper_shape=(
            "Docker's blocking start dominates its sub-second totals; "
            "Kubernetes shifts nearly everything into the port-polling "
            "wait; ResNet adds its model load to the wait on both; the "
            "control+network share stays in the low milliseconds."
        ),
    )
