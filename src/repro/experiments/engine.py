"""The parallel experiment engine.

The evaluation suite is a bag of independent simulations: each
experiment builds its own testbed, and the deployment figures
(11/12/14/15) further decompose into independent (service × cluster)
measurement cells.  This module turns that independence into wall-clock
speed and re-run cheapness:

* every experiment is *planned* into one or more :class:`Shard`\\ s —
  picklable (function path, JSON kwargs) work units;
* shards run across a ``multiprocessing`` worker pool (or in-process
  with ``workers=1``), each re-seeded deterministically from its shard
  id so serial and parallel runs produce identical results;
* shard results land in an on-disk cache keyed by (function, kwargs,
  code fingerprint), so re-running the suite after an unrelated edit —
  or a crash — only recomputes what actually changed;
* identical shards within one run (fig. 11 and fig. 14 share all their
  cells, as do 12 and 15) are deduplicated in flight and computed once.

``tools/run_experiments.py`` is the CLI front end; it regenerates
EXPERIMENTS.md from the merged results and reports wall-clock numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import random
import time
import typing as _t

from repro.experiments import EXPERIMENTS, ExperimentResult
from repro.experiments.fig11_15_deployment import (
    FIGURE_SPECS,
    PAPER_SERVICES,
    ScaleUpRun,
    figure_from_runs,
    template_by_key,
)

#: Default shard-cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".cache/experiments"

#: Reduced parameters per experiment for --fast runs (shared with the
#: serial CLI in :mod:`repro.cli`).
FAST_KWARGS: dict[str, dict[str, _t.Any]] = {
    "fig11": {"n_instances": 8},
    "fig12": {"n_instances": 8},
    "fig13": {"repetitions": 2},
    "fig14": {"n_instances": 8},
    "fig15": {"n_instances": 8},
    "fig16": {"n_requests": 10},
    "ablation_waiting": {"n_instances": 3},
    "ablation_hybrid": {"n_instances": 3},
    "ablation_layer_cache": {"repetitions": 2},
    "ablation_flow_table": {"n_requests": 5},
    "ablation_flow_occupancy": {
        "n_services": 4,
        "n_clients": 4,
        "duration_s": 60.0,
    },
    "extension_serverless": {"n_instances": 3, "n_warm": 5},
    "extension_proactive": {"n_visits": 6},
    "extension_load": {"concurrency_levels": [1, 8], "rounds": 2},
    "extension_breakdown": {"n_instances": 3},
    "extension_hierarchy": {},
    "extension_federation": {
        "site_counts": [1, 2],
        "delays": [0.025],
        "fixed_sites": 2,
    },
    "resilience": {"failure_rates": [0.0, 0.9], "n_rounds": 4},
    "extension_migration": {"n_clients": 3, "with_planner": False},
}


# --------------------------------------------------------------------------
# shard model


@dataclasses.dataclass(frozen=True)
class Shard:
    """One unit of parallel work.

    ``func`` is an importable ``"module:function"`` path and ``kwargs``
    must be JSON-serializable — together they form the shard's cache
    identity, so two shards with the same (func, kwargs) are the same
    computation no matter which experiment asked for them.
    """

    shard_id: str
    func: str
    kwargs: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def cache_key(self, fingerprint: str) -> str:
        payload = json.dumps(
            {"func": self.func, "kwargs": self.kwargs, "code": fingerprint},
            sort_keys=True,
        )
        return hashlib.sha1(payload.encode()).hexdigest()


@dataclasses.dataclass
class Plan:
    """An experiment decomposed into shards plus a merge step."""

    name: str
    shards: list[Shard]
    #: Maps {shard_id: shard result} to the experiment's final result.
    merge: _t.Callable[[dict[str, _t.Any]], ExperimentResult]


@dataclasses.dataclass
class SuiteStats:
    """Accounting for one :func:`run_suite` invocation."""

    workers: int
    wall_s: float = 0.0
    shards_total: int = 0
    shards_executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    #: Per-shard compute seconds (0.0 for cache hits); in parallel
    #: runs these overlap, so they sum to CPU time, not wall time.
    shard_s: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Per-experiment compute seconds (sum over the plan's shards).
    per_experiment_s: dict[str, float] = dataclasses.field(default_factory=dict)


# --------------------------------------------------------------------------
# shard entry points (must be importable by path for worker processes)


def run_experiment_shard(name: str, fast: bool = False) -> ExperimentResult:
    """Run a whole experiment as a single shard."""
    runner = EXPERIMENTS[name]
    kwargs = dict(FAST_KWARGS.get(name, {})) if fast else {}
    if fast and name == "trace":
        from repro.workload import BigFlowsParams

        kwargs = {
            "params": BigFlowsParams(n_services=10, n_requests=220, duration_s=60.0)
        }
    if "concurrency_levels" in kwargs:
        kwargs["concurrency_levels"] = tuple(kwargs["concurrency_levels"])
    return runner(**kwargs)


# --------------------------------------------------------------------------
# planning


def plan_experiment(
    name: str,
    fast: bool = False,
    overrides: dict[str, _t.Any] | None = None,
) -> Plan:
    """Decompose one experiment into its shard plan.

    ``overrides`` (JSON-able values only) tune the figure sweeps —
    ``n_instances``, ``service_keys``, ``cluster_types`` — or are
    merged into a single-shard experiment's kwargs; tests use this to
    shrink the work.
    """
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    overrides = dict(overrides or {})
    if name in FIGURE_SPECS:
        return _plan_figure(name, fast, overrides)
    kwargs: dict[str, _t.Any] = {"name": name, "fast": fast}
    if overrides:
        # Route a customized single-shard run through the generic
        # entry point with explicit kwargs instead of the fast table.
        return Plan(
            name=name,
            shards=[
                Shard(
                    shard_id=name,
                    func=f"repro.experiments:{_RUNNER_NAMES[name]}",
                    kwargs=overrides,
                )
            ],
            merge=lambda results: results[name],
        )
    return Plan(
        name=name,
        shards=[
            Shard(
                shard_id=name,
                func="repro.experiments.engine:run_experiment_shard",
                kwargs=kwargs,
            )
        ],
        merge=lambda results: results[name],
    )


_RUNNER_NAMES = {name: fn.__name__ for name, fn in EXPERIMENTS.items()}


def _plan_figure(name: str, fast: bool, overrides: dict[str, _t.Any]) -> Plan:
    spec = FIGURE_SPECS[name]
    n_instances = overrides.get(
        "n_instances", FAST_KWARGS[name]["n_instances"] if fast else 42
    )
    service_keys = list(
        overrides.get("service_keys", [t.key for t in PAPER_SERVICES])
    )
    cluster_types = list(overrides.get("cluster_types", ["docker", "k8s"]))
    pre_create = spec["pre_create"]

    shards = [
        Shard(
            # The id names the *cell*, not the figure: figs. 11/14
            # (and 12/15) plan identical shards, which the executor
            # computes once per run.
            shard_id=f"cell/{key}/{cluster}/pre={pre_create}/n={n_instances}",
            func="repro.experiments.fig11_15_deployment:scale_up_cell",
            kwargs={
                "template_key": key,
                "cluster_type": cluster,
                "pre_create": pre_create,
                "n_instances": n_instances,
            },
        )
        for key in service_keys
        for cluster in cluster_types
    ]

    def merge(results: dict[str, _t.Any]) -> ExperimentResult:
        runs: dict[tuple[str, str], ScaleUpRun] = {}
        for shard in shards:
            run = results[shard.shard_id]
            runs[(run.template_key, run.cluster_type)] = run
        return figure_from_runs(
            spec["experiment_id"],
            spec["title"],
            spec["value"],
            spec["paper_shape"],
            runs,
            [template_by_key(k) for k in service_keys],
            cluster_types,
        )

    return Plan(name=name, shards=shards, merge=merge)


# --------------------------------------------------------------------------
# execution


def code_fingerprint(roots: _t.Sequence[str] | None = None) -> str:
    """SHA-1 over every tracked source file, the cache's code identity.

    Any edit under ``src/repro`` invalidates all cached shard results —
    coarse, but sound: a stale cache can never masquerade as a fresh
    measurement.
    """
    if roots is None:
        roots = [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]
    digest = hashlib.sha1()
    for root in roots:
        paths = []
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def _resolve(func_path: str) -> _t.Callable[..., _t.Any]:
    module_name, _, func_name = func_path.partition(":")
    if not func_name:
        raise ValueError(f"shard func {func_path!r} is not 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def execute_shard(shard: Shard) -> _t.Any:
    """Run one shard in the current process (worker entry point).

    The RNG is re-seeded from the shard id before the run, so a shard
    computes the same result whether it runs in the parent (serial
    mode), in any worker, or in any order relative to its siblings.
    """
    seed = int.from_bytes(
        hashlib.sha1(shard.shard_id.encode()).digest()[:8], "big"
    )
    random.seed(seed)
    return _resolve(shard.func)(**shard.kwargs)


def _pool_entry(shard: Shard) -> tuple[str, float, _t.Any]:
    started = time.perf_counter()
    outcome = execute_shard(shard)
    return shard.shard_id, time.perf_counter() - started, outcome


def run_shards(
    shards: _t.Sequence[Shard],
    workers: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    fresh: bool = False,
    stats: SuiteStats | None = None,
) -> dict[str, _t.Any]:
    """Execute shards with caching + in-flight dedup; returns results by id.

    ``cache_dir=None`` disables the on-disk cache entirely; ``fresh``
    ignores existing entries but still writes new ones.  ``workers``
    defaults to the CPU count; ``1`` stays entirely in-process (no
    multiprocessing import-tax, identical results).
    """
    if workers is None:
        workers = multiprocessing.cpu_count()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if stats is None:
        stats = SuiteStats(workers=workers)
    stats.shards_total += len(shards)

    fingerprint = code_fingerprint() if cache_dir is not None else ""
    results: dict[str, _t.Any] = {}

    # In-flight dedup: shards whose (func, kwargs) coincide share one
    # computation.  Keyed by cache key when caching, else by identity
    # payload.
    by_work: dict[str, list[Shard]] = {}
    for shard in shards:
        if cache_dir is not None:
            work_key = shard.cache_key(fingerprint)
        else:
            work_key = json.dumps(
                {"func": shard.func, "kwargs": shard.kwargs}, sort_keys=True
            )
        by_work.setdefault(work_key, []).append(shard)
    stats.deduplicated += sum(len(group) - 1 for group in by_work.values())

    pending: list[tuple[str, Shard]] = []
    for work_key, group in by_work.items():
        if cache_dir is not None and not fresh:
            cached = _cache_read(cache_dir, work_key)
            if cached is not _MISS:
                stats.cache_hits += len(group)
                for shard in group:
                    results[shard.shard_id] = cached
                    stats.shard_s[shard.shard_id] = 0.0
                continue
        pending.append((work_key, group[0]))

    stats.shards_executed += len(pending)
    if pending:
        if workers == 1 or len(pending) == 1:
            computed = [_pool_entry(shard) for _key, shard in pending]
        else:
            # fork start method: workers inherit the imported modules
            # instead of re-importing the world per shard.
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=min(workers, len(pending))) as pool:
                computed = pool.map(
                    _pool_entry, [shard for _key, shard in pending]
                )
        outcome_by_id = {sid: (secs, out) for sid, secs, out in computed}
        for work_key, shard in pending:
            seconds, outcome = outcome_by_id[shard.shard_id]
            if cache_dir is not None:
                _cache_write(cache_dir, work_key, outcome)
            for sibling in by_work[work_key]:
                results[sibling.shard_id] = outcome
                stats.shard_s[sibling.shard_id] = seconds
    return results


_MISS = object()


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.pkl")


def _cache_read(cache_dir: str, key: str) -> _t.Any:
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (FileNotFoundError, pickle.UnpicklingError, EOFError):
        return _MISS


def _cache_write(cache_dir: str, key: str, value: _t.Any) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)  # atomic: concurrent writers race benignly


# --------------------------------------------------------------------------
# suite driver


def run_suite(
    names: _t.Sequence[str] | None = None,
    fast: bool = False,
    workers: int | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    fresh: bool = False,
    overrides: dict[str, dict[str, _t.Any]] | None = None,
    progress: _t.Callable[[str], None] | None = None,
) -> tuple[dict[str, ExperimentResult], SuiteStats]:
    """Run (a subset of) the experiment suite, sharded and cached.

    Returns ``(results by experiment name, stats)``.  All experiments'
    shards are pooled into ONE executor pass, so cells from different
    figures fill the workers together instead of running figure by
    figure with stragglers.
    """
    if names is None:
        names = list(EXPERIMENTS)
    overrides = overrides or {}
    if workers is None:
        workers = multiprocessing.cpu_count()
    stats = SuiteStats(workers=workers)

    started = time.perf_counter()
    plans = [plan_experiment(name, fast, overrides.get(name)) for name in names]

    all_shards: list[Shard] = []
    seen: set[str] = set()
    for plan in plans:
        for shard in plan.shards:
            if shard.shard_id not in seen:
                seen.add(shard.shard_id)
                all_shards.append(shard)
            else:
                # figs. 11/14 (and 12/15) plan the same cells; count the
                # coalesced copies so the report shows the saving.
                stats.deduplicated += 1

    if progress is not None:
        progress(
            f"{len(plans)} experiments -> {len(all_shards)} shards "
            f"on {workers} worker(s)"
        )
    shard_results = run_shards(
        all_shards, workers=workers, cache_dir=cache_dir, fresh=fresh, stats=stats
    )

    results: dict[str, ExperimentResult] = {}
    for plan in plans:
        results[plan.name] = plan.merge(
            {s.shard_id: shard_results[s.shard_id] for s in plan.shards}
        )
        stats.per_experiment_s[plan.name] = sum(
            stats.shard_s.get(s.shard_id, 0.0) for s in plan.shards
        )
        if progress is not None:
            progress(f"merged {plan.name}")
    stats.wall_s = time.perf_counter() - started
    return results, stats
