"""Figures 11, 12, 14, 15 — deployment-phase timings.

The measurement protocol follows §VI: for each service type and each
cluster type, 42 service instances are brought into the target state
(images cached; containers/Deployments pre-created for the Scale-Up
tests), then each instance receives its first client request through
the transparent-edge path.  The reported ``total`` is the client's
timecurl ``time_total``; ``wait_ready`` is the controller's
port-polling wait (figs. 14/15), a component of the total.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import Summary, summarize
from repro.services.catalog import PAPER_SERVICES, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig

#: Cache: one (template, cluster, mode, n) run feeds both the total-time
#: figure (11/12) and its wait-time companion (14/15).
_CACHE: dict[tuple, "ScaleUpRun"] = {}

#: Templates by key, for the by-name cell entry point used by the
#: parallel experiment engine (template objects don't travel across
#: process boundaries; their keys do).
_TEMPLATES: dict[str, ServiceTemplate] = {t.key: t for t in PAPER_SERVICES}

#: Figure metadata shared by the serial runners below and the engine's
#: per-cell shard plans: each figure is a (pre_create, value) view over
#: the same per-(service, cluster) measurement cells.
FIGURE_SPECS: dict[str, dict[str, _t.Any]] = {
    "fig11": {
        "experiment_id": "Fig. 11",
        "title": "Total time (median) to scale up four services on two clusters",
        "pre_create": True,
        "value": "total",
        "paper_shape": (
            "Docker < 1 s for Asm/Nginx, Kubernetes ~ 3 s; no notable "
            "Asm-vs-Nginx difference; ResNet significantly slower; "
            "Nginx+Py slower than Nginx."
        ),
    },
    "fig12": {
        "experiment_id": "Fig. 12",
        "title": "Total time (median) to create + scale up four services",
        "pre_create": False,
        "value": "total",
        "paper_shape": (
            "Creating the containers adds around 100 ms to the first "
            "request versus fig. 11 (relatively negligible for ResNet)."
        ),
    },
    "fig14": {
        "experiment_id": "Fig. 14",
        "title": "Wait time (median) until services are ready after scale up",
        "pre_create": True,
        "value": "wait",
        "paper_shape": (
            "Included in fig. 11's totals; for ResNet the wait alone "
            "accounts for more than a fourth of the total time."
        ),
    },
    "fig15": {
        "experiment_id": "Fig. 15",
        "title": "Wait time (median) until ready after create + scale up",
        "pre_create": False,
        "value": "wait",
        "paper_shape": "Included in fig. 12's totals; same ordering as fig. 14.",
    },
}


def template_by_key(key: str) -> ServiceTemplate:
    """The paper-catalog template with the given key."""
    try:
        return _TEMPLATES[key]
    except KeyError:
        raise KeyError(
            f"unknown service template {key!r}; available: "
            f"{', '.join(sorted(_TEMPLATES))}"
        ) from None


def scale_up_cell(
    template_key: str,
    cluster_type: str,
    pre_create: bool = True,
    n_instances: int = 42,
) -> "ScaleUpRun":
    """One measurement cell, addressed entirely by plain values.

    This is the engine's shard entry point for figs. 11/12/14/15: the
    (service × cluster) cells of a deployment figure are independent
    simulations, so the engine fans them out across workers and merges
    them back with :func:`figure_from_runs`.
    """
    return run_scale_up_experiment(
        template_by_key(template_key),
        cluster_type,
        n_instances=n_instances,
        pre_create=pre_create,
    )


@dataclasses.dataclass
class ScaleUpRun:
    """Raw outcome of one (service, cluster, mode) measurement."""

    template_key: str
    cluster_type: str
    pre_created: bool
    totals: list[float]
    wait_ready: list[float]
    scale_up_api: list[float]
    create: list[float]

    @property
    def total_summary(self) -> Summary:
        return summarize(self.totals)

    @property
    def wait_summary(self) -> Summary:
        return summarize(self.wait_ready)


def run_scale_up_experiment(
    template: ServiceTemplate,
    cluster_type: str,
    n_instances: int = 42,
    pre_create: bool = True,
    use_cache: bool = True,
) -> ScaleUpRun:
    """Deploy ``n_instances`` fresh instances and measure first requests.

    ``pre_create=True`` leaves only Scale Up to do (fig. 11/14);
    ``pre_create=False`` leaves Create + Scale Up (fig. 12/15).
    Images are always cached first — the Pull phase is fig. 13's
    separate experiment.
    """
    key = (template.key, cluster_type, pre_create, n_instances)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    tb = C3Testbed(TestbedConfig(cluster_types=(cluster_type,)))
    cluster = tb.docker_cluster if cluster_type == "docker" else tb.k8s_cluster
    assert cluster is not None

    services = [tb.register_template(template) for _ in range(n_instances)]
    for service in services:
        if pre_create:
            tb.prepare_created(cluster, service)
        else:
            tb.prepare_pulled(cluster, service)
    tb.settle(1.0)

    totals: list[float] = []
    for i, service in enumerate(services):
        client = tb.clients[i % len(tb.clients)]
        result = tb.run_request(client, service, template.request)
        if not result.response.ok:
            raise RuntimeError(
                f"first request to {service.name} failed: {result.response.status}"
            )
        totals.append(result.time_total)
        tb.settle(0.25)

    run = ScaleUpRun(
        template_key=template.key,
        cluster_type=cluster_type,
        pre_created=pre_create,
        totals=totals,
        wait_ready=tb.recorder.samples(f"wait_ready/{cluster.name}/{template.key}"),
        scale_up_api=tb.recorder.samples(f"scale_up/{cluster.name}/{template.key}"),
        create=tb.recorder.samples(f"create/{cluster.name}/{template.key}"),
    )
    if use_cache:
        _CACHE[key] = run
    return run


def figure_from_runs(
    experiment_id: str,
    title: str,
    value: str,
    paper_shape: str,
    runs: _t.Mapping[tuple[str, str], ScaleUpRun],
    services: _t.Sequence[ServiceTemplate],
    cluster_types: _t.Sequence[str],
) -> ExperimentResult:
    """Assemble a deployment figure from its measurement cells.

    ``runs`` maps (template key, cluster type) to the cell's raw
    measurement.  The serial path below and the parallel engine both
    funnel through this merge, which is what makes their results
    comparable row for row.
    """
    rows = []
    for template in services:
        row: list[_t.Any] = [template.title]
        for cluster_type in cluster_types:
            run = runs[(template.key, cluster_type)]
            summary = run.total_summary if value == "total" else run.wait_summary
            row.append(round(summary.median, 4))
        rows.append(row)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["Service"] + [f"{c} median (s)" for c in cluster_types],
        rows=rows,
        paper_shape=paper_shape,
        extras={"runs": dict(runs)},
    )


def _deployment_figure(
    experiment_id: str,
    title: str,
    pre_create: bool,
    value: str,
    paper_shape: str,
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
    n_instances: int = 42,
) -> ExperimentResult:
    runs: dict[tuple[str, str], ScaleUpRun] = {}
    for template in services:
        for cluster_type in cluster_types:
            runs[(template.key, cluster_type)] = run_scale_up_experiment(
                template, cluster_type, n_instances=n_instances, pre_create=pre_create
            )
    return figure_from_runs(
        experiment_id, title, value, paper_shape, runs, services, cluster_types
    )


def _figure_from_spec(
    name: str,
    services: _t.Sequence[ServiceTemplate],
    cluster_types: _t.Sequence[str],
    n_instances: int,
) -> ExperimentResult:
    spec = FIGURE_SPECS[name]
    return _deployment_figure(
        spec["experiment_id"],
        spec["title"],
        pre_create=spec["pre_create"],
        value=spec["value"],
        paper_shape=spec["paper_shape"],
        services=services,
        cluster_types=cluster_types,
        n_instances=n_instances,
    )


def run_fig11_scale_up(
    n_instances: int = 42,
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
) -> ExperimentResult:
    """Fig. 11: total time (median) to *scale up* on both clusters."""
    return _figure_from_spec("fig11", services, cluster_types, n_instances)


def run_fig12_create_scale_up(
    n_instances: int = 42,
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
) -> ExperimentResult:
    """Fig. 12: total time (median) to *create + scale up*."""
    return _figure_from_spec("fig12", services, cluster_types, n_instances)


def run_fig14_wait_after_scale_up(
    n_instances: int = 42,
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
) -> ExperimentResult:
    """Fig. 14: wait time (median) until ready after *scale up*."""
    return _figure_from_spec("fig14", services, cluster_types, n_instances)


def run_fig15_wait_after_create_scale_up(
    n_instances: int = 42,
    services: _t.Sequence[ServiceTemplate] = PAPER_SERVICES,
    cluster_types: _t.Sequence[str] = ("docker", "k8s"),
) -> ExperimentResult:
    """Fig. 15: wait time (median) until ready after *create + scale up*."""
    return _figure_from_spec("fig15", services, cluster_types, n_instances)
