"""Resilience experiment — availability and tail latency vs failure rate.

The paper's testbed never fails; this extension asks what transparent
access costs when the infrastructure does.  A seeded registry fault
rate is injected for the whole run (via the PR-4 fault layer) while a
small client population issues paced requests against a cold near edge,
with a warm far edge behind it.  Each cell is run twice — circuit
breaker enabled and disabled — and reports availability (fraction of
requests answered) plus p50/p99 request latency.

The mechanism under test: with the breaker, a failing near edge is
evicted from scheduling after a few failures and degraded flows ride
the FlowMemory fast path to the far edge (tail stays low).  Without
it, every punt of a degraded flow re-enters a doomed with-waiting
deployment and the tail absorbs the retry cost.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.experiments.base import ExperimentResult
from repro.faults import FaultPlan, Injector
from repro.metrics import median, percentile
from repro.net.host import ConnectionRefused, ConnectionReset, ConnectionTimeout
from repro.services import DEFAULT_CALIBRATION
from repro.services.catalog import NGINX
from repro.testbed import C3Testbed, TestbedConfig

_CLIENT_ERRORS = (ConnectionRefused, ConnectionReset, ConnectionTimeout)


def migration_stats(recorder) -> dict[str, _t.Any]:
    """Aggregate the live-migration pipeline's recorder surface
    (:mod:`repro.core.migration`) across all sites: lifecycle counters
    plus the per-session cost samples.  Zero everywhere on testbeds
    that never migrate — the shape is stable either way, so any
    resilience-style report can carry it."""
    counters = recorder.counters("migrations")

    def total(prefix: str) -> int:
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    downtimes = recorder.samples("migration/downtime_s")
    return {
        "started": total("migrations_started/"),
        "completed": total("migrations_completed/"),
        "aborted": total("migrations_aborted/"),
        "rolled_back": total("migrations_rolled_back/"),
        "auto_thawed": total("migrations_auto_thawed/"),
        "bytes_moved": sum(recorder.samples("migration/bytes_moved")),
        "downtime_per_session_s": downtimes,
        "downtime_p99_s": percentile(downtimes, 99) if downtimes else None,
    }


def _run_cell(
    failure_rate: float,
    with_breaker: bool,
    n_clients: int,
    n_rounds: int,
    period_s: float,
    seed: int,
) -> dict[str, _t.Any]:
    # Short switch idle timeout: consecutive requests punt to the
    # controller, so every round is a fresh resolution decision.
    calibration = dataclasses.replace(
        DEFAULT_CALIBRATION, switch_idle_timeout_s=1.0
    )
    tb = C3Testbed(
        TestbedConfig(cluster_types=("docker",), n_clients=n_clients),
        calibration=calibration,
    )
    far = tb.add_far_edge()
    service = tb.register_template(NGINX)

    # Warm the far edge to running: the degradation target.
    tb.prepare_created(far, service)
    proc = tb.env.process(far.scale_up(service.plan))
    tb.env.run(until=proc)
    proc = tb.env.process(
        far.wait_ready(service.plan, poll_interval_s=0.02, timeout_s=30.0)
    )
    tb.env.run(until=proc)

    dispatcher = tb.controller.dispatcher
    dispatcher.breaker_enabled = with_breaker
    dispatcher.max_phase_retries = 0
    dispatcher.breaker_cooldown_s = 10.0

    horizon_s = n_rounds * period_s
    if failure_rate:
        plan = FaultPlan(seed=seed).registry_outage(
            0.0, tb.active_registry.name, horizon_s + 60.0, rate=failure_rate
        )
        Injector(tb, plan).arm()

    env = tb.env
    latencies: list[float] = []
    errors = 0

    def client_loop(client, offset_s):
        nonlocal errors
        yield env.timeout(0.5 + offset_s)
        for _ in range(n_rounds):
            t0 = env.now
            try:
                yield from tb.http_request(
                    client, service, NGINX.request, timeout=60.0
                )
                latencies.append(env.now - t0)
            except _CLIENT_ERRORS:
                errors += 1
            yield env.timeout(period_s)

    for i, client in enumerate(tb.clients):
        env.process(client_loop(client, 0.05 * i), name=f"res:{client.name}")
    env.run(until=env.now + horizon_s + 90.0)

    total = n_clients * n_rounds
    breaker = dispatcher.breakers.get("docker")
    return {
        "availability": (total - errors) / total,
        "latencies": latencies,
        "deploy_failures": tb.recorder.counter("deploy_failures/docker"),
        "breaker_opens": breaker.stats["opens"] if breaker else 0,
        "migrations": migration_stats(tb.recorder),
    }


def run_resilience(
    failure_rates: _t.Sequence[float] = (0.0, 0.6, 0.95),
    n_clients: int = 4,
    n_rounds: int = 10,
    period_s: float = 2.0,
    seed: int = 7,
) -> ExperimentResult:
    """Availability and p99 latency vs injected registry failure rate,
    with and without the dispatcher's circuit breaker."""
    rows = []
    raw: dict[tuple[float, str], dict[str, _t.Any]] = {}
    for rate in failure_rates:
        for with_breaker in (True, False):
            cell = _run_cell(
                rate, with_breaker, n_clients, n_rounds, period_s, seed
            )
            raw[(rate, "breaker" if with_breaker else "no-breaker")] = cell
            samples = cell["latencies"]
            rows.append(
                [
                    f"{rate:.2f}",
                    "on" if with_breaker else "off",
                    f"{100 * cell['availability']:.1f}",
                    round(median(samples), 4) if samples else float("nan"),
                    round(percentile(samples, 99), 4) if samples else float("nan"),
                    cell["deploy_failures"],
                    cell["breaker_opens"],
                ]
            )
    return ExperimentResult(
        experiment_id="Extension R1",
        title="Availability and latency under injected registry failures",
        headers=[
            "Failure rate",
            "Breaker",
            "Availability (%)",
            "p50 (s)",
            "p99 (s)",
            "Failed deploys",
            "Breaker opens",
        ],
        rows=rows,
        paper_shape=(
            "Graceful degradation keeps availability at 100 % at every "
            "failure rate (requests fall back to the warm far edge).  "
            "The breaker's value is in the tail and the control plane: "
            "with it, failing deployments stop after the threshold and "
            "p99 collapses to the far edge's serving latency; without "
            "it, every punt re-enters a doomed deployment, so failed "
            "deploys pile up and p99 carries the retry cost."
        ),
        extras={"cells": raw},
    )
