"""Figures 9 and 10 — the request and deployment distributions."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.workload.bigflows import (
    BigFlowsParams,
    first_occurrences,
    generate_trace,
    requests_per_bucket,
)


def run_fig09_request_distribution(
    seed: int = 42, bucket_s: float = 10.0
) -> ExperimentResult:
    """Fig. 9: 1708 requests to 42 services over five minutes."""
    params = BigFlowsParams()
    events = generate_trace(params, seed=seed)
    buckets = requests_per_bucket(events, bucket_s, params.duration_s)
    rows = [
        [f"{int(i * bucket_s)}-{int((i + 1) * bucket_s)}s", count]
        for i, count in enumerate(buckets)
    ]
    counts = np.bincount(
        [e.service_index for e in events], minlength=params.n_services
    )
    from repro.metrics import render_histogram

    return ExperimentResult(
        experiment_id="Fig. 9",
        title="Distribution of 1708 requests to 42 edge services over 5 min",
        headers=["interval", "requests"],
        rows=rows,
        paper_shape=(
            "1708 requests total, 42 services, every service >= 20 requests, "
            "heavy-tailed per-service counts."
        ),
        extras={
            "events": events,
            "per_service_counts": counts.tolist(),
            "total": int(sum(buckets)),
            "chart": render_histogram(
                buckets, bucket_s, title="requests per 10 s:"
            ),
        },
    )


def run_fig10_deployment_distribution(
    seed: int = 42, bucket_s: float = 1.0
) -> ExperimentResult:
    """Fig. 10: 42 deployments over five minutes, bursty at the start.

    As in the paper, deployments are *derived* from the trace: a
    service is deployed by the SDN controller at its first request.
    """
    params = BigFlowsParams()
    events = generate_trace(params, seed=seed)
    firsts = sorted(first_occurrences(events).values())
    horizon = int(params.duration_s)
    buckets = [0] * horizon
    for t in firsts:
        buckets[min(int(t), horizon - 1)] += 1
    from repro.metrics import render_histogram
    # Report only non-empty buckets (the figure's visible bars).
    rows = [
        [f"{i}s", count] for i, count in enumerate(buckets) if count > 0
    ]
    return ExperimentResult(
        experiment_id="Fig. 10",
        title="Distribution of 42 edge service deployments over 5 min",
        headers=["second", "deployments"],
        rows=rows,
        paper_shape=(
            "42 deployments total, with up to eight deployments per second "
            "in the beginning."
        ),
        extras={
            "first_request_times": firsts,
            "max_per_second": max(buckets),
            "total": sum(buckets),
            "chart": render_histogram(
                buckets[:30],
                bucket_s,
                title="deployments per second (first 30 s):",
            ),
        },
    )
