"""Extension experiment — serverless (wasm) vs containers (§VIII).

The paper's future work asks "how well the latter [serverless
applications] would perform in a transparent access approach".  We
measure exactly the paper's quantities for the wasm runtime:

* first-request ``time_total`` with on-demand deployment (the fig. 11
  protocol: artifacts cached + function registered, only the
  instantiate/Scale-Up left), and
* warm-request ``time_total`` (the fig. 16 protocol),

side by side with the Docker and Kubernetes numbers.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.base import ExperimentResult
from repro.metrics import summarize
from repro.services.catalog import NGINX, RESNET, ServiceTemplate
from repro.testbed import C3Testbed, TestbedConfig


def _measure(
    template: ServiceTemplate,
    runtime: str,
    n_instances: int,
    n_warm: int,
) -> tuple[list[float], list[float]]:
    """Cold first requests (one per fresh service) + warm requests."""
    if runtime == "wasm":
        tb = C3Testbed(TestbedConfig(cluster_types=()))
        cluster = tb.add_serverless()
    else:
        tb = C3Testbed(TestbedConfig(cluster_types=(runtime,)))
        cluster = tb.docker_cluster if runtime == "docker" else tb.k8s_cluster
    assert cluster is not None

    cold: list[float] = []
    services = []
    for i in range(n_instances):
        service = tb.register_template(template)
        services.append(service)
        tb.prepare_created(cluster, service)
        result = tb.run_request(tb.clients[i % 20], service, template.request)
        if not result.response.ok:
            raise RuntimeError(f"cold request failed on {runtime}")
        cold.append(result.time_total)
        tb.settle(0.2)

    warm: list[float] = []
    for i in range(n_warm):
        result = tb.run_request(
            tb.clients[i % 20], services[0], template.request
        )
        warm.append(result.time_total)
    return cold, warm


def run_extension_serverless(
    services: _t.Sequence[ServiceTemplate] = (NGINX, RESNET),
    runtimes: _t.Sequence[str] = ("docker", "k8s", "wasm"),
    n_instances: int = 10,
    n_warm: int = 20,
) -> ExperimentResult:
    """First-request and warm-request latency per runtime."""
    rows = []
    raw: dict[tuple[str, str], dict[str, list[float]]] = {}
    for template in services:
        for runtime in runtimes:
            cold, warm = _measure(template, runtime, n_instances, n_warm)
            raw[(template.key, runtime)] = {"cold": cold, "warm": warm}
            rows.append(
                [
                    f"{template.title} / {runtime}",
                    round(summarize(cold).median, 4),
                    round(summarize(warm).median, 5),
                ]
            )
    return ExperimentResult(
        experiment_id="Extension S1",
        title="Serverless (wasm) vs containers: cold and warm requests",
        headers=["service / runtime", "first request (s)", "warm request (s)"],
        rows=rows,
        paper_shape=(
            "§VIII / [7]: wasm cold starts are far below container "
            "starts (ms vs 0.4 s Docker vs ~3 s K8s); execution runs "
            "somewhat slower than native, visible on the compute-bound "
            "ResNet service."
        ),
        extras={"samples": raw},
    )
