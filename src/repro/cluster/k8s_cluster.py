"""The Kubernetes edge cluster adapter.

Phase mapping (fig. 4): Create = create an (annotated) Deployment with
**zero replicas** plus a NodePort Service; Scale Up = patch the
replica count to 1; Scale Down = back to 0; Remove = delete both
objects.  The adapter builds the Kubernetes manifests from the
cluster-neutral plan, applying the paper's automatic annotation rules
(§V): unique name, ``matchLabels``, the ``edge.service`` label,
``replicas: 0``, and ``schedulerName`` when a Local Scheduler is
configured for this cluster.

Phase ordering and idempotence guards come from the shared
:class:`~repro.cluster.plan.PhasedCluster` driver; only the API-server
calls live here.
"""

from __future__ import annotations

from repro.cluster.base import EdgeCluster
from repro.cluster.plan import DeploymentPlan, PhasedCluster
from repro.containers.image import ImageSpec
from repro.k8s.client import KubernetesClient
from repro.k8s.cluster import KubernetesCluster
from repro.k8s.objects import (
    ContainerDef,
    Deployment,
    DeploymentSpec,
    ObjectMeta,
    PodSpec,
    PodTemplateSpec,
    Service,
    ServicePort,
    ServiceSpec,
)
from repro.sim import Environment


class K8sEdgeCluster(PhasedCluster, EdgeCluster):
    """Edge cluster backed by a (simulated) Kubernetes cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cluster: KubernetesCluster,
        node_name: str,
        distance: int = 0,
        capacity: int | None = None,
        node_port_base: int = 30000,
        local_scheduler: str | None = None,
        create_overhead_s: float = 0.070,
    ) -> None:
        kubelet = cluster.kubelets[node_name]
        super().__init__(env, name, kubelet.node_host, distance, capacity)
        self.cluster = cluster
        self.node_name = node_name
        self.client = KubernetesClient(cluster.api)
        self.local_scheduler = local_scheduler
        #: Client-side cost of submitting the manifests (validation,
        #: defaulting, server-side admission) — makes Create visible in
        #: fig. 12 as the paper's ~100 ms.
        self.create_overhead_s = create_overhead_s
        self._init_ports(node_port_base)
        self._runtime = kubelet.runtime

    # -- runtime steps (driver hooks) --------------------------------------

    def _pull_image(self, image: ImageSpec):
        # Pre-pull onto the node (kubelet would otherwise pull lazily
        # during pod startup).
        yield from self._runtime.pull(image, self.cluster.image_registry)

    def _create_instance(self, plan: DeploymentPlan, port: int):
        deployment = self.build_deployment(plan)
        service = self.build_service(plan, port)
        yield self.env.timeout(self.create_overhead_s)
        yield from self.client.create_deployment(deployment)
        yield from self.client.create_service(service)

    def _start_instance(self, plan: DeploymentPlan):
        yield from self.client.scale_deployment(plan.service_name, 1)

    def _stop_instance(self, plan: DeploymentPlan):
        yield from self.client.scale_deployment(plan.service_name, 0)

    def _remove_instance(self, plan: DeploymentPlan):
        yield from self.client.delete_deployment(plan.service_name)
        yield from self.client.delete_service(plan.service_name)

    def delete_images(self, plan: DeploymentPlan):
        freed = 0
        for image in plan.images:
            freed += self._runtime.images.delete_image(image.reference)
            yield self.env.timeout(0.0)
        return freed

    # -- state ------------------------------------------------------------------

    def image_cached(self, plan: DeploymentPlan) -> bool:
        return all(
            self._runtime.images.has_image(i.reference) for i in plan.images
        )

    def is_created(self, plan: DeploymentPlan) -> bool:
        return (
            self.cluster.api.list_nowait(
                "Deployment", selector={"edge.service": plan.service_name}
            )
            != []
        )

    def running_count(self) -> int:
        services = set()
        for pod in self.cluster.api.list_nowait("Pod", namespace=None):
            if pod.status.ready and "edge.service" in pod.metadata.labels:
                services.add(pod.metadata.labels["edge.service"])
        return len(services)

    # -- manifest construction (automatic annotation, §V) ---------------------------

    def build_deployment(self, plan: DeploymentPlan) -> Deployment:
        labels = {"edge.service": plan.service_name, **plan.labels}
        containers = [
            ContainerDef(
                name=planned.name,
                image=planned.image,
                container_port=planned.container_port,
                boot_time_s=planned.boot_time_s,
                app_factory=planned.app_factory,
                crash_after_s=planned.crash_after_s,
                env=dict(planned.env),
                volume_mounts=dict(planned.volume_mounts),
            )
            for planned in plan.containers
        ]
        scheduler = (
            plan.scheduler_name
            or self.local_scheduler
            or "default-scheduler"
        )
        return Deployment(
            metadata=ObjectMeta(name=plan.service_name, labels=labels),
            spec=DeploymentSpec(
                replicas=0,  # "scale to zero" by default (§V)
                selector=dict(labels),
                template=PodTemplateSpec(
                    labels=dict(labels),
                    spec=PodSpec(containers=containers, scheduler_name=scheduler),
                ),
            ),
        )

    def build_service(self, plan: DeploymentPlan, node_port: int) -> Service:
        labels = {"edge.service": plan.service_name, **plan.labels}
        return Service(
            metadata=ObjectMeta(name=plan.service_name, labels=labels),
            spec=ServiceSpec(
                selector=dict(labels),
                ports=[
                    ServicePort(
                        port=plan.target_port,
                        target_port=plan.target_port,
                        protocol="TCP",
                        node_port=node_port,
                    )
                ],
            ),
        )
