"""The Docker edge "cluster": a single engine on one host.

Phase mapping (fig. 4): Create = ``docker create`` per container,
Scale Up = ``docker start`` per container, Scale Down = ``docker
stop``, Remove = ``docker rm``.  Containers are labelled with
``edge.service`` so the controller can query them distinctly (§V).

Phase ordering and idempotence guards come from the shared
:class:`~repro.cluster.plan.PhasedCluster` driver; only the engine
calls live here.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.base import DeployError, EdgeCluster
from repro.cluster.plan import DeploymentPlan, PhasedCluster, PlannedContainer
from repro.containers.containerd import Container, ContainerSpec, ContainerState
from repro.containers.docker import DockerEngine
from repro.containers.image import ImageSpec
from repro.containers.registry import Registry
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


class DockerCluster(PhasedCluster, EdgeCluster):
    """Edge cluster backed by one Docker engine."""

    def __init__(
        self,
        env: Environment,
        name: str,
        host: "Host",
        engine: DockerEngine,
        image_registry: Registry,
        distance: int = 0,
        capacity: int | None = None,
        host_port_base: int = 20000,
    ) -> None:
        super().__init__(env, name, host, distance, capacity)
        self.engine = engine
        self.image_registry = image_registry
        self._init_ports(host_port_base)
        self._containers: dict[str, list[Container]] = {}

    def __getstate__(self) -> dict:
        """Pickle as a *cold* cluster: identity, port table, and the
        engine/registry chain (cold themselves) survive; env-bound
        container instances do not.  Re-attach with :meth:`rebind`."""
        state = self.__dict__.copy()
        state["env"] = None
        state["_containers"] = {}
        return state

    def rebind(self, env: Environment) -> None:
        """Attach an unpickled (cold) cluster to ``env``, cascading to
        its ingress host, engine (and through it the runtime and node
        host), and image registry — each only while still cold, since
        the EGS host is shared between the cluster and the runtime."""
        if self.env is not None:
            raise RuntimeError(
                f"{self.name}: already bound to an environment; only a "
                "cold (unpickled) cluster can be rebound"
            )
        self.env = env
        if self.ingress_host.env is None:
            self.ingress_host.rebind(env)
        if self.engine.env is None:
            self.engine.rebind(env)
        if self.image_registry.env is None:
            self.image_registry.rebind(env)

    # -- runtime steps (driver hooks) --------------------------------------

    def _pull_image(self, image: ImageSpec):
        yield from self.engine.pull(image, self.image_registry)

    def _check_create(self, plan: DeploymentPlan) -> None:
        if not self.image_cached(plan):
            raise DeployError(
                f"{self.name}: images of {plan.service_name!r} not pulled"
            )

    def _create_instance(self, plan: DeploymentPlan, port: int):
        created: list[Container] = []
        for planned in plan.containers:
            spec = self._container_spec(plan, planned, port)
            container = yield from self.engine.create_container(spec)
            created.append(container)
        self._containers[plan.service_name] = created

    def _start_instance(self, plan: DeploymentPlan):
        # Containers start sequentially through the engine API, as the
        # controller's Docker client does.
        for container in self._containers[plan.service_name]:
            if container.state in (ContainerState.CREATED, ContainerState.EXITED):
                yield from self.engine.start_container(container)

    def _stop_instance(self, plan: DeploymentPlan):
        for container in self._containers.get(plan.service_name, []):
            yield from self.engine.stop_container(container)

    def _remove_instance(self, plan: DeploymentPlan):
        containers = self._containers.pop(plan.service_name, [])
        for container in containers:
            yield from self.engine.remove_container(container)

    def delete_images(self, plan: DeploymentPlan):
        freed = 0
        for image in plan.images:
            freed += yield from self.engine.remove_image(image.reference)
        return freed

    # -- state ------------------------------------------------------------------

    def image_cached(self, plan: DeploymentPlan) -> bool:
        return all(self.engine.image_cached(i.reference) for i in plan.images)

    def is_created(self, plan: DeploymentPlan) -> bool:
        return plan.service_name in self._containers

    def running_count(self) -> int:
        count = 0
        for containers in self._containers.values():
            if any(c.state is ContainerState.RUNNING for c in containers):
                count += 1
        return count

    # -- helpers ------------------------------------------------------------------

    def _container_spec(
        self, plan: DeploymentPlan, planned: PlannedContainer, host_port: int
    ) -> ContainerSpec:
        serves = planned.container_port == plan.target_port
        return ContainerSpec(
            name=f"{plan.service_name}.{planned.name}",
            image=planned.image,
            boot_time_s=planned.boot_time_s,
            container_port=planned.container_port,
            host_port=host_port if serves else None,
            app_factory=planned.app_factory,
            crash_after_s=planned.crash_after_s,
            labels={"edge.service": plan.service_name, **plan.labels},
            env_vars=dict(planned.env),
            mounts=dict(planned.volume_mounts),
        )
