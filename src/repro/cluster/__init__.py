"""Uniform edge-cluster adapters over Docker and Kubernetes.

The paper's controller "is independent of the cluster type": the same
service definition deploys to a Docker engine or a Kubernetes cluster
(§V).  An :class:`EdgeCluster` exposes the deployment phases of fig. 4
— Pull, Create, Scale Up, Scale Down, Remove, Delete — plus the state
queries the Dispatcher needs, with one implementation per cluster
type.
"""

from repro.cluster.plan import DeploymentPlan, PlannedContainer
from repro.cluster.base import DeployError, EdgeCluster, ServiceEndpoint
from repro.cluster.docker_cluster import DockerCluster
from repro.cluster.k8s_cluster import K8sEdgeCluster

__all__ = [
    "DeployError",
    "DeploymentPlan",
    "DockerCluster",
    "EdgeCluster",
    "K8sEdgeCluster",
    "PlannedContainer",
    "ServiceEndpoint",
]
