"""The abstract edge-cluster interface (deployment phases of fig. 4)."""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

from repro.cluster.plan import DeploymentPlan
from repro.net.addressing import IPv4Address
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


class DeployError(RuntimeError):
    """A deployment phase failed (missing image, bad state, timeout)."""


@dataclasses.dataclass(frozen=True)
class ServiceEndpoint:
    """Where a running service instance answers."""

    ip: IPv4Address
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


class EdgeCluster(abc.ABC):
    """One edge cluster the SDN controller can deploy to.

    ``distance`` is the cluster's latency tier as seen from the
    clients: 0 for the nearest edge, growing toward the cloud.  The
    Global Scheduler uses it to rank FAST/BEST choices (§IV-A: clusters
    "in close vicinity of the users tend to be smaller, with cluster
    size and performance growing when further away").
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        ingress_host: "Host",
        distance: int = 0,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unlimited)")
        self.env = env
        self.name = name
        self.ingress_host = ingress_host
        self.distance = distance
        #: Maximum concurrently running service instances (None: ∞).
        #: Edge clusters near the users "tend to be smaller" (§IV-A).
        self.capacity = capacity

    # -- deployment phases (generators) -----------------------------------

    @abc.abstractmethod
    def pull(self, plan: DeploymentPlan):
        """Pull all images of the plan (skipping cached layers)."""

    @abc.abstractmethod
    def create(self, plan: DeploymentPlan):
        """Create the service (containers / Deployment+Service, 0 replicas)."""

    @abc.abstractmethod
    def scale_up(self, plan: DeploymentPlan):
        """Start one instance; returns when the orchestrator accepted
        the operation (NOT when the service is ready — poll with
        :meth:`wait_ready`)."""

    @abc.abstractmethod
    def scale_down(self, plan: DeploymentPlan):
        """Stop the running instance(s), keeping the created service."""

    @abc.abstractmethod
    def remove(self, plan: DeploymentPlan):
        """Remove the created service entirely."""

    @abc.abstractmethod
    def delete_images(self, plan: DeploymentPlan):
        """Delete the plan's images from the cluster's cache
        (generator returning bytes freed)."""

    # -- state queries (synchronous; informer-cache semantics) ---------------

    @abc.abstractmethod
    def image_cached(self, plan: DeploymentPlan) -> bool:
        """All images of the plan fully present in the local store?"""

    @abc.abstractmethod
    def is_created(self, plan: DeploymentPlan) -> bool:
        """Has Create already happened (containers/Deployment exist)?"""

    @abc.abstractmethod
    def endpoint(self, plan: DeploymentPlan) -> ServiceEndpoint | None:
        """Where the service will answer once running (None before
        Create assigned a port)."""

    def is_running(self, plan: DeploymentPlan) -> bool:
        """Is an instance up and its port answering?"""
        ep = self.endpoint(plan)
        return ep is not None and self.ingress_host.port_is_open(ep.port)

    @abc.abstractmethod
    def running_count(self) -> int:
        """Number of distinct services currently running here."""

    def has_capacity_for(self, plan: DeploymentPlan) -> bool:
        """Whether a (new) instance of ``plan`` would fit.

        An already-running service always "fits" (no new slot needed).
        """
        if self.is_running(plan):
            return True
        if self.capacity is None:
            return True
        return self.running_count() < self.capacity

    # -- readiness ---------------------------------------------------------------

    def wait_ready(
        self,
        plan: DeploymentPlan,
        poll_interval_s: float = 0.02,
        timeout_s: float | None = None,
    ):
        """Poll until the service port answers (generator returning bool).

        Models the paper's §VI behaviour: "before setting up the flows,
        the controller continuously tests if the respective port is
        open."
        """
        deadline = None if timeout_s is None else self.env.now + timeout_s
        while True:
            if self.is_running(plan):
                return True
            if deadline is not None and self.env.now >= deadline:
                return False
            yield self.env.timeout(poll_interval_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} d={self.distance}>"
