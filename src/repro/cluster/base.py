"""The abstract edge-cluster interface (deployment phases of fig. 4).

:class:`DeployError` and :class:`ServiceEndpoint` live in
:mod:`repro.cluster.plan` (alongside the shared phase driver) and are
re-exported here for compatibility.
"""

from __future__ import annotations

import abc
import typing as _t

from repro.cluster.plan import DeployError, DeploymentPlan, ServiceEndpoint
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host

__all__ = ["DeployError", "EdgeCluster", "ServiceEndpoint"]


class EdgeCluster(abc.ABC):
    """One edge cluster the SDN controller can deploy to.

    ``distance`` is the cluster's latency tier as seen from the
    clients: 0 for the nearest edge, growing toward the cloud.  The
    Global Scheduler uses it to rank FAST/BEST choices (§IV-A: clusters
    "in close vicinity of the users tend to be smaller, with cluster
    size and performance growing when further away").
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        ingress_host: "Host",
        distance: int = 0,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unlimited)")
        self.env = env
        self.name = name
        self.ingress_host = ingress_host
        self.distance = distance
        #: Maximum concurrently running service instances (None: ∞).
        #: Edge clusters near the users "tend to be smaller" (§IV-A).
        self.capacity = capacity

    # -- deployment phases (generators) -----------------------------------

    @abc.abstractmethod
    def pull(self, plan: DeploymentPlan):
        """Pull all images of the plan (skipping cached layers)."""

    @abc.abstractmethod
    def create(self, plan: DeploymentPlan):
        """Create the service (containers / Deployment+Service, 0 replicas)."""

    @abc.abstractmethod
    def scale_up(self, plan: DeploymentPlan):
        """Start one instance; returns when the orchestrator accepted
        the operation (NOT when the service is ready — poll with
        :meth:`wait_ready`)."""

    @abc.abstractmethod
    def scale_down(self, plan: DeploymentPlan):
        """Stop the running instance(s), keeping the created service."""

    @abc.abstractmethod
    def remove(self, plan: DeploymentPlan):
        """Remove the created service entirely."""

    @abc.abstractmethod
    def delete_images(self, plan: DeploymentPlan):
        """Delete the plan's images from the cluster's cache
        (generator returning bytes freed)."""

    # -- state queries (synchronous; informer-cache semantics) ---------------

    @abc.abstractmethod
    def image_cached(self, plan: DeploymentPlan) -> bool:
        """All images of the plan fully present in the local store?"""

    @abc.abstractmethod
    def is_created(self, plan: DeploymentPlan) -> bool:
        """Has Create already happened (containers/Deployment exist)?"""

    @abc.abstractmethod
    def endpoint(self, plan: DeploymentPlan) -> ServiceEndpoint | None:
        """Where the service will answer once running (None before
        Create assigned a port)."""

    def is_running(self, plan: DeploymentPlan) -> bool:
        """Is an instance up and its port answering?"""
        ep = self.endpoint(plan)
        return ep is not None and self.ingress_host.port_is_open(ep.port)

    @abc.abstractmethod
    def running_count(self) -> int:
        """Number of distinct services currently running here."""

    def has_capacity_for(self, plan: DeploymentPlan) -> bool:
        """Whether a (new) instance of ``plan`` would fit.

        An already-running service always "fits" (no new slot needed).
        """
        if self.is_running(plan):
            return True
        if self.capacity is None:
            return True
        return self.running_count() < self.capacity

    # -- readiness ---------------------------------------------------------------

    def wait_ready(
        self,
        plan: DeploymentPlan,
        poll_interval_s: float = 0.02,
        timeout_s: float | None = None,
    ):
        """Wait until the service port answers (generator returning bool).

        Models the paper's §VI behaviour: "before setting up the flows,
        the controller continuously tests if the respective port is
        open" — but event-driven rather than polled.  The wait
        subscribes to the ingress host's port-open notification
        (:meth:`~repro.net.host.Host.port_open_event`) and, once the
        port opens, wakes at the first *poll-grid* tick at or after the
        open — the exact simulated instant the old fixed-interval poll
        loop would have observed readiness.  Readiness times stay
        byte-identical to the polling implementation while the
        simulator processes O(1) events per wait instead of
        O(duration / poll interval).

        The plain poll loop remains only as a documented fallback: for
        the window before Create has assigned an endpoint (no port to
        subscribe to yet), and for subclasses that override
        :meth:`is_running` with a notion of readiness that is not
        observable as a port-open event on the ingress host.
        """
        deadline = None if timeout_s is None else self.env.now + timeout_s
        if type(self).is_running is not EdgeCluster.is_running:
            # Custom readiness: fall back to the literal §VI poll loop.
            while True:
                if self.is_running(plan):
                    return True
                if deadline is not None and self.env.now >= deadline:
                    return False
                yield self.env.timeout(poll_interval_s)
        # The poll grid: call time plus repeated float addition of the
        # interval, mirroring the old loop's timeout accumulation.
        tick = self.env.now
        while True:
            if self.is_running(plan):
                return True
            if deadline is not None and self.env.now >= deadline:
                return False
            endpoint = self.endpoint(plan)
            if endpoint is None:
                # Fallback: nothing to subscribe to before Create.
                tick += poll_interval_s
                yield self.env.timeout_at(tick)
                continue
            open_ev = self.ingress_host.port_open_event(endpoint.port)
            if open_ev.triggered:
                # Port already open yet is_running said no (the
                # endpoint moved between the checks): degrade to a
                # plain poll tick rather than spinning.
                tick += poll_interval_s
                yield self.env.timeout_at(tick)
                continue
            if deadline is None:
                yield open_ev
            else:
                deadline_tick = tick
                while deadline_tick < deadline:
                    deadline_tick += poll_interval_s
                yield open_ev | self.env.timeout_at(deadline_tick)
                if not open_ev.triggered:
                    self.ingress_host.abandon_port_waiter(
                        endpoint.port, open_ev
                    )
            # Resume sampling on the poll grid: advance to the first
            # tick at or after the wake and re-check there — exactly
            # where the poll loop would have seen the port open.
            while tick < self.env.now:
                tick += poll_interval_s
            if tick > self.env.now:
                yield self.env.timeout_at(tick)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} d={self.distance}>"
