"""The cluster-neutral deployment plan and the shared phase driver.

The annotator (:mod:`repro.core.annotator`) turns a developer's YAML
service definition into a :class:`DeploymentPlan`; every cluster
adapter can execute the same plan — "It does not matter whether the
edge cluster is running Docker or Kubernetes – we use the same service
definition for both" (§V).

:class:`PhasedCluster` is the shared Pull/Create/Scale-Up sequencing
(fig. 4) that the Docker and Kubernetes adapters both follow: the
idempotence guards, the per-service port allocation, and the phase
order live here once; adapters supply only the runtime-specific
``_pull_image`` / ``_create_instance`` / ``_start_instance`` /
``_stop_instance`` / ``_remove_instance`` steps.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.containers.image import ImageSpec
from repro.net.addressing import IPv4Address

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Application, Host
    from repro.sim import Environment


class DeployError(RuntimeError):
    """A deployment phase failed (missing image, bad state, timeout)."""


@dataclasses.dataclass(frozen=True)
class ServiceEndpoint:
    """Where a running service instance answers."""

    ip: IPv4Address
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclasses.dataclass(frozen=True)
class PlannedContainer:
    """One container of the planned service instance."""

    name: str
    image: ImageSpec
    container_port: int | None = None
    boot_time_s: float = 0.0
    app_factory: _t.Callable[["Environment"], "Application"] | None = None
    env: dict[str, str] = dataclasses.field(default_factory=dict)
    volume_mounts: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Failure injection (tests): crash this long after becoming ready.
    crash_after_s: float | None = None


@dataclasses.dataclass(frozen=True)
class DeploymentPlan:
    """Everything a cluster adapter needs to run one edge service."""

    #: The automatically assigned, worldwide-unique service name (§V).
    service_name: str
    #: Labels, always including ``edge.service`` for distinct querying.
    labels: dict[str, str]
    containers: tuple[PlannedContainer, ...]
    #: The container port clients are served from (Service targetPort).
    target_port: int
    #: Scheduler to use inside Kubernetes clusters (Local Scheduler).
    scheduler_name: str | None = None

    def __post_init__(self) -> None:
        if not self.containers:
            raise ValueError("a deployment plan needs at least one container")
        if "edge.service" not in self.labels:
            raise ValueError("plan labels must include 'edge.service'")
        if not any(
            c.container_port == self.target_port for c in self.containers
        ):
            raise ValueError(
                f"no container exposes target port {self.target_port}"
            )

    @property
    def images(self) -> tuple[ImageSpec, ...]:
        return tuple(c.image for c in self.containers)

    @property
    def serving_container(self) -> PlannedContainer:
        for container in self.containers:
            if container.container_port == self.target_port:
                return container
        raise AssertionError("validated in __post_init__")


class PhasedCluster:
    """Shared fig.-4 phase sequencing for cluster adapters.

    Mixin used alongside :class:`repro.cluster.base.EdgeCluster`.  It
    owns the per-service ingress-port table (``self._ports``) and the
    phase-order/idempotence logic; adapters implement the runtime
    steps.  Phase timings are exactly those of the adapter steps — the
    driver adds no simulated time of its own.
    """

    #: Per-service ingress port (host port / NodePort), assigned once
    #: at Create and stable until Remove.
    _ports: dict[str, int]
    _port_counter: _t.Iterator[int]

    # Provided by EdgeCluster:
    name: str
    ingress_host: "Host"

    def _init_ports(self, port_base: int) -> None:
        self._ports = {}
        self._port_counter = itertools.count(port_base)

    # -- runtime-specific steps (adapter hooks) ----------------------------

    def _pull_image(self, image: ImageSpec) -> _t.Any:
        """Pull one image into the cluster's cache (generator)."""
        raise NotImplementedError

    def _check_create(self, plan: DeploymentPlan) -> None:
        """Adapter precondition for Create (raise DeployError to veto)."""

    def _create_instance(self, plan: DeploymentPlan, port: int) -> _t.Any:
        """Create the (zero-replica) service instance (generator)."""
        raise NotImplementedError

    def _start_instance(self, plan: DeploymentPlan) -> _t.Any:
        """Scale the created instance up to one replica (generator)."""
        raise NotImplementedError

    def _stop_instance(self, plan: DeploymentPlan) -> _t.Any:
        """Scale the instance back down to zero replicas (generator)."""
        raise NotImplementedError

    def _remove_instance(self, plan: DeploymentPlan) -> _t.Any:
        """Delete the created service entirely (generator)."""
        raise NotImplementedError

    def is_created(self, plan: DeploymentPlan) -> bool:  # pragma: no cover
        raise NotImplementedError  # supplied by the adapter

    # -- the shared phases -------------------------------------------------

    def pull(self, plan: DeploymentPlan) -> _t.Any:
        for image in plan.images:
            yield from self._pull_image(image)

    def create(self, plan: DeploymentPlan) -> _t.Any:
        if self.is_created(plan):
            return
        self._check_create(plan)
        port = self._ports.setdefault(
            plan.service_name, next(self._port_counter)
        )
        yield from self._create_instance(plan, port)

    def scale_up(self, plan: DeploymentPlan) -> _t.Any:
        if not self.is_created(plan):
            raise DeployError(
                f"{self.name}: {plan.service_name!r} not created yet"
            )
        yield from self._start_instance(plan)

    def scale_down(self, plan: DeploymentPlan) -> _t.Any:
        yield from self._stop_instance(plan)

    def remove(self, plan: DeploymentPlan) -> _t.Any:
        yield from self._remove_instance(plan)
        self._ports.pop(plan.service_name, None)

    def endpoint(self, plan: DeploymentPlan) -> ServiceEndpoint | None:
        port = self._ports.get(plan.service_name)
        if port is None:
            return None
        return ServiceEndpoint(ip=self.ingress_host.ip, port=port)
