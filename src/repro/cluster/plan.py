"""The cluster-neutral deployment plan.

The annotator (:mod:`repro.core.annotator`) turns a developer's YAML
service definition into a :class:`DeploymentPlan`; every cluster
adapter can execute the same plan — "It does not matter whether the
edge cluster is running Docker or Kubernetes – we use the same service
definition for both" (§V).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.containers.image import ImageSpec

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Application
    from repro.sim import Environment


@dataclasses.dataclass(frozen=True)
class PlannedContainer:
    """One container of the planned service instance."""

    name: str
    image: ImageSpec
    container_port: int | None = None
    boot_time_s: float = 0.0
    app_factory: _t.Callable[["Environment"], "Application"] | None = None
    env: dict[str, str] = dataclasses.field(default_factory=dict)
    volume_mounts: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Failure injection (tests): crash this long after becoming ready.
    crash_after_s: float | None = None


@dataclasses.dataclass(frozen=True)
class DeploymentPlan:
    """Everything a cluster adapter needs to run one edge service."""

    #: The automatically assigned, worldwide-unique service name (§V).
    service_name: str
    #: Labels, always including ``edge.service`` for distinct querying.
    labels: dict[str, str]
    containers: tuple[PlannedContainer, ...]
    #: The container port clients are served from (Service targetPort).
    target_port: int
    #: Scheduler to use inside Kubernetes clusters (Local Scheduler).
    scheduler_name: str | None = None

    def __post_init__(self) -> None:
        if not self.containers:
            raise ValueError("a deployment plan needs at least one container")
        if "edge.service" not in self.labels:
            raise ValueError("plan labels must include 'edge.service'")
        if not any(
            c.container_port == self.target_port for c in self.containers
        ):
            raise ValueError(
                f"no container exposes target port {self.target_port}"
            )

    @property
    def images(self) -> tuple[ImageSpec, ...]:
        return tuple(c.image for c in self.containers)

    @property
    def serving_container(self) -> PlannedContainer:
        for container in self.containers:
            if container.container_port == self.target_port:
                return container
        raise AssertionError("validated in __post_init__")
