"""Reproduction of *Distributed On-Demand Deployment for Transparent
Access to 5G Edge Computing Services* (Hammer & Hellwagner, 2023).

The package rebuilds the paper's whole stack in a deterministic
discrete-event simulation and its SDN controller on top:

* :mod:`repro.sim` — the event kernel everything runs on;
* :mod:`repro.net` (+ ``repro.net.openflow``) — hosts, links, packets,
  and the OpenFlow data plane;
* :mod:`repro.sdnfw` — the Ryu-like controller framework;
* :mod:`repro.containers`, :mod:`repro.k8s`, :mod:`repro.serverless` —
  the container / Kubernetes / WebAssembly substrates;
* :mod:`repro.cluster` — uniform edge-cluster adapters (fig. 4 phases);
* :mod:`repro.core` — **the paper's contribution**: EdgeController,
  FlowMemory, Dispatcher, schedulers, annotator, prediction;
* :mod:`repro.services`, :mod:`repro.workload` — Table I catalog and
  the bigFlows-like workload;
* :mod:`repro.testbed` — the simulated C³ evaluation testbed;
* :mod:`repro.experiments` — one runner per table/figure.

Quickstart::

    from repro.services.catalog import NGINX
    from repro.testbed import C3Testbed, TestbedConfig

    tb = C3Testbed(TestbedConfig(cluster_types=("docker",)))
    service = tb.register_template(NGINX)
    result = tb.run_request(tb.clients[0], service, NGINX.request)
    print(result.time_total)  # first request: held while deploying

See README.md, DESIGN.md, and EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
