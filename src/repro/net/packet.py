"""Packet and payload types.

A :class:`Packet` carries Ethernet/IPv4/TCP headers plus an optional
application payload.  Data volume is modelled, not byte content: every
packet has a ``wire_size`` used by links to compute serialization
delay, and HTTP payloads declare their size in bytes.

Large transfers are modelled as a single "burst" segment whose size is
the full byte count — the bottleneck-link serialization time then
approximates streaming throughput without simulating every MSS-sized
segment (see DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

from repro.net.addressing import IPv4Address, MACAddress

#: Ethernet + IPv4 + TCP header overhead per packet, in bytes.
HEADER_BYTES = 66


class TCPFlags(enum.Flag):
    """The TCP flag subset the connection model uses."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()
    PSH = enum.auto()


@dataclasses.dataclass(frozen=True)
class HTTPRequest:
    """An application-layer request (content size only, no bytes)."""

    method: str
    path: str
    body_bytes: int = 0
    header_bytes: int = 200

    @property
    def total_bytes(self) -> int:
        return self.body_bytes + self.header_bytes


@dataclasses.dataclass(frozen=True)
class HTTPResponse:
    """An application-layer response."""

    status: int
    body_bytes: int = 0
    header_bytes: int = 200

    @property
    def total_bytes(self) -> int:
        return self.body_bytes + self.header_bytes

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclasses.dataclass(frozen=True)
class TCPSegment:
    """TCP header fields plus payload metadata."""

    src_port: int
    dst_port: int
    flags: TCPFlags
    payload_bytes: int = 0
    payload: _t.Any = None
    #: Connection identifier assigned by the initiating host; lets the
    #: endpoints demultiplex without modelling sequence numbers.
    conn_id: int = 0


_packet_ids = itertools.count(1)


@dataclasses.dataclass
class Packet:
    """A simulated Ethernet/IPv4/TCP packet.

    Mutable on purpose: OpenFlow *set-field* actions rewrite header
    fields in place as the packet traverses a switch, exactly like the
    paper's transparent redirection does.
    """

    eth_src: MACAddress
    eth_dst: MACAddress
    ip_src: IPv4Address
    ip_dst: IPv4Address
    tcp: TCPSegment
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: headers plus payload."""
        return HEADER_BYTES + self.tcp.payload_bytes

    def flow_key(self) -> tuple:
        """The 5-tuple-ish key used for exact-match flow rules."""
        return (self.ip_src, self.ip_dst, self.tcp.src_port, self.tcp.dst_port)

    def copy(self) -> "Packet":
        """A fresh packet with the same headers (new identity)."""
        return Packet(
            eth_src=self.eth_src,
            eth_dst=self.eth_dst,
            ip_src=self.ip_src,
            ip_dst=self.ip_dst,
            tcp=self.tcp,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = self.tcp.flags.name or "NONE"
        return (
            f"<Packet #{self.packet_id} {self.ip_src}:{self.tcp.src_port} -> "
            f"{self.ip_dst}:{self.tcp.dst_port} [{flags}] "
            f"{self.tcp.payload_bytes}B>"
        )
