"""Packet and payload types.

A :class:`Packet` carries Ethernet/IPv4/TCP headers plus an optional
application payload.  Data volume is modelled, not byte content: every
packet has a ``wire_size`` used by links to compute serialization
delay, and HTTP payloads declare their size in bytes.

Large transfers are modelled as a single "burst" segment whose size is
the full byte count — the bottleneck-link serialization time then
approximates streaming throughput without simulating every MSS-sized
segment (see DESIGN.md §2).

Packets and TCP segments are ``__slots__`` classes, not dataclasses:
they are the highest-volume allocations in the simulator (one segment
+ one packet per hop-traversing message), and the slotted layout both
shrinks them and speeds up the header-field access on the switch
lookup path.  A packet also caches its match-key tuple — the
(ip_src, ip_dst, src_port, dst_port) values every flow-table lookup
needs — so the key is computed once at first lookup and reused by
every subsequent switch hop; *set-field* rewrites invalidate it.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

from repro.net.addressing import IPv4Address, MACAddress

#: Ethernet + IPv4 + TCP header overhead per packet, in bytes.
HEADER_BYTES = 66


class TCPFlags(enum.Flag):
    """The TCP flag subset the connection model uses."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()
    PSH = enum.auto()


@dataclasses.dataclass(frozen=True, slots=True)
class HTTPRequest:
    """An application-layer request (content size only, no bytes)."""

    method: str
    path: str
    body_bytes: int = 0
    header_bytes: int = 200

    @property
    def total_bytes(self) -> int:
        return self.body_bytes + self.header_bytes


@dataclasses.dataclass(frozen=True, slots=True)
class HTTPResponse:
    """An application-layer response."""

    status: int
    body_bytes: int = 0
    header_bytes: int = 200

    @property
    def total_bytes(self) -> int:
        return self.body_bytes + self.header_bytes

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclasses.dataclass(frozen=True, slots=True)
class DataResponse(HTTPResponse):
    """An application-layer response that also carries content.

    Data volume stays size-modelled on the wire (``body_bytes`` should
    be set to the encoded size of ``payload`` so serialization delay is
    faithful), but in-simulation consumers — the ops CLI, tests — can
    read the structured ``payload`` straight off the response object
    the server handler returned.
    """

    payload: _t.Any = None


class TCPSegment:
    """TCP header fields plus payload metadata.

    Mutable on purpose: OpenFlow *set-field* port rewrites patch
    ``src_port`` / ``dst_port`` in place instead of allocating a
    replacement segment per switch hop.  Every packet owns its segment
    exclusively — hosts build a fresh one per transmission and
    :meth:`Packet.copy` clones it — so in-place rewrites never leak
    into another packet.
    """

    __slots__ = (
        "src_port",
        "dst_port",
        "flags",
        "payload_bytes",
        "payload",
        "conn_id",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        flags: TCPFlags,
        payload_bytes: int = 0,
        payload: _t.Any = None,
        conn_id: int = 0,
    ) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.flags = flags
        self.payload_bytes = payload_bytes
        self.payload = payload
        #: Connection identifier assigned by the initiating host; lets
        #: the endpoints demultiplex without modelling sequence numbers.
        self.conn_id = conn_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TCPSegment):
            return NotImplemented
        return (
            self.src_port == other.src_port
            and self.dst_port == other.dst_port
            and self.flags == other.flags
            and self.payload_bytes == other.payload_bytes
            and self.payload == other.payload
            and self.conn_id == other.conn_id
        )

    def clone(self) -> "TCPSegment":
        return TCPSegment(
            self.src_port,
            self.dst_port,
            self.flags,
            self.payload_bytes,
            self.payload,
            self.conn_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TCPSegment({self.src_port}, {self.dst_port}, {self.flags!r}, "
            f"payload_bytes={self.payload_bytes}, conn_id={self.conn_id})"
        )


_packet_ids = itertools.count(1)


class Packet:
    """A simulated Ethernet/IPv4/TCP packet.

    Mutable on purpose: OpenFlow *set-field* actions rewrite header
    fields in place as the packet traverses a switch, exactly like the
    paper's transparent redirection does.
    """

    __slots__ = (
        "eth_src",
        "eth_dst",
        "ip_src",
        "ip_dst",
        "tcp",
        "packet_id",
        "_mk",
        "_fp_next",
        "_fp_rec",
    )

    def __init__(
        self,
        eth_src: MACAddress,
        eth_dst: MACAddress,
        ip_src: IPv4Address,
        ip_dst: IPv4Address,
        tcp: TCPSegment,
        packet_id: int | None = None,
    ) -> None:
        self.eth_src = eth_src
        self.eth_dst = eth_dst
        self.ip_src = ip_src
        self.ip_dst = ip_dst
        self.tcp = tcp
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        #: Cached (ip_src, ip_dst, src_port, dst_port) match-key tuple;
        #: ``None`` until the first flow-table lookup and after any
        #: header rewrite (see ``SetField.apply``).
        self._mk: tuple | None = None
        #: Established-flow fast path (see ``repro.net.route_cache``):
        #: the next memoized hop to replay, and the in-flight recording
        #: being built by the slow path.  Both stay ``None`` for
        #: packets outside a cached flow.
        self._fp_next = None
        self._fp_rec = None

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: headers plus payload."""
        return HEADER_BYTES + self.tcp.payload_bytes

    def match_values(self) -> tuple:
        """The (ip_src, ip_dst, src_port, dst_port) tuple, cached.

        Computed at most once per packet between header rewrites; every
        switch hop's flow-table lookup slices its match key out of this
        tuple instead of re-reading the header fields.
        """
        mk = self._mk
        if mk is None:
            tcp = self.tcp
            mk = self._mk = (
                self.ip_src,
                self.ip_dst,
                tcp.src_port,
                tcp.dst_port,
            )
        return mk

    def flow_key(self) -> tuple:
        """The 5-tuple-ish key used for exact-match flow rules."""
        return self.match_values()

    def copy(self) -> "Packet":
        """A fresh packet with the same headers (new identity).

        The TCP segment is cloned, not shared: in-place *set-field*
        rewrites on either packet must not leak into the other.
        """
        return Packet(
            eth_src=self.eth_src,
            eth_dst=self.eth_dst,
            ip_src=self.ip_src,
            ip_dst=self.ip_dst,
            tcp=self.tcp.clone(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = self.tcp.flags.name or "NONE"
        return (
            f"<Packet #{self.packet_id} {self.ip_src}:{self.tcp.src_port} -> "
            f"{self.ip_dst}:{self.tcp.dst_port} [{flags}] "
            f"{self.tcp.payload_bytes}B>"
        )
