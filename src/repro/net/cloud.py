"""The cloud: one host answering on every registered service address.

In the transparent-access model (fig. 1) every edge service has a
*perceived cloud* address; the real cloud hosts all of them.  The
:class:`CloudHost` stands in for that cloud: it accepts connections to
any (service IP, port) pair it serves and answers *from* that address,
so un-redirected traffic (FAST empty, or unregistered services) still
works end to end.
"""

from __future__ import annotations

import typing as _t

from repro.net.addressing import IPv4Address
from repro.net.host import Host, Listener

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Application


class CloudHost(Host):
    """A host demultiplexing listeners by (destination IP, port)."""

    def __init__(self, env, name, mac, ip) -> None:
        super().__init__(env, name, mac, ip)
        self._services: dict[tuple[IPv4Address, int], Listener] = {}

    def open_service(
        self, ip: IPv4Address, port: int, app: "Application"
    ) -> None:
        """Serve ``app`` at the cloud address ``ip:port``."""
        key = (ip, port)
        if key in self._services:
            raise ValueError(f"{self.name}: service {ip}:{port} already open")
        self._services[key] = Listener(port, app)

    def close_service(self, ip: IPv4Address, port: int) -> None:
        self._services.pop((ip, port), None)

    def service_is_open(self, ip: IPv4Address, port: int) -> bool:
        return (ip, port) in self._services

    def _listener_for(self, ip: IPv4Address, port: int) -> Listener | None:
        listener = self._services.get((ip, port))
        if listener is not None:
            return listener
        # Fall back to ordinary per-port listeners on the cloud's own IP.
        if ip == self.ip:
            return super()._listener_for(ip, port)
        return None
