"""Discrete-event network substrate.

Models the parts of the C³ testbed's data plane that the transparent
edge approach exercises: hosts with a TCP-handshake + HTTP model,
point-to-point links with latency and bandwidth, and (in
:mod:`repro.net.openflow`) an OpenFlow switch whose flow table the SDN
controller programs.

The measured quantity throughout the reproduction is ``time_total`` as
defined by the paper's *timecurl* script: from the moment the client
starts establishing a TCP connection until the full HTTP response has
arrived.
"""

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import (
    DataResponse,
    HTTPRequest,
    HTTPResponse,
    Packet,
    TCPFlags,
    TCPSegment,
)
from repro.net.link import Link
from repro.net.device import NetDevice, NetworkInterface
from repro.net.host import ConnectionRefused, ConnectionTimeout, Host, HTTPResult

__all__ = [
    "ConnectionRefused",
    "ConnectionTimeout",
    "DataResponse",
    "HTTPRequest",
    "HTTPResponse",
    "HTTPResult",
    "Host",
    "IPv4Address",
    "Link",
    "MACAddress",
    "NetDevice",
    "NetworkInterface",
    "Packet",
    "TCPFlags",
    "TCPSegment",
]
