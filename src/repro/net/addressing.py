"""IPv4 and MAC addresses with allocators.

Thin immutable wrappers around integers — hashable, ordered, cheap to
compare — with the dotted/colon formats used in logs and tests.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 value out of range: {self.value:#x}")

    def __hash__(self) -> int:
        # Addresses are dict keys on every flow-table lookup; the
        # non-negative 32-bit value is its own perfect hash, cheaper
        # than the generated hash((self.value,)) tuple round-trip.
        return self.value

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed IPv4 address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


@dataclasses.dataclass(frozen=True, order=True)
class MACAddress:
    """An Ethernet MAC address stored as a 48-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC value out of range: {self.value:#x}")

    def __hash__(self) -> int:
        # Same reasoning as IPv4Address: the 48-bit value fits a hash
        # slot directly.
        return self.value

    @classmethod
    def parse(cls, text: str) -> "MACAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address {text!r}")
        value = 0
        for part in parts:
            octet = int(part, 16)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed MAC address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ":".join(
            f"{(self.value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0)
        )

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"


class IPAllocator:
    """Hands out sequential addresses from a /24-style base."""

    def __init__(self, base: str = "10.0.0.0") -> None:
        self._next = IPv4Address.parse(base).value + 1

    def allocate(self) -> IPv4Address:
        addr = IPv4Address(self._next)
        self._next += 1
        return addr


class MACAllocator:
    """Hands out sequential locally-administered MACs."""

    def __init__(self, base: int = 0x02_00_00_00_00_00) -> None:
        self._next = base + 1

    def allocate(self) -> MACAddress:
        mac = MACAddress(self._next)
        self._next += 1
        return mac
