"""Network device and interface abstractions.

A :class:`NetDevice` (host or switch) owns one or more
:class:`NetworkInterface` objects; each interface attaches to exactly
one :class:`~repro.net.link.Link` endpoint.  Links call
:meth:`NetDevice.receive` when a packet arrives.
"""

from __future__ import annotations

import typing as _t

from repro.net.addressing import IPv4Address, MACAddress

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import LinkEndpoint
    from repro.net.packet import Packet
    from repro.sim import Environment


class NetworkInterface:
    """One attachment point of a device to a link."""

    def __init__(
        self,
        device: "NetDevice",
        mac: MACAddress,
        ip: IPv4Address | None = None,
        name: str = "eth0",
    ) -> None:
        self.device = device
        self.mac = mac
        self.ip = ip
        self.name = name
        self.endpoint: "LinkEndpoint | None" = None
        #: OpenFlow port number, stamped by ``Switch.add_port``; stays
        #: ``None`` on host interfaces.  Kept on the interface so the
        #: switch receive path reads an attribute instead of doing a
        #: dict lookup per packet.
        self.port_no: int | None = None

    @property
    def attached(self) -> bool:
        return self.endpoint is not None

    def __getstate__(self) -> dict[str, _t.Any]:
        # A link endpoint drags in the Link, the far-side device, and
        # ultimately a whole Environment — none of which belong in a
        # pickled snapshot.  Interfaces rematerialize detached; the
        # receiving partition re-wires them to its own links.
        state = self.__dict__.copy()
        state["endpoint"] = None
        return state

    def send(self, packet: "Packet") -> None:
        """Queue ``packet`` for transmission on the attached link."""
        if self.endpoint is None:
            raise RuntimeError(f"{self} is not attached to a link")
        self.endpoint.transmit(packet)

    def deliver(self, packet: "Packet") -> None:
        """Called by the link when a packet arrives here."""
        self.device.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.device.name}:{self.name} {self.ip or self.mac}>"


class NetDevice:
    """Base class for hosts and switches."""

    def __init__(self, env: "Environment", name: str) -> None:
        self.env = env
        self.name = name
        self.interfaces: list[NetworkInterface] = []

    def add_interface(
        self,
        mac: MACAddress,
        ip: IPv4Address | None = None,
        name: str | None = None,
    ) -> NetworkInterface:
        iface = NetworkInterface(
            self, mac, ip, name=name or f"eth{len(self.interfaces)}"
        )
        self.interfaces.append(iface)
        return iface

    def receive(self, packet: "Packet", iface: NetworkInterface) -> None:
        """Handle an arriving packet.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
