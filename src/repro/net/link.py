"""Point-to-point links with latency and bandwidth.

Each direction of a link is an independent FIFO transmitter: packets
serialize at the link's bandwidth one after another, then propagate for
the link's latency.  This reproduces the store-and-forward behaviour
of the testbed's switched Ethernet without per-byte events.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from heapq import heappush

from repro.net.packet import HEADER_BYTES
from repro.sim import Environment
from repro.sim.events import NORMAL

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import NetworkInterface
    from repro.net.packet import Packet

#: Convenience bandwidth constants (bits per second).
GBPS = 1_000_000_000
MBPS = 1_000_000


class LinkEndpoint:
    """One side of a link; owns the transmit queue for its direction.

    The transmitter is callback-driven: while the line is busy,
    packets queue in a plain deque; each packet costs exactly two slim
    scheduled callbacks (end of serialization, end of propagation)
    instead of a store hand-off plus a propagation process.  The
    serialization timeline — one packet on the wire at a time,
    propagation pipelined — is unchanged.

    (A one-event-per-packet variant that schedules delivery directly
    at transmit time — tracking only a ``busy-until`` timestamp — was
    tried and rejected: it moves the delivery's heap sequence number
    from serialization end to transmit time, which reorders
    same-timestamp events and breaks byte-identical replay.)

    Heap entries are pushed inline (env internals poked directly, like
    ``events.py`` does) and the per-hop callbacks are pre-bound: at two
    pushes per packet-hop this is one of the two hottest scheduling
    sites in the simulator.  The link's bandwidth/latency/down state is
    mirrored into endpoint slots (refreshed by the Link property
    setters) so the serialization expression reads locals, not a
    property chain; the float expression itself is unchanged, keeping
    the exact ``wire_size * 8 / bandwidth`` rounding of the replay
    fingerprint.

    Fast-path dispatch: when a packet carries a memoized next hop
    recorded for *this* endpoint (see ``repro.net.route_cache``), the
    end-of-serialization callback fuses the propagation delay and the
    switch's lookup delay into a single scheduled ``_fast_hop`` call,
    skipping the delivery callback and ``switch.receive`` entirely.
    The fire time is composed as ``(now + latency) + lookup_delay`` —
    the same two float additions the unfused path performs — so
    delivery-chain timestamps stay byte-identical.  The fusion is
    declined (falling back to the plain delivery callback) when the
    link is down or its epoch moved, so parameter changes invalidate
    the route and re-enter the slow path.
    """

    __slots__ = (
        "link",
        "iface",
        "peer",
        "_pending",
        "_busy",
        "_env",
        "_bw",
        "_lat",
        "_down",
        "_recv_dev",
        "_recv_iface",
        "_serialized_cb",
        "_deliver_cb",
    )

    def __init__(self, link: "Link", iface: "NetworkInterface") -> None:
        self.link = link
        self.iface = iface
        self.peer: "LinkEndpoint | None" = None
        self._pending: deque["Packet"] = deque()
        self._busy = False
        self._env = link.env
        # Hot-parameter mirror, kept in sync by the Link setters.
        self._bw = link._bandwidth_bps
        self._lat = link._latency_s
        self._down = link._down
        # Delivery target (peer device + interface), bound by
        # Link.__init__ once both endpoints exist.  The device, not its
        # bound ``receive``, is cached: tests monkey-patch ``receive``
        # on device instances and must keep seeing deliveries.
        self._recv_dev = None
        self._recv_iface: "NetworkInterface | None" = None
        self._serialized_cb = self._serialized
        self._deliver_cb = self._deliver

    def _serialize(self, packet: "Packet") -> None:
        # Serialization at line rate, then propagation.  Pre-bound
        # method + operand on the heap entry: no per-packet closure.
        # The delay keeps the exact ``wire_size * 8 / bandwidth``
        # association (a precomputed 8/bandwidth factor would change
        # the float rounding and with it the replay fingerprint); the
        # wire size is inlined to skip the property descriptor.
        env = self._env
        heappush(
            env._queue,
            (
                env._now
                + (HEADER_BYTES + packet.tcp.payload_bytes) * 8 / self._bw,
                NORMAL,
                next(env._seq),
                self._serialized_cb,
                (packet,),
            ),
        )

    def transmit(self, packet: "Packet") -> None:
        """Enqueue a packet for transmission towards the peer."""
        if self._busy:
            self._pending.append(packet)
        else:
            self._busy = True
            self._serialize(packet)

    def _serialized(self, packet: "Packet") -> None:
        env = self._env
        hop = packet._fp_next
        if (
            hop is not None
            and hop.src_ep is self
            and not self._down
            and hop.in_epoch == self.link.epoch
        ):
            # Fused fast hop: one event for propagation + switch lookup.
            # ``(now + lat) + lookup`` reproduces the unfused float sums.
            heappush(
                env._queue,
                (
                    (env._now + self._lat) + hop.switch.lookup_delay_s,
                    NORMAL,
                    next(env._seq),
                    hop.fire,
                    (packet, hop),
                ),
            )
        else:
            if hop is not None:
                # Link state moved under the route: discard it so the
                # next packet of the flow re-records on the slow path.
                hop.route.invalidate()
                packet._fp_next = None
            heappush(
                env._queue,
                (
                    env._now + self._lat,
                    NORMAL,
                    next(env._seq),
                    self._deliver_cb,
                    (packet,),
                ),
            )
        if self._pending:
            self._serialize(self._pending.popleft())
        else:
            self._busy = False

    def _deliver(self, packet: "Packet") -> None:
        if self._recv_dev is not None and not self._down:
            self._recv_dev.receive(packet, self._recv_iface)


class Link:
    """A bidirectional point-to-point link between two interfaces.

    ``bandwidth_bps`` / ``latency_s`` / ``down`` are epoch-guarded
    properties: any change bumps :attr:`epoch`, which invalidates every
    memoized route crossing the link (cached routes store the epoch
    they were recorded under and fall back to the slow path on
    mismatch).  The setters also refresh the per-endpoint parameter
    mirrors the hot transmit path reads.
    """

    def __init__(
        self,
        env: Environment,
        a: "NetworkInterface",
        b: "NetworkInterface",
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.env = env
        self._bandwidth_bps = float(bandwidth_bps)
        self._latency_s = float(latency_s)
        self._down = False
        #: Parameter-change counter consulted by the route cache.
        self.epoch = 0

        self.end_a = LinkEndpoint(self, a)
        self.end_b = LinkEndpoint(self, b)
        self.end_a.peer = self.end_b
        self.end_b.peer = self.end_a
        a.endpoint = self.end_a
        b.endpoint = self.end_b
        for end in (self.end_a, self.end_b):
            peer = end.peer
            assert peer is not None
            end._recv_dev = peer.iface.device
            end._recv_iface = peer.iface

    def _sync_endpoints(self) -> None:
        self.epoch += 1
        for end in (self.end_a, self.end_b):
            end._bw = self._bandwidth_bps
            end._lat = self._latency_s
            end._down = self._down

    @property
    def bandwidth_bps(self) -> float:
        return self._bandwidth_bps

    @bandwidth_bps.setter
    def bandwidth_bps(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"bandwidth must be positive, got {value}")
        self._bandwidth_bps = float(value)
        self._sync_endpoints()

    @property
    def latency_s(self) -> float:
        return self._latency_s

    @latency_s.setter
    def latency_s(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self._latency_s = float(value)
        self._sync_endpoints()

    @property
    def lookahead_s(self) -> float:
        """The conservative-synchronization window this link provides.

        A partitioned run (``repro.sim.parallel``) cuts the topology at
        backbone links; a message entering the link at time ``t``
        cannot influence the far side before ``t + latency_s``, so the
        propagation latency *is* the lookahead the null-message
        synchronizer advances by.  Zero means "unusable as a cut edge"
        — the partitioner rejects such links up front.
        """
        return self._latency_s

    @property
    def down(self) -> bool:
        """Administrative state; a downed link silently drops packets,
        used by failure-injection tests."""
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        self._down = bool(value)
        self._sync_endpoints()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.end_a.iface.device.name}<->{self.end_b.iface.device.name} "
            f"{self._bandwidth_bps / 1e9:g}Gbps {self._latency_s * 1e6:g}us>"
        )
