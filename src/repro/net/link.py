"""Point-to-point links with latency and bandwidth.

Each direction of a link is an independent FIFO transmitter: packets
serialize at the link's bandwidth one after another, then propagate for
the link's latency.  This reproduces the store-and-forward behaviour
of the testbed's switched Ethernet without per-byte events.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import NetworkInterface
    from repro.net.packet import Packet

#: Convenience bandwidth constants (bits per second).
GBPS = 1_000_000_000
MBPS = 1_000_000


class LinkEndpoint:
    """One side of a link; owns the transmit queue for its direction.

    The transmitter is callback-driven: while the line is busy,
    packets queue in a plain deque; each packet costs exactly two slim
    scheduled callbacks (end of serialization, end of propagation)
    instead of a store hand-off plus a propagation process.  The
    serialization timeline — one packet on the wire at a time,
    propagation pipelined — is unchanged.
    """

    def __init__(self, link: "Link", iface: "NetworkInterface") -> None:
        self.link = link
        self.iface = iface
        self.peer: "LinkEndpoint | None" = None
        self._pending: deque["Packet"] = deque()
        self._busy = False

    def transmit(self, packet: "Packet") -> None:
        """Enqueue a packet for transmission towards the peer."""
        if self._busy:
            self._pending.append(packet)
        else:
            self._busy = True
            self._serialize(packet)

    def _serialize(self, packet: "Packet") -> None:
        # Serialization at line rate, then propagation.
        self.link.env.call_later(
            packet.wire_size * 8 / self.link.bandwidth_bps,
            lambda: self._serialized(packet),
        )

    def _serialized(self, packet: "Packet") -> None:
        self.link.env.call_later(
            self.link.latency_s, lambda: self._deliver(packet)
        )
        if self._pending:
            self._serialize(self._pending.popleft())
        else:
            self._busy = False

    def _deliver(self, packet: "Packet") -> None:
        peer = self.peer
        if peer is not None and not self.link.down:
            peer.iface.deliver(packet)


class Link:
    """A bidirectional point-to-point link between two interfaces."""

    def __init__(
        self,
        env: Environment,
        a: "NetworkInterface",
        b: "NetworkInterface",
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        #: Administrative state; a downed link silently drops packets,
        #: used by failure-injection tests.
        self.down = False

        self.end_a = LinkEndpoint(self, a)
        self.end_b = LinkEndpoint(self, b)
        self.end_a.peer = self.end_b
        self.end_b.peer = self.end_a
        a.endpoint = self.end_a
        b.endpoint = self.end_b

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.end_a.iface.device.name}<->{self.end_b.iface.device.name} "
            f"{self.bandwidth_bps / 1e9:g}Gbps {self.latency_s * 1e6:g}us>"
        )
