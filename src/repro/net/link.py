"""Point-to-point links with latency and bandwidth.

Each direction of a link is an independent FIFO transmitter: packets
serialize at the link's bandwidth one after another, then propagate for
the link's latency.  This reproduces the store-and-forward behaviour
of the testbed's switched Ethernet without per-byte events.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.net.packet import HEADER_BYTES
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import NetworkInterface
    from repro.net.packet import Packet

#: Convenience bandwidth constants (bits per second).
GBPS = 1_000_000_000
MBPS = 1_000_000


class LinkEndpoint:
    """One side of a link; owns the transmit queue for its direction.

    The transmitter is callback-driven: while the line is busy,
    packets queue in a plain deque; each packet costs exactly two slim
    scheduled callbacks (end of serialization, end of propagation)
    instead of a store hand-off plus a propagation process.  The
    serialization timeline — one packet on the wire at a time,
    propagation pipelined — is unchanged.

    (A one-event-per-packet variant that schedules delivery directly
    at transmit time — tracking only a ``busy-until`` timestamp — was
    tried and rejected: it moves the delivery's heap sequence number
    from serialization end to transmit time, which reorders
    same-timestamp events and breaks byte-identical replay.)
    """

    __slots__ = ("link", "iface", "peer", "_pending", "_busy", "_call_later")

    def __init__(self, link: "Link", iface: "NetworkInterface") -> None:
        self.link = link
        self.iface = iface
        self.peer: "LinkEndpoint | None" = None
        self._pending: deque["Packet"] = deque()
        self._busy = False
        # Hot-path binding, hoisted once: the env.call_later attribute
        # chain is otherwise re-resolved twice per packet-hop.
        self._call_later = link.env.call_later

    def _serialize(self, packet: "Packet") -> None:
        # Serialization at line rate, then propagation.  Bound method +
        # operand on the heap entry: no per-packet closure allocation.
        # The delay keeps the exact ``wire_size * 8 / bandwidth``
        # association (a precomputed 8/bandwidth factor would change
        # the float rounding and with it the replay fingerprint); the
        # wire size is inlined to skip the property descriptor.
        self._call_later(
            (HEADER_BYTES + packet.tcp.payload_bytes) * 8 / self.link.bandwidth_bps,
            self._serialized,
            packet,
        )

    def transmit(self, packet: "Packet") -> None:
        """Enqueue a packet for transmission towards the peer."""
        if self._busy:
            self._pending.append(packet)
        else:
            self._busy = True
            self._serialize(packet)

    def _serialized(self, packet: "Packet") -> None:
        self._call_later(self.link.latency_s, self._deliver, packet)
        if self._pending:
            self._serialize(self._pending.popleft())
        else:
            self._busy = False

    def _deliver(self, packet: "Packet") -> None:
        peer = self.peer
        if peer is not None and not self.link.down:
            peer.iface.deliver(packet)


class Link:
    """A bidirectional point-to-point link between two interfaces."""

    def __init__(
        self,
        env: Environment,
        a: "NetworkInterface",
        b: "NetworkInterface",
        bandwidth_bps: float = GBPS,
        latency_s: float = 50e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        #: Administrative state; a downed link silently drops packets,
        #: used by failure-injection tests.
        self.down = False

        self.end_a = LinkEndpoint(self, a)
        self.end_b = LinkEndpoint(self, b)
        self.end_a.peer = self.end_b
        self.end_b.peer = self.end_a
        a.endpoint = self.end_a
        b.endpoint = self.end_b

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.end_a.iface.device.name}<->{self.end_b.iface.device.name} "
            f"{self.bandwidth_bps / 1e9:g}Gbps {self.latency_s * 1e6:g}us>"
        )
