"""Flow match expressions.

A :class:`FlowMatch` is a conjunction of field equalities; ``None``
means wildcard.  The transparent-edge controller matches on the
(ip_src, ip_dst, tcp_dst) combination: destination identifies the
registered service, source identifies the client.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.net.addressing import IPv4Address
from repro.net.packet import Packet


@dataclasses.dataclass(frozen=True)
class FlowMatch:
    """Match on any subset of the IPv4/TCP 4-tuple."""

    ip_src: IPv4Address | None = None
    ip_dst: IPv4Address | None = None
    tcp_src: int | None = None
    tcp_dst: int | None = None

    def matches(self, packet: Packet) -> bool:
        if self.ip_src is not None and packet.ip_src != self.ip_src:
            return False
        if self.ip_dst is not None and packet.ip_dst != self.ip_dst:
            return False
        if self.tcp_src is not None and packet.tcp.src_port != self.tcp_src:
            return False
        if self.tcp_dst is not None and packet.tcp.dst_port != self.tcp_dst:
            return False
        return True

    @property
    def specificity(self) -> int:
        """Number of concrete fields (used only for diagnostics)."""
        return sum(
            field is not None
            for field in (self.ip_src, self.ip_dst, self.tcp_src, self.tcp_dst)
        )

    def __str__(self) -> str:
        parts = []
        for name in ("ip_src", "ip_dst", "tcp_src", "tcp_dst"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return "match(" + ", ".join(parts or ["*"]) + ")"


#: The match-everything wildcard.
MATCH_ALL = FlowMatch()
