"""OpenFlow data plane: matches, actions, flow tables, and the switch.

Models the OpenFlow 1.5 subset the paper's transparent-access approach
relies on (packet filtering and rewriting, fig. 2): priority-ordered
exact/wildcard matches on the IPv4/TCP 4-tuple, *set-field* rewrite
actions, output actions, packet-in with buffering, flow-mod,
packet-out, and idle/hard timeouts with flow-removed notifications.
"""

from repro.net.openflow.match import FlowMatch
from repro.net.openflow.actions import Drop, Output, SetField, ToController
from repro.net.openflow.table import FlowEntry, FlowTable
from repro.net.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
)
from repro.net.openflow.switch import ControlChannel, OpenFlowSwitch

__all__ = [
    "BarrierReply",
    "BarrierRequest",
    "ControlChannel",
    "Drop",
    "FlowEntry",
    "FlowMatch",
    "FlowMod",
    "FlowRemoved",
    "FlowTable",
    "OpenFlowSwitch",
    "Output",
    "PacketIn",
    "PacketOut",
    "SetField",
    "ToController",
]
