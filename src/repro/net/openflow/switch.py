"""The OpenFlow switch datapath and its control channel."""

from __future__ import annotations

import itertools
import typing as _t
from collections import deque
from heapq import heappush

from repro.net.device import NetDevice, NetworkInterface
from repro.net.openflow.actions import Action, Drop, Output, SetField, ToController
from repro.net.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    FlowStatEntry,
    FlowStatsReply,
    FlowStatsRequest,
    PacketIn,
    PacketOut,
)
from repro.net.openflow.table import FlowEntry, FlowTable, REASON_DELETE
from repro.net.packet import Packet
from repro.net.route_cache import RouteHop, compile_rewrites
from repro.sim import Environment
from repro.sim.events import NORMAL

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdnfw.app import SDNApp


class ControlChannel:
    """Ordered, latency-modelled message pipe between switch and controller.

    Both directions preserve FIFO order (a TCP control connection in
    the real system); each message is delayed by ``latency_s``.

    Each direction is a callback busy-chain rather than a Store plus a
    pump process: the first message in a burst schedules its own
    delivery, later ones queue in a deque, and each delivery chains the
    next.  That keeps the old pump's timeline — message *n+1* of a
    burst departs when message *n* lands, so back-to-back messages
    space out by ``latency_s`` — at two heap entries per message
    instead of a store hand-off plus a process resumption.  On
    delivery the message is dispatched *before* the next one is
    scheduled, matching the pump's resume-dispatch-then-wait order.
    """

    def __init__(self, env: Environment, latency_s: float = 200e-6) -> None:
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        self.env = env
        self.latency_s = float(latency_s)
        self.switch: "OpenFlowSwitch | None" = None
        self.controller: "SDNApp | None" = None
        self._up_queue: deque = deque()
        self._up_busy = False
        self._down_queue: deque = deque()
        self._down_busy = False

    def bind(self, switch: "OpenFlowSwitch", controller: "SDNApp") -> None:
        self.switch = switch
        self.controller = controller

    def send_to_controller(self, message: _t.Any) -> None:
        if self._up_busy:
            self._up_queue.append(message)
        else:
            self._up_busy = True
            self.env.call_later(self.latency_s, self._deliver_up, message)

    def send_to_switch(self, message: _t.Any) -> None:
        if self._down_busy:
            self._down_queue.append(message)
        else:
            self._down_busy = True
            self.env.call_later(self.latency_s, self._deliver_down, message)

    def _deliver_up(self, message: _t.Any) -> None:
        if self.controller is not None and self.switch is not None:
            self.controller.dispatch_switch_message(self.switch, message)
        if self._up_queue:
            self.env.call_later(
                self.latency_s, self._deliver_up, self._up_queue.popleft()
            )
        else:
            self._up_busy = False

    def _deliver_down(self, message: _t.Any) -> None:
        if self.switch is not None:
            self.switch.handle_controller_message(message)
        if self._down_queue:
            self.env.call_later(
                self.latency_s, self._deliver_down, self._down_queue.popleft()
            )
        else:
            self._down_busy = False


class OpenFlowSwitch(NetDevice):
    """A single-table OpenFlow switch (the testbed's virtual OVS).

    Packets are matched against the flow table after a small lookup
    delay; misses (or explicit *ToController* actions) are buffered and
    punted to the controller as packet-in messages.  The buffered
    packet is released later by a flow-mod carrying its ``buffer_id``
    or an explicit packet-out — the "held request" of on-demand
    deployment with waiting.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        datapath_id: int,
        lookup_delay_s: float = 10e-6,
        expiry_sweep_interval_s: float = 0.25,
    ) -> None:
        super().__init__(env, name)
        if expiry_sweep_interval_s <= 0:
            raise ValueError("expiry_sweep_interval_s must be > 0")
        self.datapath_id = datapath_id
        self.lookup_delay_s = float(lookup_delay_s)
        self.table = FlowTable()
        self.channel: ControlChannel | None = None
        self._ports: dict[int, NetworkInterface] = {}
        self._port_numbers: dict[NetworkInterface, int] = {}
        self._next_port = itertools.count(1)
        self._buffers: dict[int, tuple[Packet, int]] = {}
        self._next_buffer = itertools.count(1)
        #: Counters for tests and diagnostics.
        self.stats = {"rx": 0, "tx": 0, "miss": 0, "drop": 0, "punt": 0}
        # Expiry is deadline-driven: instead of a process sweeping the
        # table every ``expiry_sweep_interval_s`` even when idle, the
        # switch wakes only at the sweep-grid tick covering the
        # earliest possible expiry.  The grid (construction time plus
        # multiples of the interval, accumulated in float exactly as
        # the old fixed-interval sweeper did) is kept so FlowRemoved
        # messages fire at byte-identical simulated times.
        self.expiry_sweep_interval_s = float(expiry_sweep_interval_s)
        self._grid_cursor = env.now
        self._wake_at: float | None = None
        self._wake_gen = 0
        self.table.on_insert = self._entry_installed

    # -- ports -----------------------------------------------------------

    def add_port(self, mac) -> tuple[int, NetworkInterface]:
        """Create a new switch port; returns (port_no, interface)."""
        port_no = next(self._next_port)
        iface = self.add_interface(mac, ip=None, name=f"port{port_no}")
        iface.port_no = port_no
        self._ports[port_no] = iface
        self._port_numbers[iface] = port_no
        return port_no, iface

    def port_of(self, iface: NetworkInterface) -> int:
        return self._port_numbers[iface]

    def ports(self) -> list[NetworkInterface]:
        """All port interfaces (Injector crashes walk the attached links)."""
        return list(self._ports.values())

    def power_cycle(self) -> None:
        """Lose all volatile state (failure injection: switch crash).

        Flow entries and held packet-in buffers are gone; the table
        epoch bump invalidates memoized routes through this switch.
        The controller replays ``on_datapath_join`` when the switch
        comes back, exactly as a real datapath re-handshakes.
        """
        self.table.clear()
        self._buffers.clear()

    # -- data plane ---------------------------------------------------------

    def receive(self, packet: Packet, iface: NetworkInterface) -> None:
        self.stats["rx"] += 1
        # A packet landing here on the delivery path may still carry a
        # fast-path hop whose fusion was declined (link epoch moved or
        # link down at serialization end): drop the stale pointer so
        # the slow path owns the packet from here on.
        if packet._fp_next is not None:
            packet._fp_next.route.invalidate()
            packet._fp_next = None
        # One slim callback per packet instead of a full process: the
        # pipeline body runs after the lookup delay and never blocks.
        # Operands travel on the heap entry itself — no closure.
        env = self.env
        heappush(
            env._queue,
            (
                env._now + self.lookup_delay_s,
                NORMAL,
                next(env._seq),
                self._pipeline,
                (packet, iface.port_no),
            ),
        )

    def _pipeline(self, packet: Packet, in_port: int) -> None:
        entry = self.table.lookup(packet)
        if entry is None:
            self.stats["miss"] += 1
            packet._fp_rec = None  # a punted traversal is not replayable
            self._punt(packet, in_port, reason="no_match")
            return
        entry.last_used = self.env._now
        entry.packet_count += 1
        if packet._fp_rec is not None:
            self._record_hop(entry, packet, in_port)
        else:
            self._apply_actions(entry.actions, packet, in_port)

    def _record_hop(
        self, entry: FlowEntry, packet: Packet, in_port: int
    ) -> None:
        """Slow-path hop with recording: apply ``entry``'s actions and
        append a replayable :class:`RouteHop` to the packet's in-flight
        recording.  Any action shape the replayer can't reproduce
        exactly aborts the recording and falls back wholesale."""
        compiled = entry._compiled
        if compiled is False:
            compiled = entry._compiled = compile_rewrites(entry.actions)
        if compiled is None:
            packet._fp_rec = None
            self._apply_actions(entry.actions, packet, in_port)
            return
        rewrites, out_port = compiled
        # Epoch snapshots *at lookup time*: equality at replay time
        # proves the memoized lookup/egress still match a fresh run.
        table_epoch = self.table.epoch
        in_ep = self._ports[in_port].endpoint
        src_ep = in_ep.peer if in_ep is not None else None
        out_iface = self._ports.get(out_port)
        if src_ep is None or out_iface is None or not out_iface.attached:
            # Not a replayable traversal (packet-out injection or a
            # drop on output); run the plain slow path for this hop.
            packet._fp_rec = None
            self._apply_actions(entry.actions, packet, in_port)
            return
        for action in entry.actions[:-1]:
            action.apply(packet)
        hop = RouteHop(
            self,
            in_port,
            entry,
            table_epoch,
            src_ep,
            src_ep.link.epoch,
            out_iface,
            rewrites,
            packet.match_values(),
        )
        packet._fp_rec.hops.append(hop)
        self.stats["tx"] += 1
        out_iface.send(packet)

    def _fast_hop(self, packet: Packet, hop: RouteHop) -> None:
        """Replay one memoized hop (fused propagation + lookup delay).

        Runs at the exact simulated instant the slow path's
        ``_pipeline`` would have: epoch equality then proves the
        memoized lookup result is what a fresh lookup would return, so
        the hop reproduces the slow path's side effects — rx/tx
        counters, the entry's ``last_used``/``packet_count`` refresh,
        header rewrites, match-key cache — without running it.

        Epoch inequality only means *something* in the table moved, not
        that this flow's lookup changed — and installs for unrelated
        flows are constant background traffic, so discarding on every
        bump would thrash the cache.  A mismatch therefore triggers a
        one-shot revalidation: one fresh (pure) indexed lookup at
        exactly the instant the slow path would have performed it.  The
        same entry back proves the replay is still what the slow path
        would do (entry action programs are immutable), and the hop's
        epoch snapshot moves forward; a different result (or a dead
        egress-link epoch) kills the route and the packet re-enters
        ``_pipeline`` here and now — byte-identical to never having
        fused.
        """
        self.stats["rx"] += 1
        table = self.table
        if table.epoch != hop.table_epoch:
            if table.lookup(packet) is hop.entry:
                hop.table_epoch = table.epoch
            else:
                hop.route.invalidate()
                packet._fp_next = None
                self._pipeline(packet, hop.in_port)
                return
        if hop.out_link.epoch != hop.out_epoch:
            hop.route.invalidate()
            packet._fp_next = None
            self._pipeline(packet, hop.in_port)
            return
        entry = hop.entry
        entry.last_used = self.env._now
        entry.packet_count += 1
        tcp = packet.tcp
        for slot, value in hop.rewrites:
            if slot == 1:
                packet.ip_dst = value
            elif slot == 3:
                tcp.dst_port = value
            elif slot == 0:
                packet.ip_src = value
            elif slot == 2:
                tcp.src_port = value
            elif slot == 4:
                packet.eth_src = value
            else:
                packet.eth_dst = value
        packet._mk = hop.mk_after
        self.stats["tx"] += 1
        packet._fp_next = hop.next
        hop.out_ep.transmit(packet)

    def _apply_actions(
        self, actions: _t.Sequence[Action], packet: Packet, in_port: int
    ) -> None:
        for action in actions:
            if isinstance(action, SetField):
                action.apply(packet)
            elif isinstance(action, Output):
                self._output(packet, action.port)
            elif isinstance(action, ToController):
                self._punt(packet, in_port, reason="action")
            elif isinstance(action, Drop):
                self.stats["drop"] += 1
                return
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown action {action!r}")

    def _output(self, packet: Packet, port: int) -> None:
        iface = self._ports.get(port)
        if iface is None or not iface.attached:
            self.stats["drop"] += 1
            return
        self.stats["tx"] += 1
        iface.send(packet)

    def _punt(self, packet: Packet, in_port: int, reason: str) -> None:
        if self.channel is None:
            self.stats["drop"] += 1
            return
        self.stats["punt"] += 1
        buffer_id = next(self._next_buffer)
        self._buffers[buffer_id] = (packet, in_port)
        self.channel.send_to_controller(
            PacketIn(
                datapath_id=self.datapath_id,
                buffer_id=buffer_id,
                packet=packet,
                in_port=in_port,
                reason=reason,
            )
        )

    # -- control plane -----------------------------------------------------------

    def handle_controller_message(self, message: _t.Any) -> None:
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            self._handle_flow_stats(message)
        elif isinstance(message, BarrierRequest):
            if self.channel is not None:
                self.channel.send_to_controller(
                    BarrierReply(datapath_id=self.datapath_id, xid=message.xid)
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown controller message {message!r}")

    def _handle_flow_mod(self, mod: FlowMod) -> None:
        if mod.command == "add":
            if mod.match is None:
                raise ValueError("FlowMod add requires a match")
            entry = FlowEntry(
                match=mod.match,
                actions=mod.actions,
                priority=mod.priority,
                idle_timeout=mod.idle_timeout,
                hard_timeout=mod.hard_timeout,
                cookie=mod.cookie,
                notify_removal=mod.notify_removal,
            )
            self.table.install(entry, self.env.now)
            if mod.buffer_id is not None:
                self._release_buffer(mod.buffer_id, entry.actions)
        else:  # delete
            removed = self.table.remove_matching(
                match=mod.match, cookie=mod.cookie
            )
            for entry in removed:
                self._notify_removed(entry, REASON_DELETE)

    def _handle_flow_stats(self, request: FlowStatsRequest) -> None:
        if self.channel is None:
            return
        stats: list[FlowStatEntry] = []
        for entry in self.table:
            if request.match is not None and entry.match != request.match:
                continue
            if request.cookie is not None and entry.cookie != request.cookie:
                continue
            if request.cookie_prefix is not None and not str(
                entry.cookie or ""
            ).startswith(request.cookie_prefix):
                continue
            stats.append(
                FlowStatEntry(
                    match=entry.match,
                    cookie=entry.cookie,
                    priority=entry.priority,
                    packet_count=entry.packet_count,
                    installed_at=entry.installed_at,
                    last_used=entry.last_used,
                )
            )
        self.channel.send_to_controller(
            FlowStatsReply(
                datapath_id=self.datapath_id, xid=request.xid, stats=stats
            )
        )

    def _handle_packet_out(self, out: PacketOut) -> None:
        if out.buffer_id is not None:
            self._release_buffer(out.buffer_id, out.actions)
        else:
            packet = _t.cast(Packet, out.packet)
            self._apply_actions(out.actions, packet, out.in_port or 0)

    def _release_buffer(
        self, buffer_id: int, actions: _t.Sequence[Action]
    ) -> None:
        held = self._buffers.pop(buffer_id, None)
        if held is None:
            return
        packet, in_port = held
        self._apply_actions(actions, packet, in_port)

    def _notify_removed(self, entry: FlowEntry, reason: str) -> None:
        if self.channel is None or not entry.notify_removal:
            return
        self.channel.send_to_controller(
            FlowRemoved(
                datapath_id=self.datapath_id,
                match=entry.match,
                cookie=entry.cookie,
                reason=reason,
                priority=entry.priority,
                packet_count=entry.packet_count,
            )
        )

    # -- deadline-driven expiry --------------------------------------------------

    def _entry_installed(self, entry: FlowEntry) -> None:
        """Table hook: arm the expiry wakeup for a fresh entry."""
        deadline = entry.next_deadline()
        if deadline is not None:
            self._schedule_expiry_wake(deadline)

    def _next_grid_tick(self, deadline: float) -> float:
        """First future sweep-grid tick at or after ``deadline``.

        The grid is the tick sequence the old fixed-interval sweeper
        produced: construction time plus repeated float addition of
        the interval.  Reproducing that accumulation (rather than
        computing ``start + k * interval``) keeps expiry times
        byte-identical to the polling implementation.
        """
        interval = self.expiry_sweep_interval_s
        now = self.env.now
        while self._grid_cursor <= now:
            self._grid_cursor += interval
        tick = self._grid_cursor
        while tick < deadline:
            tick += interval
        return tick

    def _schedule_expiry_wake(self, deadline: float) -> None:
        if self._wake_at is not None and self._wake_at <= deadline:
            return  # the armed wakeup already covers this deadline
        tick = self._next_grid_tick(deadline)
        if self._wake_at is not None and self._wake_at <= tick:
            return
        self._wake_at = tick
        self._wake_gen += 1
        gen = self._wake_gen
        self.env.call_at(tick, self._expiry_wake, gen)

    def _expiry_wake(self, gen: int) -> None:
        if gen != self._wake_gen:
            return  # superseded by an earlier wakeup
        self._wake_at = None
        expired, deadline = self.table.sweep_and_deadline(self.env.now)
        for entry, reason in expired:
            self._notify_removed(entry, reason)
        # Idle-deadline entries may have been touched since this wake
        # was armed (a spurious wake): re-arm at the new earliest
        # possible expiry, if any entry can still expire.
        if deadline is not None:
            self._schedule_expiry_wake(deadline)
