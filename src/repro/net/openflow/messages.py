"""Control-channel messages between switch and controller."""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.net.openflow.actions import Action
from repro.net.openflow.match import FlowMatch
from repro.net.packet import Packet

_xids = itertools.count(1)


def next_xid() -> int:
    return next(_xids)


@dataclasses.dataclass
class PacketIn:
    """Switch → controller: a packet punted to the control plane.

    The full packet accompanies the message (as with OFPCML_NO_BUFFER)
    *and* it stays buffered on the switch under ``buffer_id`` so the
    controller can later release exactly the held packet — this is the
    mechanism behind *on-demand deployment with waiting*.
    """

    datapath_id: int
    buffer_id: int
    packet: Packet
    in_port: int
    reason: str = "no_match"


@dataclasses.dataclass
class FlowMod:
    """Controller → switch: add or delete flow entries."""

    command: str  # "add" | "delete"
    match: FlowMatch | None = None
    actions: _t.Sequence[Action] = ()
    priority: int = 1
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: _t.Any = None
    notify_removal: bool = True
    #: If set on an "add", the buffered packet is run through the new
    #: entry's actions immediately after installation.
    buffer_id: int | None = None
    xid: int = dataclasses.field(default_factory=next_xid)

    def __post_init__(self) -> None:
        if self.command not in ("add", "delete"):
            raise ValueError(f"unknown FlowMod command {self.command!r}")


@dataclasses.dataclass
class PacketOut:
    """Controller → switch: emit a packet through the given actions.

    Either releases a buffered packet (``buffer_id``) or carries a
    controller-crafted packet (``packet``).
    """

    actions: _t.Sequence[Action]
    buffer_id: int | None = None
    packet: Packet | None = None
    in_port: int | None = None
    xid: int = dataclasses.field(default_factory=next_xid)

    def __post_init__(self) -> None:
        if (self.buffer_id is None) == (self.packet is None):
            raise ValueError("exactly one of buffer_id / packet must be given")


@dataclasses.dataclass
class FlowRemoved:
    """Switch → controller: an entry expired or was deleted."""

    datapath_id: int
    match: FlowMatch
    cookie: _t.Any
    reason: str
    priority: int
    packet_count: int


@dataclasses.dataclass
class FlowStatsRequest:
    """Controller → switch: read statistics of matching entries."""

    match: FlowMatch | None = None
    cookie: _t.Any = None
    #: Restrict to cookies with this string prefix (convenience the
    #: edge controller uses to select its redirect flows).
    cookie_prefix: str | None = None
    xid: int = dataclasses.field(default_factory=next_xid)


@dataclasses.dataclass
class FlowStatEntry:
    """One entry's statistics snapshot."""

    match: FlowMatch
    cookie: _t.Any
    priority: int
    packet_count: int
    installed_at: float
    last_used: float


@dataclasses.dataclass
class FlowStatsReply:
    """Switch → controller: the requested statistics."""

    datapath_id: int
    xid: int
    stats: list[FlowStatEntry]


@dataclasses.dataclass
class BarrierRequest:
    """Controller → switch: fence message ordering."""

    xid: int = dataclasses.field(default_factory=next_xid)


@dataclasses.dataclass
class BarrierReply:
    """Switch → controller: all prior messages have been processed."""

    datapath_id: int
    xid: int
