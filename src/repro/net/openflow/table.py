"""Flow entries and the priority-ordered flow table."""

from __future__ import annotations

import itertools
import typing as _t

from repro.net.openflow.actions import Action
from repro.net.openflow.match import FlowMatch
from repro.net.packet import Packet

_entry_ids = itertools.count(1)

#: FlowRemoved reason codes (mirrors OpenFlow).
REASON_IDLE_TIMEOUT = "idle_timeout"
REASON_HARD_TIMEOUT = "hard_timeout"
REASON_DELETE = "delete"


class FlowEntry:
    """One rule: match → actions, with priority and timeouts.

    ``idle_timeout`` / ``hard_timeout`` of 0 mean "never expires", as
    in OpenFlow.  The paper's design keeps switch idle timeouts *low*
    (the controller's FlowMemory re-installs known flows quickly) so
    the table stays small.
    """

    def __init__(
        self,
        match: FlowMatch,
        actions: _t.Sequence[Action],
        priority: int = 1,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: _t.Any = None,
        notify_removal: bool = True,
    ) -> None:
        if idle_timeout < 0 or hard_timeout < 0:
            raise ValueError("timeouts must be >= 0")
        self.entry_id = next(_entry_ids)
        self.match = match
        self.actions = list(actions)
        self.priority = priority
        self.idle_timeout = float(idle_timeout)
        self.hard_timeout = float(hard_timeout)
        self.cookie = cookie
        self.notify_removal = notify_removal
        self.installed_at: float = 0.0
        self.last_used: float = 0.0
        self.packet_count: int = 0

    def touch(self, now: float) -> None:
        self.last_used = now
        self.packet_count += 1

    def expired(self, now: float) -> str | None:
        """Return the expiry reason, or ``None`` if still live."""
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return REASON_HARD_TIMEOUT
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return REASON_IDLE_TIMEOUT
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        acts = ", ".join(str(a) for a in self.actions)
        return f"<FlowEntry #{self.entry_id} p{self.priority} {self.match} -> [{acts}]>"


class FlowTable:
    """A single OpenFlow table, ordered by descending priority.

    Insertion order breaks priority ties (first installed wins), which
    keeps lookups deterministic.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> _t.Iterator[FlowEntry]:
        return iter(self._entries)

    def install(self, entry: FlowEntry, now: float) -> None:
        entry.installed_at = now
        entry.last_used = now
        # Stable insert before the first strictly-lower priority.
        index = len(self._entries)
        for i, existing in enumerate(self._entries):
            if existing.priority < entry.priority:
                index = i
                break
        self._entries.insert(index, entry)

    def lookup(self, packet: Packet) -> FlowEntry | None:
        """Highest-priority matching entry, or ``None`` (table miss)."""
        for entry in self._entries:
            if entry.match.matches(packet):
                return entry
        return None

    def remove(self, entry: FlowEntry) -> bool:
        try:
            self._entries.remove(entry)
            return True
        except ValueError:
            return False

    def remove_matching(
        self,
        match: FlowMatch | None = None,
        cookie: _t.Any = None,
        priority: int | None = None,
    ) -> list[FlowEntry]:
        """Remove entries by exact match / cookie / priority filters."""
        removed = []
        kept = []
        for entry in self._entries:
            hit = True
            if match is not None and entry.match != match:
                hit = False
            if cookie is not None and entry.cookie != cookie:
                hit = False
            if priority is not None and entry.priority != priority:
                hit = False
            (removed if hit else kept).append(entry)
        self._entries = kept
        return removed

    def sweep_expired(self, now: float) -> list[tuple[FlowEntry, str]]:
        """Remove and return all expired entries with their reason."""
        expired: list[tuple[FlowEntry, str]] = []
        kept: list[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        self._entries = kept
        return expired
