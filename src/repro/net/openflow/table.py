"""Flow entries and the priority-ordered, hash-indexed flow table."""

from __future__ import annotations

import bisect
import itertools
import typing as _t

from repro.net.openflow.actions import Action
from repro.net.openflow.match import FlowMatch
from repro.net.packet import Packet

_entry_ids = itertools.count(1)

#: FlowRemoved reason codes (mirrors OpenFlow).
REASON_IDLE_TIMEOUT = "idle_timeout"
REASON_HARD_TIMEOUT = "hard_timeout"
REASON_DELETE = "delete"

#: Match fields an index shape can bind, in canonical order.
_SHAPE_FIELDS = ("ip_src", "ip_dst", "tcp_src", "tcp_dst")

#: Per-field packet accessors, matching FlowMatch.matches().
_PACKET_GETTERS: dict[str, _t.Callable[[Packet], _t.Any]] = {
    "ip_src": lambda p: p.ip_src,
    "ip_dst": lambda p: p.ip_dst,
    "tcp_src": lambda p: p.tcp.src_port,
    "tcp_dst": lambda p: p.tcp.dst_port,
}

_shape_key_cache: dict[tuple[str, ...], _t.Callable[[Packet], tuple]] = {}


def _shape_of(match: FlowMatch) -> tuple[str, ...]:
    """The match's bound fields in canonical order (its index shape)."""
    return tuple(f for f in _SHAPE_FIELDS if getattr(match, f) is not None)


def _key_builder_for(shape: tuple[str, ...]) -> _t.Callable[[Packet], tuple]:
    """A closure extracting the shape's packet-field key (unrolled —
    a generic genexpr here costs real time on the per-packet path)."""
    builder = _shape_key_cache.get(shape)
    if builder is not None:
        return builder
    getters = tuple(_PACKET_GETTERS[f] for f in shape)
    if len(getters) == 0:
        builder = lambda p: ()  # noqa: E731
    elif len(getters) == 1:
        (g0,) = getters
        builder = lambda p: (g0(p),)  # noqa: E731
    elif len(getters) == 2:
        g0, g1 = getters
        builder = lambda p: (g0(p), g1(p))  # noqa: E731
    elif len(getters) == 3:
        g0, g1, g2 = getters
        builder = lambda p: (g0(p), g1(p), g2(p))  # noqa: E731
    else:
        g0, g1, g2, g3 = getters
        builder = lambda p: (g0(p), g1(p), g2(p), g3(p))  # noqa: E731
    _shape_key_cache[shape] = builder
    return builder


class FlowEntry:
    """One rule: match → actions, with priority and timeouts.

    ``idle_timeout`` / ``hard_timeout`` of 0 mean "never expires", as
    in OpenFlow.  The paper's design keeps switch idle timeouts *low*
    (the controller's FlowMemory re-installs known flows quickly) so
    the table stays small.
    """

    def __init__(
        self,
        match: FlowMatch,
        actions: _t.Sequence[Action],
        priority: int = 1,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: _t.Any = None,
        notify_removal: bool = True,
    ) -> None:
        if idle_timeout < 0 or hard_timeout < 0:
            raise ValueError("timeouts must be >= 0")
        self.entry_id = next(_entry_ids)
        self.match = match
        self.actions = list(actions)
        self.priority = priority
        self.idle_timeout = float(idle_timeout)
        self.hard_timeout = float(hard_timeout)
        self.cookie = cookie
        self.notify_removal = notify_removal
        self.installed_at: float = 0.0
        self.last_used: float = 0.0
        self.packet_count: int = 0
        #: Table-assigned install order (tie-break within a priority).
        self._order: int = 0

    def touch(self, now: float) -> None:
        self.last_used = now
        self.packet_count += 1

    def expired(self, now: float) -> str | None:
        """Return the expiry reason, or ``None`` if still live."""
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return REASON_HARD_TIMEOUT
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return REASON_IDLE_TIMEOUT
        return None

    def next_deadline(self) -> float | None:
        """Earliest simulated time this entry *could* expire.

        The idle deadline moves forward on every :meth:`touch`, so a
        deadline computed now is a lower bound — the entry is never
        expired before it, but may survive past it.
        """
        deadline: float | None = None
        if self.hard_timeout:
            deadline = self.installed_at + self.hard_timeout
        if self.idle_timeout:
            idle_deadline = self.last_used + self.idle_timeout
            if deadline is None or idle_deadline < deadline:
                deadline = idle_deadline
        return deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        acts = ", ".join(str(a) for a in self.actions)
        return f"<FlowEntry #{self.entry_id} p{self.priority} {self.match} -> [{acts}]>"


class FlowTable:
    """A single OpenFlow table, ordered by descending priority.

    Insertion order breaks priority ties (first installed wins), which
    keeps lookups deterministic.

    Internally the table keeps, besides the priority-ordered master
    list, an exact-match hash index grouped by each match's *shape*
    (its tuple of bound fields): within a shape, the packet's field
    values form a dict key, so the common case — FlowMemory-installed
    exact-tuple redirect rules — resolves in O(1) instead of a linear
    scan.  Matches binding no fields land in the wildcard shape ``()``
    whose single bucket is the fallback list.  Each bucket stays
    sorted by ``(-priority, install order)``; a lookup takes the best
    head across the (few) shapes, which is exactly the entry a linear
    first-match scan of the master list would return.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []
        # shape -> {field-values key -> sorted [(-prio, order, entry)]}
        self._index: dict[tuple[str, ...], dict[tuple, list]] = {}
        # Flat lookup plan: one (key-builder, buckets) pair per live
        # shape, rebuilt only when the shape set changes.
        self._plans: list[tuple[_t.Callable[[Packet], tuple], dict]] = []
        self._order = itertools.count(1)
        #: Largest size the table ever reached (benchmark metric).
        self.peak_size = 0
        #: Invoked with the entry after every install (the switch hooks
        #: this to re-arm its expiry wakeup, covering direct installs
        #: that bypass the FlowMod path).
        self.on_insert: _t.Callable[[FlowEntry], None] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> _t.Iterator[FlowEntry]:
        return iter(self._entries)

    def install(self, entry: FlowEntry, now: float) -> None:
        entry.installed_at = now
        entry.last_used = now
        entry._order = next(self._order)
        # Master list: stable insert before the first strictly-lower
        # priority, found by bisecting on the descending priority key.
        index = bisect.bisect_right(
            self._entries, -entry.priority, key=lambda e: -e.priority
        )
        self._entries.insert(index, entry)
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)
        self._index_add(entry)
        if self.on_insert is not None:
            self.on_insert(entry)

    def lookup(self, packet: Packet) -> FlowEntry | None:
        """Highest-priority matching entry, or ``None`` (table miss)."""
        best_head: tuple | None = None
        for build_key, buckets in self._plans:
            bucket = buckets.get(build_key(packet))
            if bucket:
                head = bucket[0]
                # Install orders are unique, so this tuple comparison
                # decides on (-priority, order) and never reaches the
                # (incomparable) entry element.
                if best_head is None or head < best_head:
                    best_head = head
        return best_head[2] if best_head is not None else None

    def remove(self, entry: FlowEntry) -> bool:
        try:
            self._entries.remove(entry)
        except ValueError:
            return False
        self._index_discard(entry)
        return True

    def remove_matching(
        self,
        match: FlowMatch | None = None,
        cookie: _t.Any = None,
        priority: int | None = None,
    ) -> list[FlowEntry]:
        """Remove entries by exact match / cookie / priority filters.

        At least one filter must be given: an all-``None`` call would
        silently flush the whole table, which is never what a FlowMod
        delete means here — use an explicit loop over ``list(table)``
        to empty a table on purpose.
        """
        if match is None and cookie is None and priority is None:
            raise ValueError(
                "remove_matching() needs at least one filter "
                "(match, cookie, or priority)"
            )
        if match is not None:
            # Exact-match filter: the candidates are exactly the
            # match's index bucket (same shape + same bound values ⇒
            # equal FlowMatch), already in table order — no O(n) scan.
            shape = _shape_of(match)
            buckets = self._index.get(shape)
            bucket = (
                buckets.get(tuple(getattr(match, f) for f in shape))
                if buckets is not None
                else None
            )
            if not bucket:
                return []
            removed = [
                item[2]
                for item in bucket
                if (cookie is None or item[2].cookie == cookie)
                and (priority is None or item[2].priority == priority)
            ]
            for entry in removed:
                self._entries.remove(entry)
                self._index_discard(entry)
            return removed
        removed = []
        kept = []
        for entry in self._entries:
            hit = True
            if cookie is not None and entry.cookie != cookie:
                hit = False
            if priority is not None and entry.priority != priority:
                hit = False
            (removed if hit else kept).append(entry)
        if removed:
            self._entries = kept
            for entry in removed:
                self._index_discard(entry)
        return removed

    def sweep_expired(self, now: float) -> list[tuple[FlowEntry, str]]:
        """Remove and return all expired entries with their reason."""
        expired: list[tuple[FlowEntry, str]] = []
        kept: list[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        if expired:
            self._entries = kept
            for entry, _reason in expired:
                self._index_discard(entry)
        return expired

    def earliest_deadline(self) -> float | None:
        """Soonest possible expiry across all entries (lower bound)."""
        earliest: float | None = None
        for entry in self._entries:
            deadline = entry.next_deadline()
            if deadline is not None and (earliest is None or deadline < earliest):
                earliest = deadline
        return earliest

    # -- index maintenance ----------------------------------------------

    def _index_add(self, entry: FlowEntry) -> None:
        shape = _shape_of(entry.match)
        key = tuple(getattr(entry.match, f) for f in shape)
        buckets = self._index.get(shape)
        if buckets is None:
            buckets = self._index[shape] = {}
            self._plans.append((_key_builder_for(shape), buckets))
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [(-entry.priority, entry._order, entry)]
        else:
            bisect.insort(bucket, (-entry.priority, entry._order, entry))

    def _index_discard(self, entry: FlowEntry) -> None:
        shape = _shape_of(entry.match)
        buckets = self._index.get(shape)
        if buckets is None:
            return
        key = tuple(getattr(entry.match, f) for f in shape)
        bucket = buckets.get(key)
        if bucket is None:
            return
        item = (-entry.priority, entry._order, entry)
        pos = bisect.bisect_left(bucket, item)
        if pos < len(bucket) and bucket[pos][2] is entry:
            del bucket[pos]
            if not bucket:
                del buckets[key]
                if not buckets:
                    del self._index[shape]
                    self._plans = [
                        (b, d) for b, d in self._plans if d is not buckets
                    ]
