"""Flow entries and the priority-ordered, hash-indexed flow table."""

from __future__ import annotations

import bisect
import itertools
import operator
import typing as _t

from repro.net.openflow.actions import Action
from repro.net.openflow.match import FlowMatch
from repro.net.packet import Packet

try:  # numpy is an optional accelerator (present in CI, not required)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the loop path
    _np = None  # type: ignore[assignment]

#: Table size at which the vectorized sweep beats the fused loop; below
#: it, four ``fromiter`` passes cost more than one interpreted pass.
_VECTOR_SWEEP_MIN = 256

_entry_ids = itertools.count(1)

#: FlowRemoved reason codes (mirrors OpenFlow).
REASON_IDLE_TIMEOUT = "idle_timeout"
REASON_HARD_TIMEOUT = "hard_timeout"
REASON_DELETE = "delete"

#: Match fields an index shape can bind, in canonical order.  The
#: order matches the packet's cached ``match_values()`` tuple.
_SHAPE_FIELDS = ("ip_src", "ip_dst", "tcp_src", "tcp_dst")

#: Interned shape table: all 16 possible bound-field combinations,
#: indexed by bitmask over _SHAPE_FIELDS.  ``_shape_of`` returns one
#: of these shared tuples instead of allocating a fresh one per call.
_SHAPES: tuple[tuple[str, ...], ...] = tuple(
    tuple(f for bit, f in enumerate(_SHAPE_FIELDS) if mask >> bit & 1)
    for mask in range(16)
)

#: shape -> C-level getter slicing that shape's key out of a 4-tuple
#: of match values.  Single-field shapes key their buckets by the bare
#: value (no 1-tuple wrapper) — cheaper to build and to hash.
_KEY_GETTERS: dict[tuple[str, ...], _t.Callable[[tuple], _t.Any]] = {}
for _shape in _SHAPES:
    if not _shape:
        _KEY_GETTERS[_shape] = lambda mv: ()
    else:
        _KEY_GETTERS[_shape] = operator.itemgetter(
            *(_SHAPE_FIELDS.index(f) for f in _shape)
        )
del _shape


def _shape_of(match: FlowMatch) -> tuple[str, ...]:
    """The match's bound fields in canonical order (its index shape)."""
    return _SHAPES[
        (match.ip_src is not None)
        | (match.ip_dst is not None) << 1
        | (match.tcp_src is not None) << 2
        | (match.tcp_dst is not None) << 3
    ]


def _match_values(match: FlowMatch) -> tuple:
    """The match's field values in ``match_values()`` order."""
    return (match.ip_src, match.ip_dst, match.tcp_src, match.tcp_dst)


class FlowEntry:
    """One rule: match → actions, with priority and timeouts.

    ``idle_timeout`` / ``hard_timeout`` of 0 mean "never expires", as
    in OpenFlow.  The paper's design keeps switch idle timeouts *low*
    (the controller's FlowMemory re-installs known flows quickly) so
    the table stays small.
    """

    __slots__ = (
        "entry_id",
        "match",
        "actions",
        "priority",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "notify_removal",
        "installed_at",
        "last_used",
        "packet_count",
        "_order",
        "_compiled",
    )

    def __init__(
        self,
        match: FlowMatch,
        actions: _t.Sequence[Action],
        priority: int = 1,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: _t.Any = None,
        notify_removal: bool = True,
    ) -> None:
        if idle_timeout < 0 or hard_timeout < 0:
            raise ValueError("timeouts must be >= 0")
        self.entry_id = next(_entry_ids)
        self.match = match
        self.actions = list(actions)
        self.priority = priority
        self.idle_timeout = float(idle_timeout)
        self.hard_timeout = float(hard_timeout)
        self.cookie = cookie
        self.notify_removal = notify_removal
        self.installed_at: float = 0.0
        self.last_used: float = 0.0
        self.packet_count: int = 0
        #: Table-assigned install order (tie-break within a priority).
        self._order: int = 0
        #: Fast-path compilation cache: ``False`` until first asked,
        #: then ``compile_rewrites(actions)``'s result.  Valid because
        #: an entry's action program is never mutated after install —
        #: FlowMod modify is delete + add of a *new* entry here.
        self._compiled: _t.Any = False

    def touch(self, now: float) -> None:
        self.last_used = now
        self.packet_count += 1

    def expired(self, now: float) -> str | None:
        """Return the expiry reason, or ``None`` if still live."""
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return REASON_HARD_TIMEOUT
        if self.idle_timeout and now - self.last_used >= self.idle_timeout:
            return REASON_IDLE_TIMEOUT
        return None

    def next_deadline(self) -> float | None:
        """Earliest simulated time this entry *could* expire.

        The idle deadline moves forward on every :meth:`touch`, so a
        deadline computed now is a lower bound — the entry is never
        expired before it, but may survive past it.
        """
        deadline: float | None = None
        if self.hard_timeout:
            deadline = self.installed_at + self.hard_timeout
        if self.idle_timeout:
            idle_deadline = self.last_used + self.idle_timeout
            if deadline is None or idle_deadline < deadline:
                deadline = idle_deadline
        return deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        acts = ", ".join(str(a) for a in self.actions)
        return f"<FlowEntry #{self.entry_id} p{self.priority} {self.match} -> [{acts}]>"


class FlowTable:
    """A single OpenFlow table, ordered by descending priority.

    Insertion order breaks priority ties (first installed wins), which
    keeps lookups deterministic.

    Internally the table keeps, besides the priority-ordered master
    list, an exact-match hash index grouped by each match's *shape*
    (its tuple of bound fields): within a shape, the packet's field
    values form a dict key, so the common case — FlowMemory-installed
    exact-tuple redirect rules — resolves in O(1) instead of a linear
    scan.  Matches binding no fields land in the wildcard shape ``()``
    whose single bucket is the fallback list.  Each bucket stays
    sorted by ``(-priority, install order)``; a lookup takes the best
    head across the (few) shapes, which is exactly the entry a linear
    first-match scan of the master list would return.

    Lookup keys are sliced out of the packet's cached
    :meth:`~repro.net.packet.Packet.match_values` tuple with interned
    per-shape ``itemgetter`` objects — the key is built in C from a
    tuple computed once per packet, not rebuilt field-by-field at
    every hop.  A cookie-keyed side index makes FlowMod deletes by
    cookie (the controller's teardown path) independent of table size.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []
        #: Mutation counter: bumped on every install and every removal
        #: (FlowMod delete, idle/hard-timeout sweep, direct remove).
        #: The data plane's route cache records the epoch a traversal
        #: was recorded under; equality at replay time proves the table
        #: has not changed since, so the memoized lookup result is
        #: still exactly what a fresh lookup would return.
        self.epoch = 0
        # shape -> {field-values key -> sorted [(-prio, order, entry)]}
        self._index: dict[tuple[str, ...], dict[_t.Any, list]] = {}
        # Flat lookup plan: one (key-getter, buckets) pair per live
        # shape, rebuilt only when the shape set changes.
        self._plans: list[tuple[_t.Callable[[tuple], _t.Any], dict]] = []
        # cookie -> live entries carrying it (deletes by cookie are
        # the controller's redirect-teardown hot path).
        self._by_cookie: dict[_t.Any, list[FlowEntry]] = {}
        self._order = itertools.count(1)
        #: Largest size the table ever reached (benchmark metric).
        self.peak_size = 0
        #: Invoked with the entry after every install (the switch hooks
        #: this to re-arm its expiry wakeup, covering direct installs
        #: that bypass the FlowMod path).
        self.on_insert: _t.Callable[[FlowEntry], None] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> _t.Iterator[FlowEntry]:
        return iter(self._entries)

    def install(self, entry: FlowEntry, now: float) -> None:
        self.epoch += 1
        entry.installed_at = now
        entry.last_used = now
        entry._order = next(self._order)
        # Master list: stable insert before the first strictly-lower
        # priority.  Tables overwhelmingly install at one uniform
        # priority, so the tail append is the common case and skips the
        # bisect whose key lambda fires O(log n) times per install.
        entries = self._entries
        if not entries or entries[-1].priority >= entry.priority:
            entries.append(entry)
        else:
            index = bisect.bisect_right(
                entries, -entry.priority, key=lambda e: -e.priority
            )
            entries.insert(index, entry)
        if len(entries) > self.peak_size:
            self.peak_size = len(entries)
        self._index_add(entry)
        if self.on_insert is not None:
            self.on_insert(entry)

    def lookup(self, packet: Packet) -> FlowEntry | None:
        """Highest-priority matching entry, or ``None`` (table miss)."""
        mv = packet.match_values()
        best_head: tuple | None = None
        for get_key, buckets in self._plans:
            bucket = buckets.get(get_key(mv))
            if bucket:
                head = bucket[0]
                # Install orders are unique, so this tuple comparison
                # decides on (-priority, order) and never reaches the
                # (incomparable) entry element.
                if best_head is None or head < best_head:
                    best_head = head
        return best_head[2] if best_head is not None else None

    def remove(self, entry: FlowEntry) -> bool:
        try:
            self._entries.remove(entry)
        except ValueError:
            return False
        self.epoch += 1
        self._index_discard(entry)
        return True

    def clear(self) -> None:
        """Drop every entry at once (switch power-cycle).

        No FlowRemoved notifications fire — a dead switch cannot
        notify — and the epoch bumps exactly once so memoized routes
        through this table revalidate on their next packet.
        """
        self.epoch += 1
        self._entries.clear()
        self._index.clear()
        self._plans.clear()
        self._by_cookie.clear()

    def remove_matching(
        self,
        match: FlowMatch | None = None,
        cookie: _t.Any = None,
        priority: int | None = None,
    ) -> list[FlowEntry]:
        """Remove entries by exact match / cookie / priority filters.

        At least one filter must be given: an all-``None`` call would
        silently flush the whole table, which is never what a FlowMod
        delete means here — use an explicit loop over ``list(table)``
        to empty a table on purpose.
        """
        if match is None and cookie is None and priority is None:
            raise ValueError(
                "remove_matching() needs at least one filter "
                "(match, cookie, or priority)"
            )
        if match is not None:
            # Exact-match filter: the candidates are exactly the
            # match's index bucket (same shape + same bound values ⇒
            # equal FlowMatch), already in table order — no O(n) scan.
            shape = _shape_of(match)
            buckets = self._index.get(shape)
            bucket = (
                buckets.get(_KEY_GETTERS[shape](_match_values(match)))
                if buckets is not None
                else None
            )
            if not bucket:
                return []
            removed = [
                item[2]
                for item in bucket
                if (cookie is None or item[2].cookie == cookie)
                and (priority is None or item[2].priority == priority)
            ]
            self._bulk_remove(removed)
            return removed
        if cookie is not None:
            # Cookie filter: candidates come from the cookie index,
            # re-sorted into master-table order so callers see the
            # same removal order a linear scan produced.
            candidates = self._by_cookie.get(cookie)
            if not candidates:
                return []
            removed = [
                entry
                for entry in candidates
                if priority is None or entry.priority == priority
            ]
            removed.sort(key=lambda e: (-e.priority, e._order))
            self._bulk_remove(removed)
            return removed
        removed = [e for e in self._entries if e.priority == priority]
        self._bulk_remove(removed)
        return removed

    def _bulk_remove(self, removed: list[FlowEntry]) -> None:
        if not removed:
            return
        self.epoch += 1
        if len(removed) == 1:
            self._entries.remove(removed[0])
        else:
            dead = set(removed)
            self._entries = [e for e in self._entries if e not in dead]
        for entry in removed:
            self._index_discard(entry)

    def sweep_expired(self, now: float) -> list[tuple[FlowEntry, str]]:
        """Remove and return all expired entries with their reason."""
        expired: list[tuple[FlowEntry, str]] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is not None:
                expired.append((entry, reason))
        if expired:
            # Rebuild the master list only when something actually
            # expired — most deadline wakes find nothing to do.
            self._bulk_remove([entry for entry, _reason in expired])
        return expired

    def sweep_and_deadline(self, now: float) -> tuple[list, float | None]:
        """One-pass :meth:`sweep_expired` + :meth:`earliest_deadline`.

        The deadline-driven expiry wake needs both — what expired, and
        when the next survivor *could* expire — and with low idle
        timeouts the table is scanned at every sweep-grid tick, so the
        two passes (plus two method calls per entry) are fused into a
        single loop over inlined timeout arithmetic.  Returns
        ``(expired, earliest)`` where ``expired`` is the
        :meth:`sweep_expired` list and ``earliest`` the surviving
        entries' earliest possible expiry (or ``None``).

        Large tables take a numpy-vectorized path (gathered timeout
        columns, C-level comparisons) that is bit-identical to the
        loop: same hard-before-idle reason priority, same master-list
        expiry order, and float64 arithmetic matching Python floats
        exactly — so which path runs (a function of table size alone,
        itself deterministic) can never change a latency trace.
        """
        if _np is not None and len(self._entries) >= _VECTOR_SWEEP_MIN:
            return self._sweep_vectorized(now)
        expired: list[tuple[FlowEntry, str]] = []
        earliest: float | None = None
        for entry in self._entries:
            hard = entry.hard_timeout
            if hard:
                if now - entry.installed_at >= hard:
                    expired.append((entry, REASON_HARD_TIMEOUT))
                    continue
                deadline = entry.installed_at + hard
            else:
                deadline = None
            idle = entry.idle_timeout
            if idle:
                if now - entry.last_used >= idle:
                    expired.append((entry, REASON_IDLE_TIMEOUT))
                    continue
                idle_deadline = entry.last_used + idle
                if deadline is None or idle_deadline < deadline:
                    deadline = idle_deadline
            if deadline is not None and (earliest is None or deadline < earliest):
                earliest = deadline
        if expired:
            self._bulk_remove([entry for entry, _reason in expired])
        return expired, earliest

    def _sweep_vectorized(self, now: float) -> tuple[list, float | None]:
        """Column-at-a-time :meth:`sweep_and_deadline` for big tables."""
        np = _t.cast(_t.Any, _np)
        entries = self._entries
        n = len(entries)
        # map+attrgetter keeps the per-entry gather in C; a genexpr
        # here costs a frame resume per element per column.
        installed = np.fromiter(
            map(operator.attrgetter("installed_at"), entries), np.float64, n
        )
        last = np.fromiter(
            map(operator.attrgetter("last_used"), entries), np.float64, n
        )
        hard = np.fromiter(
            map(operator.attrgetter("hard_timeout"), entries), np.float64, n
        )
        idle = np.fromiter(
            map(operator.attrgetter("idle_timeout"), entries), np.float64, n
        )
        has_hard = hard > 0.0
        has_idle = idle > 0.0
        # Hard timeout wins when both fired — same reason priority as
        # the loop's hard-first ``continue``.
        hard_hit = has_hard & (now - installed >= hard)
        idle_hit = ~hard_hit & has_idle & (now - last >= idle)
        dead = hard_hit | idle_hit
        deadline = np.where(has_hard, installed + hard, np.inf)
        np.minimum(
            deadline, np.where(has_idle, last + idle, np.inf), out=deadline
        )
        deadline[dead] = np.inf
        earliest_v = deadline.min()
        earliest = float(earliest_v) if earliest_v != np.inf else None
        if not dead.any():
            return [], earliest
        expired = [
            (
                entries[i],
                REASON_HARD_TIMEOUT if hard_hit[i] else REASON_IDLE_TIMEOUT,
            )
            for i in np.flatnonzero(dead)
        ]
        self._bulk_remove([entry for entry, _reason in expired])
        return expired, earliest

    def earliest_deadline(self) -> float | None:
        """Soonest possible expiry across all entries (lower bound)."""
        earliest: float | None = None
        for entry in self._entries:
            deadline = entry.next_deadline()
            if deadline is not None and (earliest is None or deadline < earliest):
                earliest = deadline
        return earliest

    # -- index maintenance ----------------------------------------------

    def _index_add(self, entry: FlowEntry) -> None:
        shape = _shape_of(entry.match)
        key = _KEY_GETTERS[shape](_match_values(entry.match))
        buckets = self._index.get(shape)
        if buckets is None:
            buckets = self._index[shape] = {}
            self._plans.append((_KEY_GETTERS[shape], buckets))
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [(-entry.priority, entry._order, entry)]
        else:
            bisect.insort(bucket, (-entry.priority, entry._order, entry))
        if entry.cookie is not None:
            holders = self._by_cookie.get(entry.cookie)
            if holders is None:
                self._by_cookie[entry.cookie] = [entry]
            else:
                holders.append(entry)

    def _index_discard(self, entry: FlowEntry) -> None:
        shape = _shape_of(entry.match)
        buckets = self._index.get(shape)
        if buckets is not None:
            key = _KEY_GETTERS[shape](_match_values(entry.match))
            bucket = buckets.get(key)
            if bucket is not None:
                item = (-entry.priority, entry._order, entry)
                pos = bisect.bisect_left(bucket, item)
                if pos < len(bucket) and bucket[pos][2] is entry:
                    del bucket[pos]
                    if not bucket:
                        del buckets[key]
                        if not buckets:
                            del self._index[shape]
                            self._plans = [
                                (g, d) for g, d in self._plans if d is not buckets
                            ]
        if entry.cookie is not None:
            holders = self._by_cookie.get(entry.cookie)
            if holders is not None:
                try:
                    holders.remove(entry)
                except ValueError:
                    pass
                else:
                    if not holders:
                        del self._by_cookie[entry.cookie]
