"""OpenFlow actions.

Actions are applied in list order; *set-field* rewrites happen before
a subsequent *output*, which is how the transparent redirection
rewrites the destination (client → edge) and the source (edge →
client) addresses.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import Packet

#: Fields a :class:`SetField` action may rewrite.
REWRITABLE_FIELDS = frozenset(
    {"eth_src", "eth_dst", "ip_src", "ip_dst", "tcp_src", "tcp_dst"}
)


class Action:
    """Base class; concrete actions are plain frozen dataclasses."""


@dataclasses.dataclass(frozen=True)
class Output(Action):
    """Forward the packet out of a switch port."""

    port: int

    def __str__(self) -> str:
        return f"output:{self.port}"


@dataclasses.dataclass(frozen=True)
class SetField(Action):
    """Rewrite one header field.

    The field/value pair is validated once at construction; ``apply``
    is then a bare in-place assignment — no type checks, no
    replacement-segment allocation — because it runs once per rewrite
    action per switch hop, the hottest write in the data plane.
    """

    field: str
    value: _t.Any

    def __post_init__(self) -> None:
        if self.field not in REWRITABLE_FIELDS:
            raise ValueError(f"cannot rewrite field {self.field!r}")
        if self.field in ("eth_src", "eth_dst"):
            if not isinstance(self.value, MACAddress):
                raise TypeError(f"{self.field} needs a MACAddress")
        elif self.field in ("ip_src", "ip_dst"):
            if not isinstance(self.value, IPv4Address):
                raise TypeError(f"{self.field} needs an IPv4Address")
        else:  # tcp_src / tcp_dst
            # Normalise once so apply() can assign without int().
            object.__setattr__(self, "value", int(self.value))

    def apply(self, packet: Packet) -> None:
        field = self.field
        if field == "ip_dst":
            packet.ip_dst = self.value
        elif field == "ip_src":
            packet.ip_src = self.value
        elif field == "tcp_dst":
            packet.tcp.dst_port = self.value
        elif field == "tcp_src":
            packet.tcp.src_port = self.value
        elif field == "eth_src":
            packet.eth_src = self.value
            return  # MAC rewrites don't touch the match key
        else:
            packet.eth_dst = self.value
            return
        packet._mk = None  # invalidate the cached match-key tuple

    def __str__(self) -> str:
        return f"set_field:{self.field}={self.value}"


@dataclasses.dataclass(frozen=True)
class ToController(Action):
    """Punt the packet to the controller (buffered packet-in)."""

    def __str__(self) -> str:
        return "controller"


@dataclasses.dataclass(frozen=True)
class Drop(Action):
    """Discard the packet."""

    def __str__(self) -> str:
        return "drop"
