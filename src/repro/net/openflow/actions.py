"""OpenFlow actions.

Actions are applied in list order; *set-field* rewrites happen before
a subsequent *output*, which is how the transparent redirection
rewrites the destination (client → edge) and the source (edge →
client) addresses.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.packet import Packet, TCPSegment

#: Fields a :class:`SetField` action may rewrite.
REWRITABLE_FIELDS = frozenset(
    {"eth_src", "eth_dst", "ip_src", "ip_dst", "tcp_src", "tcp_dst"}
)


class Action:
    """Base class; concrete actions are plain frozen dataclasses."""


@dataclasses.dataclass(frozen=True)
class Output(Action):
    """Forward the packet out of a switch port."""

    port: int

    def __str__(self) -> str:
        return f"output:{self.port}"


@dataclasses.dataclass(frozen=True)
class SetField(Action):
    """Rewrite one header field."""

    field: str
    value: _t.Any

    def __post_init__(self) -> None:
        if self.field not in REWRITABLE_FIELDS:
            raise ValueError(f"cannot rewrite field {self.field!r}")

    def apply(self, packet: Packet) -> None:
        if self.field in ("eth_src", "eth_dst"):
            if not isinstance(self.value, MACAddress):
                raise TypeError(f"{self.field} needs a MACAddress")
            setattr(packet, self.field, self.value)
        elif self.field in ("ip_src", "ip_dst"):
            if not isinstance(self.value, IPv4Address):
                raise TypeError(f"{self.field} needs an IPv4Address")
            setattr(packet, self.field, self.value)
        else:  # tcp_src / tcp_dst
            seg = packet.tcp
            # Direct construction: dataclasses.replace() is too slow
            # for the per-packet redirect path.
            if self.field == "tcp_src":
                src_port, dst_port = int(self.value), seg.dst_port
            else:
                src_port, dst_port = seg.src_port, int(self.value)
            packet.tcp = TCPSegment(
                src_port=src_port,
                dst_port=dst_port,
                flags=seg.flags,
                payload_bytes=seg.payload_bytes,
                payload=seg.payload,
                conn_id=seg.conn_id,
            )

    def __str__(self) -> str:
        return f"set_field:{self.field}={self.value}"


@dataclasses.dataclass(frozen=True)
class ToController(Action):
    """Punt the packet to the controller (buffered packet-in)."""

    def __str__(self) -> str:
        return "controller"


@dataclasses.dataclass(frozen=True)
class Drop(Action):
    """Discard the packet."""

    def __str__(self) -> str:
        return "drop"
