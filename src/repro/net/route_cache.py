"""Established-flow fast path: epoch-guarded route memoization.

The paper's premise is that only the *first* packet of a flow involves
the controller — once flow rules are installed, steady-state traffic is
pure data plane.  This module lets the simulator exploit that: the
first packet of a connection *records* its traversal (the ordered
(switch, matched entry, rewrites, egress interface) hops), and
subsequent packets of the same connection *replay* the recording — one
fused scheduled callback per hop instead of the full
receive → pipeline-event → lookup → action-dispatch → output chain.

Correctness rests on **epoch counters**.  Every :class:`FlowTable`
bumps ``epoch`` on any mutation (install, FlowMod delete, idle/hard
timeout sweep) and every :class:`Link` bumps ``epoch`` on any
bandwidth/latency/down change.  Each recorded hop stores the epochs it
was recorded under; at replay time equality proves nothing changed, so
the memoized lookup result is exactly what a fresh lookup would return.
Any mismatch invalidates the whole route and drops the packet back
onto the slow path — which, when the sending host next builds a packet
for that connection, re-records.

The replayed hop reproduces every observable side effect of the slow
path — switch rx/tx counters, flow-entry ``last_used``/``packet_count``
refresh (which feeds switch idle timeouts and, transitively,
FlowMemory's scale-down), per-link busy/serialization ordering, and
the exact float arithmetic of the delay chain — so replay is
byte-identical to the cold path (see DESIGN.md, fast-path section).
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.device import NetworkInterface
    from repro.net.link import Link, LinkEndpoint
    from repro.net.openflow.switch import Switch
    from repro.net.openflow.table import FlowEntry

#: Per-host route-cache size cap.  Connections normally remove their
#: route on close, so the cap only matters for pathological workloads
#: that abandon connections; clearing wholesale keeps the cache a
#: plain dict with zero bookkeeping on the hit path.
ROUTE_CACHE_MAX = 1024

#: Rewrite slots: recorded SetField actions are compiled to
#: (slot, value) pairs applied by ``Switch._fast_hop`` without
#: re-dispatching on action type.
SLOT_IP_SRC = 0
SLOT_IP_DST = 1
SLOT_TCP_SRC = 2
SLOT_TCP_DST = 3
SLOT_ETH_SRC = 4
SLOT_ETH_DST = 5

_FIELD_SLOTS = {
    "ip_src": SLOT_IP_SRC,
    "ip_dst": SLOT_IP_DST,
    "tcp_src": SLOT_TCP_SRC,
    "tcp_dst": SLOT_TCP_DST,
    "eth_src": SLOT_ETH_SRC,
    "eth_dst": SLOT_ETH_DST,
}


class RouteHop:
    """One memoized switch traversal.

    Stores everything ``Switch._fast_hop`` needs to reproduce the slow
    path's effects for this hop — the matched entry (for the
    ``last_used`` refresh), the compiled rewrites, the egress interface
    — plus the epoch guards: the flow table's epoch at lookup time and
    the ingress link's epoch at recording time.  ``src_ep`` is the
    *sending* endpoint of the ingress link (the one whose
    end-of-serialization callback performs the fused dispatch).
    """

    __slots__ = (
        "switch",
        "in_port",
        "entry",
        "table_epoch",
        "src_ep",
        "in_epoch",
        "out_iface",
        "out_ep",
        "out_link",
        "out_epoch",
        "rewrites",
        "mk_after",
        "route",
        "next",
        "fire",
    )

    def __init__(
        self,
        switch: "Switch",
        in_port: int,
        entry: "FlowEntry",
        table_epoch: int,
        src_ep: "LinkEndpoint",
        in_epoch: int,
        out_iface: "NetworkInterface",
        rewrites: tuple,
        mk_after: tuple,
    ) -> None:
        self.switch = switch
        self.in_port = in_port
        self.entry = entry
        self.table_epoch = table_epoch
        self.src_ep = src_ep
        self.in_epoch = in_epoch
        self.out_iface = out_iface
        self.out_ep = out_iface.endpoint
        self.out_link = self.out_ep.link if self.out_ep is not None else None
        self.out_epoch = self.out_link.epoch if self.out_link is not None else 0
        self.rewrites = rewrites
        self.mk_after = mk_after
        self.route: "Route | None" = None  # back-ref, set by Route
        self.next: "RouteHop | None" = None
        #: Pre-bound replay callback so the fused heap entry carries a
        #: bound method, not a per-dispatch closure.
        self.fire = switch._fast_hop


class Route:
    """A complete memoized traversal for one connection direction.

    ``mk`` is the match-key tuple the route was recorded for; the host
    re-checks it on every send (a handful of identity comparisons)
    because NAT-style rewrites mean the same connection id can appear
    with different header tuples during setup.
    """

    __slots__ = ("mk", "first", "owner", "key", "valid")

    def __init__(
        self,
        mk: tuple,
        hops: list[RouteHop],
        owner: dict,
        key: int,
    ) -> None:
        self.mk = mk
        self.first = hops[0]
        self.owner = owner
        self.key = key
        self.valid = True
        for i, hop in enumerate(hops):
            hop.route = self
            if i + 1 < len(hops):
                hop.next = hops[i + 1]

    def invalidate(self) -> None:
        """Drop this route from its host's cache (idempotent)."""
        if not self.valid:
            return
        self.valid = False
        if self.owner.get(self.key) is self:
            del self.owner[self.key]
        # Break the route → hop → route reference cycle so dead routes
        # are reclaimed by plain refcounting the moment the last
        # in-flight packet drops its hop, instead of lingering until a
        # cyclic-gc pass (Environment.run raises the gen-0 threshold,
        # so such passes are rare by design).  ``first`` is only read
        # when attaching a replay on send, and sends only see routes
        # still present in the cache dict.
        self.first = None


class Recording:
    """In-flight traversal recording carried by a slow-path packet.

    Created by the sending host on a cache miss, appended to by each
    switch the packet traverses, and finalized (installed into the
    host's cache) by the *receiving* host.  Any hop the fast path
    cannot replay exactly — a table miss (controller punt), a non-
    SetField/Output action program, an output onto an unattached
    interface — aborts the recording by clearing ``packet._fp_rec``.
    """

    __slots__ = ("owner", "key", "mk", "hops")

    def __init__(self, owner: dict, key: int, mk: tuple) -> None:
        self.owner = owner
        self.key = key
        self.mk = mk
        self.hops: list[RouteHop] = []

    def finalize(self) -> None:
        """Install the recorded route into the originating host's cache."""
        if not self.hops:
            return
        owner = self.owner
        if len(owner) >= ROUTE_CACHE_MAX:
            for route in owner.values():
                route.valid = False
                route.first = None  # break the cycle (see invalidate)
            owner.clear()
        else:
            old = owner.get(self.key)
            if old is not None:
                # Re-recording replaced a live route (e.g. the ACK and
                # the request payload of one connection both recorded):
                # flag it dead and break its cycle too.
                old.valid = False
                old.first = None
        owner[self.key] = Route(self.mk, self.hops, owner, self.key)


def compile_rewrites(actions: tuple) -> tuple | None:
    """Compile an action program to fast-path form, or ``None``.

    Returns ``(rewrites, out_port)`` when the program is a sequence of
    SetField actions followed by exactly one trailing Output — the only
    shape the replayer supports — and ``None`` otherwise (ToController,
    Drop, multi-output, or Output not in final position all disqualify
    the program).
    """
    from repro.net.openflow.actions import Output, SetField

    if not actions or type(actions[-1]) is not Output:
        return None
    rewrites = []
    for action in actions[:-1]:
        if type(action) is not SetField:
            return None
        rewrites.append((_FIELD_SLOTS[action.field], action.value))
    return tuple(rewrites), actions[-1].port
