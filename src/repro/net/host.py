"""Hosts: endpoints with a TCP-handshake + HTTP request model.

The connection model captures exactly what the paper's *timecurl*
measurement observes:

* ``connect`` performs a SYN / SYN-ACK / ACK exchange across the real
  (simulated) network path — so a packet-in detour to the SDN
  controller, or a held first packet during on-demand deployment,
  delays it accordingly;
* a SYN to a **closed** port is answered with RST (connection refused)
  — the reason the paper's controller polls the service port before
  installing flows;
* requests and responses travel as payload bursts whose serialization
  time reflects their size.

``time_total`` = connect + request transfer + server handling +
response transfer, matching Curl's definition used in the paper.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.device import NetDevice, NetworkInterface
from repro.net.packet import (
    HTTPRequest,
    HTTPResponse,
    Packet,
    TCPFlags,
    TCPSegment,
)
from repro.net.route_cache import Recording
from repro.sim import Environment, Store
from repro.sim.events import guard_timeout
from repro.sim.process import Process

_conn_ids = itertools.count(1)

#: First ephemeral source port handed out by hosts.
EPHEMERAL_BASE = 32768

# Flag combinations and raw bit values, precomputed once: enum.Flag's
# ``|`` and ``&`` allocate a fresh member per operation, which is
# measurable at one ``receive()`` per packet — the demux below tests
# raw ints instead.
_PSH_ACK = TCPFlags.PSH | TCPFlags.ACK
_SYN_ACK = TCPFlags.SYN | TCPFlags.ACK
_RST_BIT = TCPFlags.RST.value
_SYN_BIT = TCPFlags.SYN.value
_SYN_ACK_BITS = _SYN_ACK.value

# L2 resolution is not modelled (see DESIGN.md §2): every packet is
# "broadcast" at the Ethernet layer and switches match on L3/L4 only.
# One shared address object instead of a fresh (validated) dataclass
# instance per transmitted packet.
_BROADCAST_MAC = MACAddress(0xFFFFFFFFFFFF)


class ConnectionRefused(Exception):
    """SYN answered by RST: no listener on the destination port."""


class ConnectionTimeout(Exception):
    """The peer did not answer within the caller's deadline."""


class ConnectionReset(Exception):
    """The established connection was torn down by the peer."""


class HTTPResult(_t.NamedTuple):
    """Outcome of :meth:`Host.http_request` (all times in seconds)."""

    response: HTTPResponse
    time_total: float
    time_connect: float


class Listener:
    """A listening TCP port bound to an application handler."""

    def __init__(self, port: int, app: "Application") -> None:
        self.port = port
        self.app = app


class Application(_t.Protocol):
    """Server-side request handler protocol.

    ``handle`` is a generator (it may yield timeouts to model
    processing latency) returning the :class:`HTTPResponse`.
    """

    def handle(
        self, request: HTTPRequest
    ) -> _t.Generator[_t.Any, _t.Any, HTTPResponse]: ...


class Connection:
    """One endpoint of an established TCP connection.

    Slotted, with a lazily created inbound queue: connections are
    allocated twice per request (client and server side), and the
    server side of the HTTP exchange never reads ``incoming`` — its
    requests dispatch straight to the application handler — so the
    Store (and its three internal lists) is only built on first use.
    """

    __slots__ = (
        "host",
        "env",
        "conn_id",
        "local_ip",
        "local_port",
        "remote_ip",
        "remote_port",
        "_incoming",
        "established",
        "last_seen_remote_ip",
    )

    def __init__(
        self,
        host: "Host",
        conn_id: int,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        local_ip: IPv4Address | None = None,
    ) -> None:
        self.host = host
        self.env = host.env
        self.conn_id = conn_id
        #: The IP this endpoint speaks as.  Normally the host's own
        #: address; the cloud host answers from each service's address.
        self.local_ip = local_ip if local_ip is not None else host.ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self._incoming: Store | None = None
        self.established = True
        #: Source IP of the most recent packet received — tests use it
        #: to assert transparency (the client must only ever see the
        #: service's cloud address).
        self.last_seen_remote_ip: IPv4Address | None = None

    @property
    def incoming(self) -> Store:
        """Inbound payload queue, created on first access."""
        store = self._incoming
        if store is None:
            store = self._incoming = Store(self.env)
        return store

    def send_payload(self, payload: _t.Any, payload_bytes: int) -> None:
        """Transmit an application payload burst to the peer."""
        if not self.established:
            raise ConnectionReset(f"connection {self.conn_id} is closed")
        self.host._send_segment(
            self.remote_ip,
            TCPSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                flags=_PSH_ACK,
                payload_bytes=payload_bytes,
                payload=payload,
                conn_id=self.conn_id,
            ),
            src_ip=self.local_ip,
        )

    def recv(self, timeout: float | None = None):
        """Wait for the next payload (generator; raises on timeout/reset)."""
        get_ev = self.incoming.get()
        if timeout is None:
            item = yield get_ev
        else:
            deadline = self.env.deadline(timeout)
            guard_timeout(
                deadline,
                get_ev,
                ConnectionTimeout,
                "no data on connection ",
                self.conn_id,
                " within ",
                timeout,
                "s",
            )
            item = yield get_ev
            deadline.cancel()
        if isinstance(item, ConnectionReset):
            raise item
        return item

    def close(self) -> None:
        """Tear down this endpoint (no FIN exchange is modelled)."""
        self.established = False
        self.host._connections.pop(self.conn_id, None)
        route = self.host._routes.pop(self.conn_id, None)
        if route is not None:
            # Already popped; invalidate() just flags it dead and
            # breaks the route → hop → route cycle for refcounting.
            route.invalidate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Connection #{self.conn_id} {self.host.name}:{self.local_port}"
            f" <-> {self.remote_ip}:{self.remote_port}>"
        )


class Host(NetDevice):
    """An end host: client device, edge server, or cloud server."""

    def __init__(
        self,
        env: Environment,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
    ) -> None:
        super().__init__(env, name)
        self.iface = self.add_interface(mac, ip)
        self.ip = ip
        self._listeners: dict[int, Listener] = {}
        self._connections: dict[int, Connection] = {}
        #: Handshake waiters keyed by conn_id -> event fired with the
        #: SYN-ACK (or failed with ConnectionRefused).
        self._pending: dict[int, _t.Any] = {}
        #: Conntrack view of half-open outbound handshakes:
        #: conn_id -> (src_port, dst_ip, dst_port).  Registered before
        #: the SYN leaves, so a snapshot taken at any instant covers
        #: every connection that may already have segments in flight —
        #: the make-before-break flip derives its per-connection drain
        #: rules from this plus ``_connections``.
        self._half_open: dict[int, tuple[int, IPv4Address, int]] = {}
        #: Readiness subscriptions: port -> events fired on open_port.
        self._port_waiters: dict[int, list[_t.Any]] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        #: Established-flow route cache: conn_id -> memoized traversal
        #: (see ``repro.net.route_cache``).  Entries leave on
        #: connection close or epoch-guard invalidation.
        self._routes: dict[int, _t.Any] = {}

    # -- listener management ------------------------------------------------

    def open_port(self, port: int, app: "Application") -> None:
        """Start accepting connections on ``port``."""
        if port in self._listeners:
            raise ValueError(f"{self.name}: port {port} is already open")
        self._listeners[port] = Listener(port, app)
        waiters = self._port_waiters.pop(port, None)
        if waiters:
            for event in waiters:
                if not event.triggered:
                    event.succeed(port)

    def close_port(self, port: int) -> None:
        """Stop accepting connections on ``port``."""
        self._listeners.pop(port, None)

    def swap_app(self, port: int, app: "Application") -> "Application":
        """Replace the application behind an open port, returning the
        previous one.  The listener (and every in-flight handshake to
        it) is untouched — this is how the migration layer slips a
        freeze gate in front of an instance without a connectivity
        blip."""
        listener = self._listeners.get(port)
        if listener is None:
            raise ValueError(f"{self.name}: port {port} is not open")
        previous = listener.app
        listener.app = app
        return previous

    def tracked_ports(
        self, dst_ip: IPv4Address, dst_port: int
    ) -> tuple[int, ...]:
        """Local source ports of every connection — established *or*
        half-open (SYN possibly in flight) — addressed to
        ``dst_ip:dst_port``.

        This is the gNB-conntrack view the make-before-break flip
        snapshots: half-open handshakes register before their SYN is
        transmitted, so a snapshot taken in the same event-loop instant
        as a flow-table swap covers every connection whose segments
        could still traverse the old path.  Sorted for determinism.
        """
        ports = {
            conn.local_port
            for conn in self._connections.values()
            if conn.established
            and conn.remote_ip == dst_ip
            and conn.remote_port == dst_port
        }
        ports.update(
            src_port
            for src_port, ip, port in self._half_open.values()
            if ip == dst_ip and port == dst_port
        )
        return tuple(sorted(ports))

    def crash(self) -> None:
        """Power-fail this host (failure injection).

        Listeners close, every established connection is reset (peers
        blocked in ``recv`` get a :class:`ConnectionReset`), pending
        handshakes are left to time out, and all memoized routes die.
        Links and containers are the Injector's business — this only
        covers the host's own TCP/route state.
        """
        self._listeners.clear()
        for conn in list(self._connections.values()):
            conn.established = False
            store = conn._incoming
            if store is not None:
                store.put_nowait(ConnectionReset(f"{self.name} crashed"))
        self._connections.clear()
        for route in list(self._routes.values()):
            route.invalidate()
        self._routes.clear()

    # -- checkpoint / migration support -------------------------------------

    #: Runtime state that never survives pickling: listeners bind
    #: arbitrary application callbacks, connections and handshake
    #: waiters hold live events on the old environment's heap, and
    #: memoized routes reference link hops in the old topology.
    _EPHEMERAL_STATE = (
        "_listeners",
        "_connections",
        "_pending",
        "_half_open",
        "_port_waiters",
        "_routes",
    )

    def __getstate__(self) -> dict[str, _t.Any]:
        """Pickle as a *cold* host: identity and addressing survive,
        event-loop-bound runtime state does not.

        This is what lets partition builders ship prebuilt host
        inventories across the fork boundary (``repro.sim.parallel``
        constructs partitions inside workers from picklable specs):
        the snapshot carries name, MAC/IP, interface metadata, and the
        ephemeral-port cursor, while ``env`` and everything scheduled
        on it is stripped.  Re-attach with :meth:`rebind` before use.
        """
        state = self.__dict__.copy()
        state["env"] = None
        for name in self._EPHEMERAL_STATE:
            state[name] = {}
        return state

    def rebind(self, env: Environment) -> None:
        """Attach an unpickled (cold) host to ``env``.

        Refuses to steal a host that is still bound — rebinding a live
        host would leave its scheduled callbacks running on the old
        loop while new ones land on the new loop.
        """
        if self.env is not None:
            raise RuntimeError(
                f"{self.name}: already bound to an environment; only a "
                "cold (unpickled) host can be rebound"
            )
        self.env = env

    def port_open_event(self, port: int) -> _t.Any:
        """An event firing when ``port`` opens (readiness subscription).

        Already-open ports yield an immediately-triggered event.  This
        is what turns the controller's port polling (§VI) into a
        deadline-driven wait: instead of probing every poll interval,
        a waiter subscribes here and wakes the instant the listener is
        bound.  Abandoned subscriptions (e.g. a wait that timed out)
        should be dropped with :meth:`abandon_port_waiter`.
        """
        event = self.env.event()
        if port in self._listeners:
            event.succeed(port)
        else:
            self._port_waiters.setdefault(port, []).append(event)
        return event

    def abandon_port_waiter(self, port: int, event: _t.Any) -> None:
        """Drop a no-longer-needed :meth:`port_open_event` subscription."""
        waiters = self._port_waiters.get(port)
        if waiters is None:
            return
        try:
            waiters.remove(event)
        except ValueError:
            return
        if not waiters:
            del self._port_waiters[port]

    def port_is_open(self, port: int) -> bool:
        return port in self._listeners

    def _listener_for(self, ip: IPv4Address, port: int) -> Listener | None:
        """Resolve the listener for a destination (hook for CloudHost)."""
        return self._listeners.get(port)

    # -- client side ----------------------------------------------------------

    def connect(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        timeout: float | None = None,
    ):
        """Establish a connection (generator returning :class:`Connection`).

        Raises :class:`ConnectionRefused` if the destination answers
        with RST, :class:`ConnectionTimeout` if nothing answers within
        ``timeout`` seconds.
        """
        conn_id = next(_conn_ids)
        src_port = self._allocate_port()
        reply_ev = self.env.event()
        self._pending[conn_id] = reply_ev
        self._half_open[conn_id] = (src_port, dst_ip, dst_port)

        self._send_segment(
            dst_ip,
            TCPSegment(
                src_port=src_port,
                dst_port=dst_port,
                flags=TCPFlags.SYN,
                conn_id=conn_id,
            ),
        )
        try:
            if timeout is None:
                packet = yield reply_ev
            else:
                deadline = self.env.deadline(timeout)
                guard_timeout(
                    deadline,
                    reply_ev,
                    ConnectionTimeout,
                    "connect to ",
                    dst_ip,
                    ":",
                    dst_port,
                    " timed out after ",
                    timeout,
                    "s",
                )
                packet = yield reply_ev
                deadline.cancel()
        finally:
            self._pending.pop(conn_id, None)
            self._half_open.pop(conn_id, None)

        conn = Connection(self, conn_id, src_port, dst_ip, dst_port)
        conn.last_seen_remote_ip = packet.ip_src
        self._connections[conn_id] = conn
        # Final ACK of the three-way handshake.
        self._send_segment(
            dst_ip,
            TCPSegment(
                src_port=src_port,
                dst_port=dst_port,
                flags=TCPFlags.ACK,
                conn_id=conn_id,
            ),
        )
        return conn

    def http_request(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        request: HTTPRequest,
        timeout: float | None = None,
    ):
        """Issue one HTTP request (generator returning :class:`HTTPResult`).

        Implements the paper's *timecurl* measurement: ``time_total``
        spans from the start of the TCP connect to the arrival of the
        complete response.
        """
        start = self.env.now
        conn = yield from self.connect(dst_ip, dst_port, timeout=timeout)
        time_connect = self.env.now - start
        try:
            conn.send_payload(request, request.total_bytes)
            remaining = None
            if timeout is not None:
                remaining = max(0.0, timeout - (self.env.now - start))
            response = yield from conn.recv(timeout=remaining)
        finally:
            conn.close()
        if not isinstance(response, HTTPResponse):
            raise TypeError(f"expected HTTPResponse, got {response!r}")
        return HTTPResult(
            response=response,
            time_total=self.env.now - start,
            time_connect=time_connect,
        )

    def probe_port(self, dst_ip: IPv4Address, dst_port: int, timeout: float = 1.0):
        """TCP-connect probe (generator returning bool: port open?)."""
        try:
            conn = yield from self.connect(dst_ip, dst_port, timeout=timeout)
        except (ConnectionRefused, ConnectionTimeout):
            return False
        conn.close()
        return True

    # -- packet processing -------------------------------------------------------

    def receive(self, packet: Packet, iface: NetworkInterface) -> None:
        rec = packet._fp_rec
        if rec is not None:
            # The packet completed a recordable traversal: install the
            # route into the *sending* host's cache so the next packet
            # of the connection replays it.
            packet._fp_rec = None
            rec.finalize()
        seg = packet.tcp
        flag_bits = seg.flags.value

        # Handshake replies for connections we initiated.
        if flag_bits & _RST_BIT:
            pending = self._pending.get(seg.conn_id)
            if pending is not None and not pending.triggered:
                pending.fail(
                    ConnectionRefused(
                        f"connection to {packet.ip_src}:{seg.src_port} refused"
                    )
                )
                return
            conn = self._connections.get(seg.conn_id)
            if conn is not None:
                conn.incoming.put_nowait(
                    ConnectionReset("peer reset the connection")
                )
            return

        if flag_bits & _SYN_ACK_BITS == _SYN_ACK_BITS:
            pending = self._pending.get(seg.conn_id)
            if pending is not None and not pending.triggered:
                pending.succeed(packet)
            return

        if flag_bits & _SYN_BIT:
            self._handle_syn(packet)
            return

        conn = self._connections.get(seg.conn_id)
        if conn is None:
            # ACK finishing a handshake for a server-side connection we
            # already created, or stray traffic: ignore.
            return
        conn.last_seen_remote_ip = packet.ip_src
        if seg.payload is not None:
            if isinstance(seg.payload, HTTPRequest):
                self._serve_request(conn, seg.payload)
            else:
                conn.incoming.put_nowait(seg.payload)

    def _handle_syn(self, packet: Packet) -> None:
        seg = packet.tcp
        listener = self._listener_for(packet.ip_dst, seg.dst_port)
        if listener is None:
            # Closed port: refuse.  This is what the client hits if the
            # controller were to forward the request before the service
            # finished starting.
            self._send_segment(
                packet.ip_src,
                TCPSegment(
                    src_port=seg.dst_port,
                    dst_port=seg.src_port,
                    flags=TCPFlags.RST,
                    conn_id=seg.conn_id,
                ),
                src_ip=packet.ip_dst,
            )
            return
        conn = Connection(
            self,
            seg.conn_id,
            seg.dst_port,
            packet.ip_src,
            seg.src_port,
            local_ip=packet.ip_dst,
        )
        conn.last_seen_remote_ip = packet.ip_src
        self._connections[seg.conn_id] = conn
        self._send_segment(
            packet.ip_src,
            TCPSegment(
                src_port=seg.dst_port,
                dst_port=seg.src_port,
                flags=_SYN_ACK,
                conn_id=seg.conn_id,
            ),
            src_ip=conn.local_ip,
        )

    def _serve_request(self, conn: Connection, request: HTTPRequest) -> None:
        listener = self._listener_for(conn.local_ip, conn.local_port)
        if listener is None:
            # Port closed between handshake and request.
            self._send_segment(
                conn.remote_ip,
                TCPSegment(
                    src_port=conn.local_port,
                    dst_port=conn.remote_port,
                    flags=TCPFlags.RST,
                    conn_id=conn.conn_id,
                ),
                src_ip=conn.local_ip,
            )
            return
        # Hot start (and no per-request name string): the handler's
        # first segment runs synchronously here — where the old start
        # event would have run it within the same timestep anyway —
        # saving a heap entry per served request.
        Process(self.env, self._run_handler(listener.app, conn, request),
                hot=True)

    def _run_handler(self, app: "Application", conn: Connection, request: HTTPRequest):
        response = yield from app.handle(request)
        if conn.established:
            conn.send_payload(response, response.total_bytes)

    # -- low level ------------------------------------------------------------------

    def _send_segment(
        self,
        dst_ip: IPv4Address,
        segment: TCPSegment,
        src_ip: IPv4Address | None = None,
    ) -> None:
        ip_src = src_ip if src_ip is not None else self.ip
        packet = Packet(
            eth_src=self.iface.mac,
            eth_dst=_BROADCAST_MAC,
            ip_src=ip_src,
            ip_dst=dst_ip,
            tcp=segment,
        )
        conn_id = segment.conn_id
        if conn_id:
            # Established-flow fast path: replay the memoized route if
            # one exists for this connection *and* it was recorded for
            # the same header tuple (rewrites along the path mean the
            # tuple, not just the connection, identifies the route);
            # otherwise start a fresh recording.
            mk = (ip_src, dst_ip, segment.src_port, segment.dst_port)
            route = self._routes.get(conn_id)
            if route is not None and route.mk == mk:
                packet._mk = route.mk
                packet._fp_next = route.first
            else:
                packet._mk = mk
                packet._fp_rec = Recording(self._routes, conn_id, mk)
        self.iface.send(packet)

    def _allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 60999:
            self._next_ephemeral = EPHEMERAL_BASE
        return port
