"""Topology builder: declarative wiring of hosts, switches, and links.

A convenience layer over the raw :class:`~repro.net.host.Host` /
:class:`~repro.net.openflow.switch.OpenFlowSwitch` /
:class:`~repro.net.link.Link` objects, handling address allocation and
port bookkeeping.  The C³ testbed and the test suite build their
topologies through the same primitives.
"""

from __future__ import annotations

import typing as _t

from repro.net.addressing import IPAllocator, IPv4Address, MACAllocator
from repro.net.cloud import CloudHost
from repro.net.device import NetworkInterface
from repro.net.host import Host
from repro.net.link import GBPS, Link
from repro.net.openflow.switch import OpenFlowSwitch
from repro.sim import Environment


class NetworkBuilder:
    """Builds a network incrementally with automatic addressing."""

    def __init__(
        self,
        env: Environment,
        ip_base: str = "10.0.0.0",
    ) -> None:
        self.env = env
        self.ips = IPAllocator(ip_base)
        self.macs = MACAllocator()
        self.hosts: dict[str, Host] = {}
        self.switches: dict[str, OpenFlowSwitch] = {}
        #: (switch name, attached host name) -> switch port number.
        self.ports: dict[tuple[str, str], int] = {}
        self._next_dpid = 1

    # -- nodes ------------------------------------------------------------

    def host(self, name: str, ip: str | None = None) -> Host:
        """Create a host (optionally with a fixed IP)."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        address = IPv4Address.parse(ip) if ip else self.ips.allocate()
        created = Host(self.env, name, self.macs.allocate(), address)
        self.hosts[name] = created
        return created

    def cloud(self, name: str = "cloud", ip: str = "198.51.100.1") -> CloudHost:
        """Create a cloud host answering on arbitrary service addresses."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        created = CloudHost(
            self.env, name, self.macs.allocate(), IPv4Address.parse(ip)
        )
        self.hosts[name] = created
        return created

    def switch(self, name: str) -> OpenFlowSwitch:
        if name in self.switches:
            raise ValueError(f"switch {name!r} already exists")
        created = OpenFlowSwitch(self.env, name, datapath_id=self._next_dpid)
        self._next_dpid += 1
        self.switches[name] = created
        return created

    # -- links --------------------------------------------------------------

    def attach(
        self,
        switch: OpenFlowSwitch | str,
        host: Host | str,
        bandwidth_bps: float = GBPS,
        latency_s: float = 100e-6,
    ) -> int:
        """Link a host to a switch; returns the switch port number."""
        switch = self.switches[switch] if isinstance(switch, str) else switch
        host = self.hosts[host] if isinstance(host, str) else host
        port_no, iface = switch.add_port(self.macs.allocate())
        Link(self.env, host.iface, iface, bandwidth_bps, latency_s)
        self.ports[(switch.name, host.name)] = port_no
        return port_no

    def trunk(
        self,
        a: OpenFlowSwitch | str,
        b: OpenFlowSwitch | str,
        bandwidth_bps: float = 10 * GBPS,
        latency_s: float = 500e-6,
    ) -> tuple[int, int]:
        """Link two switches; returns (port on a, port on b)."""
        a = self.switches[a] if isinstance(a, str) else a
        b = self.switches[b] if isinstance(b, str) else b
        port_a, iface_a = a.add_port(self.macs.allocate())
        port_b, iface_b = b.add_port(self.macs.allocate())
        Link(self.env, iface_a, iface_b, bandwidth_bps, latency_s)
        self.ports[(a.name, b.name)] = port_a
        self.ports[(b.name, a.name)] = port_b
        return port_a, port_b

    def wire(
        self,
        a: Host | str,
        b: Host | str,
        bandwidth_bps: float = GBPS,
        latency_s: float = 100e-6,
    ) -> Link:
        """Direct host-to-host link (no switch in between)."""
        a = self.hosts[a] if isinstance(a, str) else a
        b = self.hosts[b] if isinstance(b, str) else b
        return Link(self.env, a.iface, b.iface, bandwidth_bps, latency_s)

    def port_of(self, switch: str, peer: str) -> int:
        """Port number on ``switch`` toward attached node ``peer``."""
        return self.ports[(switch, peer)]
