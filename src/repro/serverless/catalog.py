"""Wasm builds of the paper's services (for the future-work experiment).

Gackstatter et al. [7] motivate wasm for edge serverless with cold
starts far below container starts; the flip side is slower execution
and a narrower application model (no full Linux userland — nginx
itself would not be compiled to wasm; what runs is *the service's
function*, i.e. "serve this file" / "classify this image").
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.containers.image import KIB, MIB
from repro.serverless.wasm import WasmModule
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.services.catalog import (
    ASM_IMAGE,
    NGINX_IMAGE,
    RESNET_IMAGE,
)


@dataclasses.dataclass(frozen=True)
class WasmServiceTemplate:
    """A wasm counterpart of one catalog container service."""

    key: str
    title: str
    module: WasmModule
    #: The container image this module replaces.
    replaces_image: str


def build_wasm_catalog(
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> tuple[tuple[WasmServiceTemplate, ...], dict[str, WasmModule]]:
    """Wasm templates plus the image→module map for the adapter."""
    static_file = WasmModule(
        name="web-static.wasm",
        size_bytes=180 * KIB,
        native_handle_s=calibration.static_file_handle_s,
        response_bytes=calibration.text_response_bytes,
    )
    classify = WasmModule(
        name="resnet-classify.wasm",
        size_bytes=28 * MIB,  # model weights dominate the binary
        native_handle_s=calibration.resnet_infer_s,
        response_bytes=calibration.resnet_response_bytes,
    )
    templates = (
        WasmServiceTemplate(
            key="asm_wasm",
            title="Asm (wasm)",
            module=static_file,
            replaces_image=ASM_IMAGE.reference,
        ),
        WasmServiceTemplate(
            key="nginx_wasm",
            title="Nginx (wasm)",
            module=static_file,
            replaces_image=NGINX_IMAGE.reference,
        ),
        WasmServiceTemplate(
            key="resnet_wasm",
            title="ResNet (wasm)",
            module=classify,
            replaces_image=RESNET_IMAGE.reference,
        ),
    )
    module_map = {t.replaces_image: t.module for t in templates}
    return templates, module_map


WASM_SERVICES, _DEFAULT_MODULE_MAP = build_wasm_catalog()


def default_module_map() -> dict[str, WasmModule]:
    return dict(_DEFAULT_MODULE_MAP)
