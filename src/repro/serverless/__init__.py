"""Serverless/WebAssembly substrate (the paper's §VIII future work).

"In future work, we plan to extend our solution for transparent access
by enabling the side-by-side operation of containers and serverless
applications and evaluate how well the latter would perform in a
transparent access approach."

This package provides that side: a WebAssembly function runtime whose
cold start is milliseconds instead of hundreds of milliseconds (per
Gackstatter et al. [7] and Mohan et al. [23] — no network namespace to
build), a module registry, and an :class:`~repro.cluster.EdgeCluster`
adapter so the same SDN controller deploys wasm functions through the
same FAST/BEST machinery as containers.
"""

from repro.serverless.wasm import (
    WasmFunction,
    WasmInstance,
    WasmModule,
    WasmRuntime,
    WasmRuntimeProfile,
)
from repro.serverless.cluster import ServerlessCluster
from repro.serverless.catalog import (
    WASM_SERVICES,
    WasmServiceTemplate,
    build_wasm_catalog,
)

__all__ = [
    "ServerlessCluster",
    "WASM_SERVICES",
    "WasmFunction",
    "WasmInstance",
    "WasmModule",
    "WasmRuntime",
    "WasmRuntimeProfile",
    "WasmServiceTemplate",
    "build_wasm_catalog",
]
