"""EdgeCluster adapter for the serverless runtime.

Lets the unchanged SDN controller deploy wasm functions side by side
with containers: the same :class:`~repro.cluster.DeploymentPlan` maps
onto a module (via the cluster's image→module table), and the fig. 4
phases become fetch / register / instantiate.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.cluster.base import DeployError, EdgeCluster, ServiceEndpoint
from repro.cluster.plan import DeploymentPlan
from repro.serverless.wasm import WasmInstance, WasmModule, WasmRuntime
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


class ServerlessCluster(EdgeCluster):
    """An edge site running a WebAssembly function runtime."""

    def __init__(
        self,
        env: Environment,
        name: str,
        host: "Host",
        runtime: WasmRuntime,
        module_map: _t.Mapping[str, WasmModule],
        distance: int = 0,
        capacity: int | None = None,
        port_base: int = 25000,
        register_s: float = 0.002,
    ) -> None:
        super().__init__(env, name, host, distance, capacity)
        self.runtime = runtime
        #: image reference -> wasm module implementing the same service.
        self.module_map = dict(module_map)
        self.register_s = register_s
        self._ports: dict[str, int] = {}
        self._port_counter = itertools.count(port_base)
        self._registered: set[str] = set()
        self._instances: dict[str, list[WasmInstance]] = {}

    def _module_for(self, plan: DeploymentPlan) -> WasmModule:
        reference = plan.serving_container.image.reference
        module = self.module_map.get(reference)
        if module is None:
            raise DeployError(
                f"{self.name}: no wasm build of {reference!r} available"
            )
        return module

    # -- phases ------------------------------------------------------------

    def pull(self, plan: DeploymentPlan):
        yield from self.runtime.fetch(self._module_for(plan))

    def create(self, plan: DeploymentPlan):
        """Register the function (no containers to prepare)."""
        if plan.service_name in self._registered:
            return
        if not self.image_cached(plan):
            raise DeployError(
                f"{self.name}: module for {plan.service_name!r} not fetched"
            )
        yield self.env.timeout(self.register_s)
        self._ports.setdefault(plan.service_name, next(self._port_counter))
        self._registered.add(plan.service_name)

    def scale_up(self, plan: DeploymentPlan):
        if plan.service_name not in self._registered:
            raise DeployError(
                f"{self.name}: {plan.service_name!r} not registered yet"
            )
        port = self._ports[plan.service_name]
        instance = yield from self.runtime.instantiate(
            self._module_for(plan), port
        )
        self._instances.setdefault(plan.service_name, []).append(instance)

    def scale_down(self, plan: DeploymentPlan):
        for instance in self._instances.pop(plan.service_name, []):
            yield from self.runtime.terminate(instance)

    def remove(self, plan: DeploymentPlan):
        yield from self.scale_down(plan)
        self._registered.discard(plan.service_name)
        self._ports.pop(plan.service_name, None)

    def delete_images(self, plan: DeploymentPlan):
        module = self._module_for(plan)
        freed = module.size_bytes if self.runtime.has_module(module.name) else 0
        self.runtime.drop_module(module.name)
        yield self.env.timeout(0.0)
        return freed

    # -- state ------------------------------------------------------------------

    def image_cached(self, plan: DeploymentPlan) -> bool:
        return self.runtime.has_module(self._module_for(plan).name)

    def is_created(self, plan: DeploymentPlan) -> bool:
        return plan.service_name in self._registered

    def running_count(self) -> int:
        return sum(1 for instances in self._instances.values() if instances)

    def endpoint(self, plan: DeploymentPlan) -> ServiceEndpoint | None:
        port = self._ports.get(plan.service_name)
        if port is None:
            return None
        return ServiceEndpoint(ip=self.ingress_host.ip, port=port)
