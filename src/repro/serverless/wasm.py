"""A WebAssembly function runtime.

Timing model, following the measurements Gackstatter et al. [7] report
for edge serverless with wasm runtimes:

* **fetch** — modules are single small binaries (no layers); download
  time is size/bandwidth plus one registry round trip;
* **compile** — ahead-of-time compilation happens once per module and
  is cached (``compile_ms_per_mib``);
* **instantiate** — creating an isolate costs *milliseconds*: no
  network namespace, no container filesystem (this is the whole point
  versus fig. 11's container numbers);
* **execute** — compute runs slower than native by ``slowdown``
  (wasm's price for portability/isolation).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.containers.image import MIB
from repro.net.packet import HTTPRequest, HTTPResponse
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


@dataclasses.dataclass(frozen=True)
class WasmModule:
    """One compiled-to-wasm function binary."""

    name: str
    size_bytes: int
    #: Native handler latency; the runtime applies its slowdown factor.
    native_handle_s: float
    response_bytes: int = 120

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("module size must be positive")
        if self.native_handle_s < 0:
            raise ValueError("handler latency must be >= 0")


@dataclasses.dataclass(frozen=True)
class WasmRuntimeProfile:
    """Calibrated runtime costs."""

    #: AOT compilation throughput (one-time per module, cached).
    compile_s_per_mib: float = 0.050
    #: Isolate creation + linking (the "cold start").
    instantiate_s: float = 0.004
    #: Execution slowdown versus native code.
    slowdown: float = 1.6
    #: Registry round trip for a module fetch.
    fetch_rtt_s: float = 0.002
    #: Module download bandwidth (bits/second).
    fetch_bandwidth_bps: float = 850e6

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        for name in ("compile_s_per_mib", "instantiate_s", "fetch_rtt_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.fetch_bandwidth_bps <= 0:
            raise ValueError("fetch bandwidth must be positive")


class WasmFunction:
    """The HTTP handler wrapping one instantiated module."""

    def __init__(self, env: Environment, module: WasmModule, slowdown: float) -> None:
        self.env = env
        self.module = module
        self.handle_time_s = module.native_handle_s * slowdown
        self.requests_handled = 0

    def handle(self, request: HTTPRequest):
        if self.handle_time_s:
            yield self.env.timeout(self.handle_time_s)
        else:
            yield self.env.timeout(0.0)
        self.requests_handled += 1
        return HTTPResponse(status=200, body_bytes=self.module.response_bytes)


_instance_ids = itertools.count(1)


class WasmInstance:
    """One running function instance bound to a host port."""

    def __init__(self, runtime: "WasmRuntime", module: WasmModule, port: int) -> None:
        self.runtime = runtime
        self.module = module
        self.port = port
        self.instance_id = f"wasm-{next(_instance_ids):06d}"
        self.function = WasmFunction(
            runtime.env, module, runtime.profile.slowdown
        )
        self.running = True


class WasmRuntime:
    """Per-node serverless runtime: module cache + instances."""

    def __init__(
        self,
        env: Environment,
        node: "Host",
        profile: WasmRuntimeProfile | None = None,
    ) -> None:
        self.env = env
        self.node = node
        self.profile = profile or WasmRuntimeProfile()
        self._modules: dict[str, WasmModule] = {}
        self._compiled: set[str] = set()
        self.instances: dict[str, WasmInstance] = {}
        self.stats = {"fetches": 0, "compiles": 0, "instantiations": 0}

    # -- module management -------------------------------------------------

    def has_module(self, name: str) -> bool:
        return name in self._modules

    def fetch(self, module: WasmModule):
        """Download + AOT-compile a module (generator); cached after."""
        if module.name in self._modules:
            return
        transfer = module.size_bytes * 8 / self.profile.fetch_bandwidth_bps
        yield self.env.timeout(self.profile.fetch_rtt_s + transfer)
        self.stats["fetches"] += 1
        self._modules[module.name] = module
        if module.name not in self._compiled:
            yield self.env.timeout(
                self.profile.compile_s_per_mib * module.size_bytes / MIB
            )
            self._compiled.add(module.name)
            self.stats["compiles"] += 1

    def drop_module(self, name: str) -> None:
        self._modules.pop(name, None)
        self._compiled.discard(name)

    # -- instance lifecycle ----------------------------------------------------

    def instantiate(self, module: WasmModule, port: int):
        """Start one instance on ``port`` (generator returning it)."""
        if module.name not in self._modules:
            raise RuntimeError(
                f"module {module.name!r} not fetched on {self.node.name}"
            )
        yield self.env.timeout(self.profile.instantiate_s)
        instance = WasmInstance(self, module, port)
        self.instances[instance.instance_id] = instance
        self.stats["instantiations"] += 1
        if not self.node.port_is_open(port):
            self.node.open_port(port, instance.function)
        return instance

    def terminate(self, instance: WasmInstance):
        """Stop an instance (generator; teardown is effectively free)."""
        yield self.env.timeout(0.0)
        if instance.running:
            instance.running = False
            self.instances.pop(instance.instance_id, None)
            if self.node.port_is_open(instance.port):
                self.node.close_port(instance.port)

    def instances_of(self, module_name: str) -> list[WasmInstance]:
        return [
            inst
            for inst in self.instances.values()
            if inst.module.name == module_name
        ]
