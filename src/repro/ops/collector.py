"""Periodic flow/port-counter collection with delta/rate windows.

The original deployment scrapes switch counters out-of-band
(josefhammer's ``flowStats.sh``); the RL-SDN controller derives
``/metrics/links`` the same way.  This collector is the simulated
equivalent, built to be **md5-neutral**: it reads the switch's counter
dictionaries and flow-table entries directly inside a scheduled
callback — never through OpenFlow request messages (which would inject
data-plane traffic the way the predictor's ``FlowStatsSampler`` does),
never drawing random numbers, never mutating anything the data path
reads.  The only events it adds are its own periodic ticks and the
shared-state propagation of the published rows, both timing-isolated
from request traffic; the parity tests in ``tests/test_ops_api.py``
gate that byte-identity.

Per tick it derives:

* **link utilization** — the switch's ``tx`` packet delta over the
  window, converted to bits with a nominal bytes/packet estimate (the
  simulated switch counts packets, not bytes) and divided by each
  monitored link's bandwidth.  Published as
  :class:`~repro.core.state.LinkStatsRecord` rows through the control
  plane's replicated state, so remote sites see this site's load.
* **per-service packet rates** — flow-entry ``packet_count`` deltas
  grouped by the ``redirect:{service}:{client}`` / ``intercept:{service}``
  cookie prefixes the controller stamps on its entries.
"""

from __future__ import annotations

import typing as _t

from repro.core.state import ControlPlaneState, LinkStatsRecord
from repro.ops.model import LinkStatsView, ServiceRateView

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.metrics import MetricsRecorder
    from repro.net.link import Link
    from repro.net.openflow.switch import OpenFlowSwitch
    from repro.sim import Environment

__all__ = ["FlowStatsCollector", "DEFAULT_BYTES_PER_PACKET"]

#: Nominal wire bytes per forwarded packet for the bits/s estimate:
#: the simulated switch counts packets, not bytes, so link load is
#: reconstructed as ``packets × estimate × 8``.  The default sits
#: between bare-ACK (66 B) and response-burst packets.
DEFAULT_BYTES_PER_PACKET = 600.0


class FlowStatsCollector:
    """Polls one site's switch counters on a fixed period.

    ``links`` maps link names to the :class:`~repro.net.link.Link`
    objects whose utilization should be estimated from the switch's
    transmit counter (typically the site's uplink/trunk).  ``state``
    is the site's control-plane state; when given, every link
    observation is published as a replicated
    :class:`~repro.core.state.LinkStatsRecord` (on the stats-only
    Lamport stream, see ``SiteReplica.publish_link_stats``).
    """

    def __init__(
        self,
        env: "Environment",
        site: str,
        switch: "OpenFlowSwitch",
        links: _t.Mapping[str, "Link"],
        state: ControlPlaneState | None = None,
        period_s: float = 1.0,
        bytes_per_packet: float = DEFAULT_BYTES_PER_PACKET,
        recorder: "MetricsRecorder | None" = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if bytes_per_packet <= 0:
            raise ValueError("bytes_per_packet must be positive")
        self.env = env
        self.site = site
        self.switch = switch
        self.links = dict(links)
        self.state = state
        self.period_s = float(period_s)
        self.bytes_per_packet = float(bytes_per_packet)
        self.recorder = recorder
        #: Ticks executed (diagnostics; counters only).
        self.collections = 0
        self._running = False
        # Delta-window baselines.
        self._last_time = env.now
        self._last_tx = int(switch.stats["tx"])
        self._last_service_packets: dict[str, int] = {}
        # Latest local observations (tuples of frozen views).
        self._link_views: tuple[LinkStatsView, ...] = ()
        self._rate_views: tuple[ServiceRateView, ...] = ()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FlowStatsCollector":
        """Arm the periodic tick (idempotent)."""
        if not self._running:
            self._running = True
            self._last_time = self.env.now
            self._last_tx = int(self.switch.stats["tx"])
            self.env.call_later(self.period_s, self._tick)
        return self

    def stop(self) -> None:
        """Stop after the currently scheduled tick fires (it no-ops)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.collect()
        self.env.call_later(self.period_s, self._tick)

    # -- one collection ----------------------------------------------------

    def collect(self) -> tuple[LinkStatsView, ...]:
        """Read counters, derive rates for the elapsed window, publish.

        Exposed for tests (hand-computed counter checks) and for
        on-demand collection; the periodic tick calls it too.
        """
        now = self.env.now
        window = now - self._last_time
        if window <= 0:
            return self._link_views
        self.collections += 1
        tx = int(self.switch.stats["tx"])
        delta_tx = tx - self._last_tx
        packets_per_s = delta_tx / window
        bits_per_s = packets_per_s * self.bytes_per_packet * 8.0

        link_views: list[LinkStatsView] = []
        for name in sorted(self.links):
            link = self.links[name]
            bandwidth = float(getattr(link, "bandwidth_bps", 0.0) or 0.0)
            utilization = bits_per_s / bandwidth if bandwidth > 0 else 0.0
            view = LinkStatsView(
                site=self.site,
                link=name,
                observed_at=now,
                window_s=window,
                packets_per_s=packets_per_s,
                bits_per_s=bits_per_s,
                utilization=utilization,
            )
            link_views.append(view)
            if self.state is not None:
                self.state.publish_link_stats(
                    LinkStatsRecord(
                        site=self.site,
                        link=name,
                        observed_at=now,
                        window_s=window,
                        packets_per_s=packets_per_s,
                        bits_per_s=bits_per_s,
                        utilization=utilization,
                    )
                )
        self._link_views = tuple(link_views)
        self._rate_views = self._collect_service_rates(now, window)
        self._last_time = now
        self._last_tx = tx
        if self.recorder is not None:
            self.recorder.count(f"ops/collections/{self.site}")
        return self._link_views

    def _collect_service_rates(
        self, now: float, window: float
    ) -> tuple[ServiceRateView, ...]:
        """Per-service packet rates from flow-cookie counter deltas."""
        totals: dict[str, int] = {}
        for entry in self.switch.table:
            cookie = str(entry.cookie or "")
            if cookie.startswith("redirect:") or cookie.startswith("drain:"):
                service = cookie.split(":", 2)[1]
            elif cookie.startswith("intercept:"):
                service = cookie.split(":", 1)[1]
            else:
                continue
            totals[service] = totals.get(service, 0) + int(entry.packet_count)
        views: list[ServiceRateView] = []
        for service in sorted(totals):
            previous = self._last_service_packets.get(service, 0)
            delta = totals[service] - previous
            if delta < 0:
                # Entries expired and re-installed: the cumulative total
                # can step backwards.  Treat the new total as the rate
                # floor rather than reporting a negative rate.
                delta = totals[service]
            views.append(
                ServiceRateView(
                    site=self.site,
                    service_name=service,
                    observed_at=now,
                    window_s=window,
                    packets_per_s=delta / window,
                )
            )
        self._last_service_packets = totals
        return tuple(views)

    # -- read-model accessors ----------------------------------------------

    def link_views(self) -> tuple[LinkStatsView, ...]:
        """This site's latest local link observations."""
        return self._link_views

    def service_rate_views(self) -> tuple[ServiceRateView, ...]:
        """This site's latest per-service rate observations."""
        return self._rate_views

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self._running else "stopped"
        return (
            f"<FlowStatsCollector {self.site} {state} "
            f"period={self.period_s}s collections={self.collections}>"
        )
