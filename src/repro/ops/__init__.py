"""Operational control plane: REST API, flow-stats collection, and the
unified observability read-model.

Layering (bottom up):

1. components expose raw introspection (counters, tables, state),
2. :class:`FlowStatsCollector` periodically derives link-utilization
   and per-service rate windows and replicates them,
3. :class:`OpsReadModel` renders everything into the frozen views of
   :mod:`repro.ops.model`,
4. :class:`OpsApp` serves those views over simulated HTTP on
   :data:`OPS_PORT` of every site's EGS host.

Everything here is read-only with respect to the data path: enabling
the ops surface leaves replay latency fingerprints byte-identical
(gated by ``tests/test_ops_api.py``).
"""

from repro.ops.api import OPS_PORT, OpsApp
from repro.ops.collector import DEFAULT_BYTES_PER_PACKET, FlowStatsCollector
from repro.ops.model import (
    SCHEMA_VERSION,
    BreakerView,
    ClusterView,
    FlowView,
    InstanceView,
    LinkStatsView,
    MigrationView,
    OpsSnapshot,
    ServiceRateView,
    ServiceView,
    SwitchView,
)
from repro.ops.readmodel import OpsReadModel

__all__ = [
    "OPS_PORT",
    "OpsApp",
    "DEFAULT_BYTES_PER_PACKET",
    "FlowStatsCollector",
    "OpsReadModel",
    "SCHEMA_VERSION",
    "BreakerView",
    "ClusterView",
    "FlowView",
    "InstanceView",
    "LinkStatsView",
    "MigrationView",
    "OpsSnapshot",
    "ServiceRateView",
    "ServiceView",
    "SwitchView",
]
