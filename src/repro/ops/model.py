"""Versioned snapshot views of the operational read-model.

Every observable surface of the testbed — services, instances, flows,
breakers, migrations, clusters, switches, link stats — is frozen into
one of these dataclasses before it leaves the control plane.  The REST
API, the experiments, and the schedulers consume *these*, never the
live objects, so:

* a snapshot taken mid-dispatch stays self-consistent (nothing mutates
  under the consumer's feet),
* the JSON shape over the wire is exactly ``as_dict()`` of a view, and
  :data:`SCHEMA_VERSION` stamps every API payload so clients can
  detect incompatible changes,
* internals can be refactored freely as long as the views keep their
  fields.

Views hold only JSON-safe scalars (str / int / float / bool / None and
tuples thereof) — an :class:`~repro.net.addressing.IPv4Address` is
rendered to its dotted string at snapshot time.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = [
    "SCHEMA_VERSION",
    "BreakerView",
    "ClusterView",
    "FlowView",
    "InstanceView",
    "LinkStatsView",
    "MigrationView",
    "ServiceRateView",
    "ServiceView",
    "SwitchView",
    "OpsSnapshot",
]

#: Bumped whenever a view gains/loses/renames a field.  Stamped into
#: every API payload as ``schema_version``.
SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ServiceView:
    """One registered service (``GET /services``)."""

    name: str
    cloud_ip: str
    port: int
    template_key: str | None

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class InstanceView:
    """One known service-instance observation (``GET /instances``)."""

    service_name: str
    cluster_name: str
    site: str
    running: bool
    endpoint_ip: str | None
    endpoint_port: int | None
    distance: int
    observed_at: float

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FlowView:
    """One memorized (client, service) flow (``GET /flows``)."""

    client_ip: str
    service_name: str
    cluster_name: str
    endpoint_ip: str
    endpoint_port: int
    created_at: float
    last_used: float
    degraded: bool
    degraded_from: str | None

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class BreakerView:
    """One cluster's circuit-breaker state (``GET /breakers``).

    ``transitions`` is the full timestamped history —
    ``(sim_time, from_state, to_state)`` triples — so an operator can
    reconstruct exactly when the cluster was excluded and readmitted.
    """

    cluster: str
    state: str
    consecutive_failures: int
    opened_at: float
    opens: int
    closes: int
    probes: int
    transitions: tuple[tuple[float, str, str], ...]

    def as_dict(self) -> dict[str, _t.Any]:
        data = dataclasses.asdict(self)
        data["transitions"] = [list(t) for t in self.transitions]
        return data


@dataclasses.dataclass(frozen=True)
class MigrationView:
    """One migration outcome (``GET /migrations``)."""

    service_name: str
    from_site: str
    to_site: str
    mode: str
    started_at: float
    rounds: int
    bytes_moved: int
    bytes_final: int
    downtime_s: float
    total_s: float
    completed: bool
    failed_phase: str | None
    error: str | None
    rolled_back: bool

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ClusterView:
    """One local edge cluster's node state (``GET /clusters``)."""

    name: str
    distance: int
    capacity: int | None
    running_count: int

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SwitchView:
    """One switch's counters and table occupancy (``GET /clusters``)."""

    name: str
    datapath_id: int
    table_size: int
    table_peak: int
    table_epoch: int
    rx: int
    tx: int
    miss: int
    drop: int
    punt: int

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LinkStatsView:
    """One link-utilization observation (``GET /metrics/links``).

    Mirrors :class:`repro.core.state.LinkStatsRecord` — the replicated
    row — field for field; the view exists so API payloads never
    depend on the state layer's wire types.
    """

    site: str
    link: str
    observed_at: float
    window_s: float
    packets_per_s: float
    bits_per_s: float
    utilization: float

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ServiceRateView:
    """Per-service packet rate over the collector's last window
    (``GET /metrics/links``), derived from redirect/intercept flow
    cookie counters."""

    site: str
    service_name: str
    observed_at: float
    window_s: float
    packets_per_s: float

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class OpsSnapshot:
    """The whole observable surface at one instant (``snapshot()``)."""

    schema_version: int
    site: str
    now: float
    services: tuple[ServiceView, ...]
    instances: tuple[InstanceView, ...]
    flows: tuple[FlowView, ...]
    breakers: tuple[BreakerView, ...]
    migrations: tuple[MigrationView, ...]
    clusters: tuple[ClusterView, ...]
    switches: tuple[SwitchView, ...]
    links: tuple[LinkStatsView, ...]
    service_rates: tuple[ServiceRateView, ...]
    controller_stats: dict[str, int]

    def as_dict(self) -> dict[str, _t.Any]:
        return {
            "schema_version": self.schema_version,
            "site": self.site,
            "now": self.now,
            "services": [v.as_dict() for v in self.services],
            "instances": [v.as_dict() for v in self.instances],
            "flows": [v.as_dict() for v in self.flows],
            "breakers": [v.as_dict() for v in self.breakers],
            "migrations": [v.as_dict() for v in self.migrations],
            "clusters": [v.as_dict() for v in self.clusters],
            "switches": [v.as_dict() for v in self.switches],
            "links": [v.as_dict() for v in self.links],
            "service_rates": [v.as_dict() for v in self.service_rates],
            "controller_stats": dict(self.controller_stats),
        }
