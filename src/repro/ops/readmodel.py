"""The unified observability read-model.

One object per site binds every introspectable layer — controller and
dispatcher counters, the typed control-plane state, switch/link
counters, breaker machines, migration outcomes, the metrics recorder,
and the flow-stats collector — and renders them into the frozen views
of :mod:`repro.ops.model`.  The REST API serves these views verbatim;
experiments and schedulers that used to reach into component internals
read them here instead, so there is exactly one definition of "what
the system looks like right now".

Strictly read-only: every accessor takes an instantaneous snapshot
with plain attribute/dict reads — no events scheduled, no simulated
messages, no RNG — so an enabled read-model can never perturb replay
fingerprints.
"""

from __future__ import annotations

import typing as _t

from repro.ops.model import (
    SCHEMA_VERSION,
    BreakerView,
    ClusterView,
    FlowView,
    InstanceView,
    LinkStatsView,
    MigrationView,
    OpsSnapshot,
    ServiceRateView,
    ServiceView,
    SwitchView,
)

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.controller import EdgeController
    from repro.core.migration import MigrationManager
    from repro.net.openflow.switch import OpenFlowSwitch
    from repro.ops.collector import FlowStatsCollector
    from repro.sim import Environment

__all__ = ["OpsReadModel"]


class OpsReadModel:
    """Read-only snapshot factory over one site's full stack."""

    def __init__(
        self,
        env: "Environment",
        controller: "EdgeController",
        site: str = "local",
        switches: "_t.Collection[OpenFlowSwitch]" = (),
        manager: "MigrationManager | None" = None,
        collector: "FlowStatsCollector | None" = None,
    ) -> None:
        self.env = env
        self.controller = controller
        self.site = site
        # Held as given (may be a live dict-values view, so switches
        # attached after construction show up in snapshots).
        self.switches_list = switches
        self.manager = manager
        self.collector = collector

    # -- service registrations ---------------------------------------------

    def services(self) -> tuple[ServiceView, ...]:
        return tuple(
            ServiceView(
                name=service.name,
                cloud_ip=str(service.cloud_ip),
                port=service.port,
                template_key=service.template_key,
            )
            for service in self.controller.state.services()
        )

    # -- instances ----------------------------------------------------------

    def instances(self) -> tuple[InstanceView, ...]:
        """Every known instance: replicated observations merged with
        the local clusters' ground truth (which wins for this site —
        the single-controller build never publishes records, and a
        replica's own rows can lag its clusters)."""
        state = self.controller.state
        views: dict[tuple[str, str, str], InstanceView] = {}
        for service in state.services():
            for record in state.instances_for(service.name):
                endpoint = record.endpoint
                views[(record.service_name, record.site, record.cluster_name)] = (
                    InstanceView(
                        service_name=record.service_name,
                        cluster_name=record.cluster_name,
                        site=record.site,
                        running=record.running,
                        endpoint_ip=(
                            str(endpoint.ip) if endpoint is not None else None
                        ),
                        endpoint_port=(
                            endpoint.port if endpoint is not None else None
                        ),
                        distance=record.distance,
                        observed_at=record.observed_at,
                    )
                )
        now = self.env.now
        for service in state.services():
            for cluster in self.controller.clusters:
                if not cluster.is_running(service.plan):
                    continue
                endpoint = cluster.endpoint(service.plan)
                views[(service.name, self.site, cluster.name)] = InstanceView(
                    service_name=service.name,
                    cluster_name=cluster.name,
                    site=self.site,
                    running=True,
                    endpoint_ip=str(endpoint.ip) if endpoint is not None else None,
                    endpoint_port=endpoint.port if endpoint is not None else None,
                    distance=cluster.distance,
                    observed_at=now,
                )
        return tuple(views[key] for key in sorted(views))

    # -- memorized flows -----------------------------------------------------

    def flows(self) -> tuple[FlowView, ...]:
        rows: list[FlowView] = []
        for flow in self.controller.state.flows.values():
            rows.append(
                FlowView(
                    client_ip=str(flow.client_ip),
                    service_name=flow.service.name,
                    cluster_name=flow.cluster_name,
                    endpoint_ip=str(flow.endpoint.ip),
                    endpoint_port=flow.endpoint.port,
                    created_at=flow.created_at,
                    last_used=flow.last_used,
                    degraded=flow.degraded,
                    degraded_from=flow.degraded_from,
                )
            )
        rows.sort(key=lambda v: (v.client_ip, v.service_name))
        return tuple(rows)

    # -- circuit breakers ----------------------------------------------------

    def breakers(self) -> tuple[BreakerView, ...]:
        views: list[BreakerView] = []
        for name in sorted(self.controller.state.breakers):
            breaker = self.controller.state.breakers[name]
            views.append(
                BreakerView(
                    cluster=name,
                    state=breaker.state.value,
                    consecutive_failures=breaker.consecutive_failures,
                    opened_at=breaker.opened_at,
                    opens=breaker.stats["opens"],
                    closes=breaker.stats["closes"],
                    probes=breaker.stats["probes"],
                    transitions=tuple(breaker.transitions),
                )
            )
        return tuple(views)

    # -- migrations ----------------------------------------------------------

    def migrations(self) -> tuple[MigrationView, ...]:
        if self.manager is None:
            return ()
        return tuple(
            MigrationView(
                service_name=outcome.service_name,
                from_site=outcome.from_site,
                to_site=outcome.to_site,
                mode=outcome.mode,
                started_at=outcome.started_at,
                rounds=outcome.rounds,
                bytes_moved=outcome.bytes_moved,
                bytes_final=outcome.bytes_final,
                downtime_s=outcome.downtime_s,
                total_s=outcome.total_s,
                completed=outcome.completed,
                failed_phase=outcome.failed_phase,
                error=outcome.error,
                rolled_back=outcome.rolled_back,
            )
            for outcome in self.manager.outcomes
        )

    # -- cluster / node state ------------------------------------------------

    def clusters(self) -> tuple[ClusterView, ...]:
        return tuple(
            ClusterView(
                name=cluster.name,
                distance=cluster.distance,
                capacity=cluster.capacity,
                running_count=cluster.running_count(),
            )
            for cluster in sorted(
                self.controller.clusters, key=lambda c: c.name
            )
        )

    def switches(self) -> tuple[SwitchView, ...]:
        return tuple(
            SwitchView(
                name=switch.name,
                datapath_id=switch.datapath_id,
                table_size=len(switch.table),
                table_peak=int(switch.table.peak_size),
                table_epoch=switch.table.epoch,
                rx=switch.stats["rx"],
                tx=switch.stats["tx"],
                miss=switch.stats["miss"],
                drop=switch.stats["drop"],
                punt=switch.stats["punt"],
            )
            for switch in sorted(self.switches_list, key=lambda s: s.name)
        )

    # -- link stats ------------------------------------------------------------

    def link_stats(self) -> tuple[LinkStatsView, ...]:
        """Federation-wide link rows: the replicated state's view (this
        site's publishes apply locally first, so it always includes our
        own), falling back to the collector's local observations when
        nothing was published through the state layer."""
        records = self.controller.state.link_stats()
        if records:
            return tuple(
                LinkStatsView(
                    site=record.site,
                    link=record.link,
                    observed_at=record.observed_at,
                    window_s=record.window_s,
                    packets_per_s=record.packets_per_s,
                    bits_per_s=record.bits_per_s,
                    utilization=record.utilization,
                )
                for record in records
            )
        if self.collector is not None:
            return self.collector.link_views()
        return ()

    def service_rates(self) -> tuple[ServiceRateView, ...]:
        if self.collector is None:
            return ()
        return self.collector.service_rate_views()

    # -- recorder metrics ------------------------------------------------------

    def metrics(self) -> dict[str, _t.Any]:
        """Counters + per-name sample summaries + controller stats."""
        recorder = self.controller.recorder
        summaries: dict[str, _t.Any] = {}
        for name in recorder.names():
            summaries[name] = recorder.summary(name).as_dict()
        return {
            "schema_version": SCHEMA_VERSION,
            "site": self.site,
            "now": self.env.now,
            "counters": recorder.counters(),
            "summaries": summaries,
            "controller_stats": dict(self.controller.stats),
        }

    # -- the whole surface -----------------------------------------------------

    def snapshot(self) -> OpsSnapshot:
        return OpsSnapshot(
            schema_version=SCHEMA_VERSION,
            site=self.site,
            now=self.env.now,
            services=self.services(),
            instances=self.instances(),
            flows=self.flows(),
            breakers=self.breakers(),
            migrations=self.migrations(),
            clusters=self.clusters(),
            switches=self.switches(),
            links=self.link_stats(),
            service_rates=self.service_rates(),
            controller_stats=dict(self.controller.stats),
        )
