"""The simulated-HTTP operational REST API.

An :class:`OpsApp` is an :class:`~repro.net.host.Application` served on
every site's EGS host at :data:`OPS_PORT` — the same idiom as the
migration daemon on :7077.  Responses are
:class:`~repro.net.DataResponse` objects: ``body_bytes`` is the
encoded-JSON length (so the reply pays size-faithful serialization on
the way back) and ``payload`` carries the decoded document for in-sim
consumers (``tools/opsctl.py``, tests).

Route table (exact-path dispatch; unknown → 404, known path with the
wrong method → 405, malformed or unknown query parameters → 400):

========================  ======  =========================================
path                      method  payload
========================  ======  =========================================
``/services``             GET     registered services
``/services?template=K``  POST    register template ``K`` (501 without a
                                  registrar; 400 unknown template)
``/instances[?service=]`` GET     known instance observations
``/flows[?service=]``     GET     memorized flows
``/breakers``             GET     breaker states + timestamped transitions
``/migrations``           GET     migration outcomes
``/clusters``             GET     local clusters + switch counters
``/metrics``              GET     recorder counters/summaries + stats
``/metrics/links``        GET     link utilization + per-service rates
========================  ======  =========================================

Every GET payload is ``{"schema_version": ..., "site": ..., "now": ...,
<family>: [...]}``.
"""

from __future__ import annotations

import json
import typing as _t

from repro.net.packet import DataResponse, HTTPRequest, HTTPResponse
from repro.ops.model import SCHEMA_VERSION
from repro.ops.readmodel import OpsReadModel

__all__ = ["OPS_PORT", "OpsApp"]

#: Every site's EGS host serves the ops API here.
OPS_PORT = 7080

#: Query parameters each GET route accepts (strict: anything else 400s).
_ALLOWED_PARAMS: dict[str, frozenset[str]] = {
    "services": frozenset(),
    "instances": frozenset({"service"}),
    "flows": frozenset({"service"}),
    "breakers": frozenset(),
    "migrations": frozenset(),
    "clusters": frozenset(),
    "metrics": frozenset(),
}

#: Route families a GET may address (``/metrics/links`` is the one
#: two-segment path).
_GET_FAMILIES = frozenset(_ALLOWED_PARAMS) | {"metrics/links"}


class OpsApp:
    """The per-site operational REST endpoint (an ``Application``)."""

    def __init__(
        self,
        readmodel: OpsReadModel,
        register: _t.Callable[[str], _t.Any] | None = None,
    ) -> None:
        self.readmodel = readmodel
        #: ``POST /services`` hook: called with the template key; must
        #: raise ``KeyError`` for an unknown template and return the
        #: registered service.  ``None`` → 501 (read-only deployment).
        self.register = register

    def handle(
        self, request: HTTPRequest
    ) -> "_t.Generator[_t.Any, _t.Any, HTTPResponse]":
        return self._serve(request)
        yield  # pragma: no cover - generator protocol; never blocks

    # -- dispatch ----------------------------------------------------------

    def _serve(self, request: HTTPRequest) -> HTTPResponse:
        path, _, query = request.path.partition("?")
        route = path.strip("/")
        params: dict[str, str] = {}
        if query:
            for pair in query.split("&"):
                if "=" not in pair:
                    return HTTPResponse(status=400)
                name, value = pair.split("=", 1)
                params[name] = value

        if route == "services" and request.method == "POST":
            return self._register(params)
        if request.method != "GET":
            # POST/PUT/... against a known GET-only path is a method
            # error, not a missing resource.
            if route in _GET_FAMILIES:
                return HTTPResponse(status=405)
            return HTTPResponse(status=404)
        if route == "metrics/links":
            if params:
                return HTTPResponse(status=400)
            return self._metrics_links()
        allowed = _ALLOWED_PARAMS.get(route)
        if allowed is None:
            return HTTPResponse(status=404)
        if not set(params) <= allowed:
            return HTTPResponse(status=400)
        handler: _t.Callable[[dict[str, str]], HTTPResponse] = getattr(
            self, f"_get_{route}"
        )
        return handler(params)

    # -- responses ---------------------------------------------------------

    def _envelope(self, **families: _t.Any) -> DataResponse:
        payload: dict[str, _t.Any] = {
            "schema_version": SCHEMA_VERSION,
            "site": self.readmodel.site,
            "now": self.readmodel.env.now,
        }
        payload.update(families)
        return _json_response(200, payload)

    def _get_services(self, params: dict[str, str]) -> HTTPResponse:
        return self._envelope(
            services=[v.as_dict() for v in self.readmodel.services()]
        )

    def _get_instances(self, params: dict[str, str]) -> HTTPResponse:
        views = self.readmodel.instances()
        service = params.get("service")
        if service is not None:
            views = tuple(v for v in views if v.service_name == service)
        return self._envelope(instances=[v.as_dict() for v in views])

    def _get_flows(self, params: dict[str, str]) -> HTTPResponse:
        views = self.readmodel.flows()
        service = params.get("service")
        if service is not None:
            views = tuple(v for v in views if v.service_name == service)
        return self._envelope(flows=[v.as_dict() for v in views])

    def _get_breakers(self, params: dict[str, str]) -> HTTPResponse:
        return self._envelope(
            breakers=[v.as_dict() for v in self.readmodel.breakers()]
        )

    def _get_migrations(self, params: dict[str, str]) -> HTTPResponse:
        return self._envelope(
            migrations=[v.as_dict() for v in self.readmodel.migrations()]
        )

    def _get_clusters(self, params: dict[str, str]) -> HTTPResponse:
        return self._envelope(
            clusters=[v.as_dict() for v in self.readmodel.clusters()],
            switches=[v.as_dict() for v in self.readmodel.switches()],
        )

    def _get_metrics(self, params: dict[str, str]) -> HTTPResponse:
        return _json_response(200, self.readmodel.metrics())

    def _metrics_links(self) -> HTTPResponse:
        return self._envelope(
            links=[v.as_dict() for v in self.readmodel.link_stats()],
            service_rates=[
                v.as_dict() for v in self.readmodel.service_rates()
            ],
        )

    def _register(self, params: dict[str, str]) -> HTTPResponse:
        if self.register is None:
            return HTTPResponse(status=501)
        if set(params) != {"template"}:
            return HTTPResponse(status=400)
        try:
            service = self.register(params["template"])
        except (KeyError, ValueError):
            # Unknown template key or malformed service definition.
            return HTTPResponse(status=400)
        return _json_response(
            201,
            {
                "schema_version": SCHEMA_VERSION,
                "site": self.readmodel.site,
                "registered": getattr(service, "name", str(service)),
            },
        )


def _json_response(status: int, payload: dict[str, _t.Any]) -> DataResponse:
    """A response whose wire size is the payload's encoded length."""
    encoded = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return DataResponse(
        status=status, body_bytes=len(encoded), payload=payload
    )
