"""Recursive-descent parser for the YAML subset.

The parser works on logical lines: each carries its indentation depth,
its content, and its 1-based source line number (for error messages).
"""

from __future__ import annotations

import re
import typing as _t


class YamlError(ValueError):
    """Raised for any syntax error, annotated with the source line."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class _Line(_t.NamedTuple):
    indent: int
    content: str
    number: int


_BOOL_TRUE = {"true", "True", "TRUE", "yes", "Yes", "on", "On"}
_BOOL_FALSE = {"false", "False", "FALSE", "no", "No", "off", "Off"}
_NULLS = {"null", "Null", "NULL", "~", ""}

_INT_RE = re.compile(r"^[+-]?\d+$")
# Floats require a dot (PyYAML/K8s style): "1e3" stays a string, which
# keeps Kubernetes resource quantities like "1e3" intact.
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+)([eE][+-]?\d+)?$")


def parse_scalar(text: str) -> _t.Any:
    """Interpret a plain (unquoted) scalar string."""
    text = text.strip()
    if text in _NULLS:
        return None
    if text in _BOOL_TRUE:
        return True
    if text in _BOOL_FALSE:
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    return text


def _strip_comment(content: str) -> str:
    """Remove a trailing ``#`` comment, honouring quoted strings."""
    in_single = in_double = False
    for i, ch in enumerate(content):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            if i == 0 or content[i - 1] in " \t":
                return content[:i].rstrip()
    return content.rstrip()


def _unquote(text: str, line: int) -> _t.Any:
    """Decode a scalar that may be quoted."""
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        body = text[1:-1]
        # Handle the escape sequences K8s manifests actually use.
        return (
            body.replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\\\", "\\")
        )
    if len(text) >= 2 and text[0] == "'" and text[-1] == "'":
        return text[1:-1].replace("''", "'")
    if text.startswith(("'", '"')):
        raise YamlError(f"unterminated quoted scalar: {text!r}", line)
    return parse_scalar(text)


# ---------------------------------------------------------------------------
# Flow-style ([...] and {...}) parsing
# ---------------------------------------------------------------------------


def _split_flow_items(body: str, line: int) -> list[str]:
    """Split a flow body on top-level commas."""
    items: list[str] = []
    depth = 0
    in_single = in_double = False
    current: list[str] = []
    for ch in body:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        if not in_single and not in_double:
            if ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
                if depth < 0:
                    raise YamlError("unbalanced brackets in flow value", line)
            elif ch == "," and depth == 0:
                items.append("".join(current))
                current = []
                continue
        current.append(ch)
    if in_single or in_double:
        raise YamlError("unterminated quote in flow value", line)
    if depth != 0:
        raise YamlError("unbalanced brackets in flow value", line)
    tail = "".join(current).strip()
    if tail or items:
        items.append("".join(current))
    return [item.strip() for item in items if item.strip() or item != ""]


def _parse_flow(text: str, line: int) -> _t.Any:
    """Parse a flow-style value (``[...]``, ``{...}``, or scalar)."""
    text = text.strip()
    if text.startswith("[") and not text.endswith("]"):
        raise YamlError(f"unterminated flow sequence: {text!r}", line)
    if text.startswith("{") and not text.endswith("}"):
        raise YamlError(f"unterminated flow mapping: {text!r}", line)
    if text.startswith("[") and text.endswith("]"):
        body = text[1:-1].strip()
        if not body:
            return []
        return [_parse_flow(item, line) for item in _split_flow_items(body, line)]
    if text.startswith("{") and text.endswith("}"):
        body = text[1:-1].strip()
        result: dict[str, _t.Any] = {}
        if not body:
            return result
        for item in _split_flow_items(body, line):
            key, sep, value = item.partition(":")
            if not sep:
                raise YamlError(f"expected 'key: value' in flow mapping: {item!r}", line)
            result[str(_unquote(key, line))] = _parse_flow(value, line)
        return result
    return _unquote(text, line)


# ---------------------------------------------------------------------------
# Block parsing
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, lines: list[_Line]) -> None:
        self._lines = lines
        self._pos = 0

    def _peek(self) -> _Line | None:
        return self._lines[self._pos] if self._pos < len(self._lines) else None

    def _advance(self) -> _Line:
        line = self._lines[self._pos]
        self._pos += 1
        return line

    def parse_node(self, indent: int) -> _t.Any:
        """Parse the node starting at the current position."""
        line = self._peek()
        if line is None or line.indent < indent:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(line.indent)
        if self._looks_like_mapping_entry(line.content):
            return self._parse_mapping(line.indent)
        # A bare scalar or flow value as the whole node.
        self._advance()
        return self._parse_value_possibly_block(line.content, line)

    def _parse_sequence(self, indent: int) -> list[_t.Any]:
        items: list[_t.Any] = []
        while True:
            line = self._peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlError("unexpected indentation in sequence", line.number)
            if not (line.content.startswith("- ") or line.content == "-"):
                break
            self._advance()
            rest = line.content[1:].lstrip() if line.content != "-" else ""
            if not rest:
                # The item is a nested block on following lines.
                items.append(self.parse_node(indent + 1))
            elif rest.startswith("- ") or rest == "-":
                # Nested sequence written inline: "- - 1".  Re-insert the
                # remainder as a virtual line two columns deeper and let
                # the ordinary sequence parser consume it together with
                # its continuation lines.
                dash_offset = len(line.content) - len(rest)
                self._lines.insert(
                    self._pos,
                    _Line(line.indent + dash_offset, rest, line.number),
                )
                items.append(self.parse_node(line.indent + dash_offset))
            elif self._looks_like_mapping_entry(rest):
                items.append(self._parse_inline_mapping_item(rest, line))
            else:
                items.append(self._parse_value_possibly_block(rest, line))
        return items

    def _parse_inline_mapping_item(self, rest: str, line: _Line) -> dict:
        """A ``- key: value`` item: first pair inline, siblings below."""
        key, value_text = self._split_key(rest, line.number)
        mapping: dict[str, _t.Any] = {}
        # Effective indent of inline keys is the dash column + 2.
        child_indent = line.indent + 2
        if value_text:
            mapping[key] = self._parse_value_possibly_block(value_text, line)
        else:
            nxt = self._peek()
            if nxt is not None and nxt.indent > child_indent:
                mapping[key] = self.parse_node(nxt.indent)
            else:
                mapping[key] = None
        # Remaining keys of this mapping sit at child_indent.
        while True:
            nxt = self._peek()
            if nxt is None or nxt.indent != child_indent:
                break
            if nxt.content.startswith("- ") or nxt.content == "-":
                break
            if not self._looks_like_mapping_entry(nxt.content):
                break
            self._advance()
            k, v = self._split_key(nxt.content, nxt.number)
            mapping[k] = self._finish_mapping_value(v, nxt, child_indent)
        return mapping

    def _parse_mapping(self, indent: int) -> dict[str, _t.Any]:
        mapping: dict[str, _t.Any] = {}
        while True:
            line = self._peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlError("unexpected indentation in mapping", line.number)
            if line.content.startswith("- ") or line.content == "-":
                break
            if not self._looks_like_mapping_entry(line.content):
                raise YamlError(
                    f"expected 'key: value', got {line.content!r}", line.number
                )
            self._advance()
            key, value_text = self._split_key(line.content, line.number)
            if key in mapping:
                raise YamlError(f"duplicate mapping key {key!r}", line.number)
            mapping[key] = self._finish_mapping_value(value_text, line, indent)
        return mapping

    def _finish_mapping_value(
        self, value_text: str, line: _Line, indent: int
    ) -> _t.Any:
        if value_text:
            return self._parse_value_possibly_block(value_text, line)
        nxt = self._peek()
        if nxt is None:
            return None
        if nxt.indent > indent:
            return self.parse_node(nxt.indent)
        if nxt.indent == indent and (
            nxt.content.startswith("- ") or nxt.content == "-"
        ):
            # Sequences are commonly indented level with their key.
            return self._parse_sequence(indent)
        return None

    def _parse_value_possibly_block(self, text: str, line: _Line) -> _t.Any:
        if text == "|" or text.startswith("|"):
            return self._parse_literal_block(line)
        return _parse_flow(text, line.number)

    def _parse_literal_block(self, opener: _Line) -> str:
        """Collect a ``|`` literal block scalar."""
        chunks: list[str] = []
        block_indent: int | None = None
        while True:
            line = self._peek()
            if line is None or line.indent <= opener.indent:
                break
            if block_indent is None:
                block_indent = line.indent
            self._advance()
            chunks.append(" " * (line.indent - block_indent) + line.content)
        return "\n".join(chunks) + ("\n" if chunks else "")

    @staticmethod
    def _looks_like_mapping_entry(content: str) -> bool:
        """Whether ``content`` starts with a ``key:`` prefix."""
        in_single = in_double = False
        for i, ch in enumerate(content):
            if ch == "'" and not in_double:
                in_single = not in_single
            elif ch == '"' and not in_single:
                in_double = not in_double
            elif ch == ":" and not in_single and not in_double:
                return i + 1 == len(content) or content[i + 1] in " \t"
            elif ch in "[{" and not in_single and not in_double:
                return False
        return False

    @staticmethod
    def _split_key(content: str, number: int) -> tuple[str, str]:
        in_single = in_double = False
        for i, ch in enumerate(content):
            if ch == "'" and not in_double:
                in_single = not in_single
            elif ch == '"' and not in_single:
                in_double = not in_double
            elif ch == ":" and not in_single and not in_double:
                if i + 1 == len(content) or content[i + 1] in " \t":
                    key = str(_unquote(content[:i], number))
                    return key, content[i + 1 :].strip()
        raise YamlError(f"expected 'key: value', got {content!r}", number)


def _logical_lines(text: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", number)
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip(), number))
    return lines


def _raw_literal_lines(text: str) -> dict[int, str]:
    """Map line numbers to raw content (for literal blocks, pre-comment)."""
    return {n: raw for n, raw in enumerate(text.splitlines(), start=1)}


def load(text: str) -> _t.Any:
    """Parse a single-document YAML string.

    Raises :class:`YamlError` if the stream contains more than one
    document.
    """
    docs = load_all(text)
    if len(docs) > 1:
        raise YamlError(f"expected a single document, found {len(docs)}")
    return docs[0] if docs else None


def load_all(text: str) -> list[_t.Any]:
    """Parse a multi-document YAML string (documents split on ``---``)."""
    documents: list[_t.Any] = []
    current: list[str] = []
    chunks: list[str] = []
    for raw in text.splitlines():
        if raw.strip() == "---":
            chunks.append("\n".join(current))
            current = []
        elif raw.strip() == "...":
            continue
        else:
            current.append(raw)
    chunks.append("\n".join(current))

    for chunk in chunks:
        lines = _logical_lines(chunk)
        if not lines:
            continue
        parser = _Parser(lines)
        doc = parser.parse_node(0)
        leftover = parser._peek()
        if leftover is not None:
            raise YamlError(
                f"trailing content {leftover.content!r}", leftover.number
            )
        documents.append(doc)
    return documents
