"""A self-contained YAML-subset parser and emitter.

The paper's SDN controller reads edge-service definitions written in the
*Kubernetes Deployment* YAML format and annotates them before handing
them to a cluster.  The execution environment has no PyYAML, so this
package implements the subset of YAML those files actually use:

* block mappings and block sequences with indentation structure,
* flow-style lists ``[a, b]`` and mappings ``{k: v}``,
* plain / single-quoted / double-quoted scalars,
* ints, floats, booleans, ``null``, and strings,
* ``#`` comments and blank lines,
* multi-document streams separated by ``---``,
* literal block scalars (``|``).

Anchors, aliases, tags, and folded scalars are intentionally out of
scope — Kubernetes manifests in the wild rarely use them and the
paper's examples never do.
"""

from repro.yamlite.parser import YamlError, load, load_all
from repro.yamlite.emitter import dump

__all__ = ["YamlError", "dump", "load", "load_all"]
