"""Block-style YAML emitter for the subset in :mod:`repro.yamlite`.

Guarantees round-tripping through :func:`repro.yamlite.load` for any
tree of dicts, lists, strings, numbers, booleans, and ``None``.
"""

from __future__ import annotations

import re
import typing as _t

_PLAIN_SAFE = re.compile(r"^[A-Za-z_][A-Za-z0-9_./-]*$")

#: Strings that would be re-parsed as a non-string scalar and therefore
#: must be quoted on output.
_AMBIGUOUS = {
    "true", "True", "TRUE", "false", "False", "FALSE",
    "yes", "Yes", "no", "No", "on", "On", "off", "Off",
    "null", "Null", "NULL", "~", "",
}

_NUMERIC_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")


def _format_scalar(value: _t.Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return _format_string(value)
    raise TypeError(f"cannot emit scalar of type {type(value).__name__}")


def _format_string(value: str) -> str:
    if (
        value not in _AMBIGUOUS
        and not _NUMERIC_RE.match(value)
        and "\n" not in value
        and (_PLAIN_SAFE.match(value) or _plain_safe_relaxed(value))
    ):
        return value
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )
    return f'"{escaped}"'


def _plain_safe_relaxed(value: str) -> bool:
    """Plain-style safety for strings with spaces (e.g. image names)."""
    if value != value.strip():
        return False
    if value[0] in "!&*?|>%@`\"'#-[]{},:":
        return False
    for i, ch in enumerate(value):
        if ch in "#":
            return False
        if ch == ":" and (i + 1 == len(value) or value[i + 1] in " \t"):
            return False
        if ch in "[]{},\n\t":
            return False
    return True


def _emit(value: _t.Any, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        if not value:
            out.append(f"{pad}{{}}")
            return
        for key, item in value.items():
            key_text = _format_string(str(key))
            if isinstance(item, dict) and item:
                out.append(f"{pad}{key_text}:")
                _emit(item, indent + 1, out)
            elif isinstance(item, list) and item:
                out.append(f"{pad}{key_text}:")
                _emit(item, indent + 1, out)
            elif isinstance(item, dict):
                out.append(f"{pad}{key_text}: {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}{key_text}: []")
            else:
                out.append(f"{pad}{key_text}: {_format_scalar(item)}")
    elif isinstance(value, list):
        if not value:
            out.append(f"{pad}[]")
            return
        for item in value:
            if isinstance(item, (dict, list)) and item:
                nested: list[str] = []
                _emit(item, 0, nested)
                # First nested line joins the dash; the rest indent under it.
                out.append(f"{pad}- {nested[0]}")
                for extra in nested[1:]:
                    out.append(f"{pad}  {extra}")
            elif isinstance(item, dict):
                out.append(f"{pad}- {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}- []")
            else:
                out.append(f"{pad}- {_format_scalar(item)}")
    else:
        out.append(f"{pad}{_format_scalar(value)}")


def dump(value: _t.Any) -> str:
    """Serialize ``value`` as block-style YAML text."""
    out: list[str] = []
    _emit(value, 0, out)
    return "\n".join(out) + "\n"
