"""Automatic annotation of service definition files (§V).

Developers write a minimal Kubernetes-Deployment-style YAML — the only
mandatory datum is the image name.  The annotator

1. assigns a **worldwide-unique service name** derived from the
   registered cloud address ("something developers may easily forget"),
2. adds the ``matchLabels`` Kubernetes requires plus an
   ``edge.service`` label "to be able to address and query edge
   services in the cluster distinctly",
3. sets ``replicas: 0`` ("scale to zero") by default,
4. sets ``schedulerName`` when a Local Scheduler is configured,
5. generates a *Service* definition (exposed port, target port, TCP)
   unless the developer already included one,

and produces the cluster-neutral :class:`~repro.cluster.DeploymentPlan`
both adapters execute.
"""

from __future__ import annotations

import typing as _t

from repro import yamlite
from repro.cluster.plan import DeploymentPlan, PlannedContainer
from repro.containers.image import ImageSpec
from repro.net.addressing import IPv4Address
from repro.services.behavior import BehaviorRegistry


class AnnotationError(ValueError):
    """The service definition is missing required data or malformed."""


def unique_service_name(ip: IPv4Address, port: int) -> str:
    """The worldwide-unique name: derived from the unique (IP, port)
    combination that identifies a registered service (§II)."""
    return f"edge-{str(ip).replace('.', '-')}-{port}"


class Annotator:
    """Builds deployment plans from YAML service definitions."""

    def __init__(
        self,
        image_library: _t.Mapping[str, ImageSpec],
        behaviors: BehaviorRegistry,
        scheduler_name: str | None = None,
    ) -> None:
        self.image_library = dict(image_library)
        self.behaviors = behaviors
        self.scheduler_name = scheduler_name

    # -- public API --------------------------------------------------------

    def annotate(
        self,
        definition_yaml: str,
        cloud_ip: IPv4Address,
        port: int,
    ) -> tuple[DeploymentPlan, str]:
        """Process one service definition.

        Returns the plan plus the annotated YAML (Deployment +
        generated Service as a two-document stream) for inspection.
        """
        docs = yamlite.load_all(definition_yaml)
        if not docs:
            raise AnnotationError("empty service definition")
        deployment_doc = self._find_doc(docs, "Deployment")
        if deployment_doc is None:
            raise AnnotationError("no Deployment document in definition")
        service_doc = self._find_doc(docs, "Service")

        name = unique_service_name(cloud_ip, port)
        containers = self._parse_containers(deployment_doc, name)
        target_port = self._target_port(service_doc, containers)
        labels = {"app": name, "edge.service": name}

        plan = DeploymentPlan(
            service_name=name,
            labels=labels,
            containers=tuple(containers),
            target_port=target_port,
            scheduler_name=self.scheduler_name,
        )
        annotated = self._render_annotated(
            plan, deployment_doc, service_doc, exposed_port=port
        )
        return plan, annotated

    # -- parsing ------------------------------------------------------------

    @staticmethod
    def _find_doc(docs: _t.Sequence[_t.Any], kind: str) -> dict | None:
        for doc in docs:
            if isinstance(doc, dict) and doc.get("kind") == kind:
                return doc
        # A kind-less single document is treated as the Deployment.
        if kind == "Deployment" and len(docs) == 1 and isinstance(docs[0], dict):
            if "kind" not in docs[0]:
                return docs[0]
        return None

    def _parse_containers(
        self, deployment_doc: dict, service_name: str
    ) -> list[PlannedContainer]:
        try:
            raw = deployment_doc["spec"]["template"]["spec"]["containers"]
        except (KeyError, TypeError):
            raise AnnotationError(
                "definition lacks spec.template.spec.containers"
            ) from None
        if not isinstance(raw, list) or not raw:
            raise AnnotationError("containers must be a non-empty list")

        containers: list[PlannedContainer] = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise AnnotationError(f"container {index} is not a mapping")
            reference = entry.get("image")
            if not reference:
                raise AnnotationError(
                    f"container {index} is missing the mandatory image name"
                )
            image = self.image_library.get(reference)
            if image is None:
                raise AnnotationError(
                    f"image {reference!r} is unknown to the platform"
                )
            behavior = (
                self.behaviors.get(reference)
                if self.behaviors.known(reference)
                else None
            )
            ports = entry.get("ports") or []
            container_port = None
            for port_entry in ports:
                if isinstance(port_entry, dict) and "containerPort" in port_entry:
                    container_port = int(port_entry["containerPort"])
                    break
            env = {
                str(e["name"]): str(e.get("value", ""))
                for e in entry.get("env") or []
                if isinstance(e, dict) and "name" in e
            }
            mounts = {
                str(m["name"]): str(m.get("mountPath", ""))
                for m in entry.get("volumeMounts") or []
                if isinstance(m, dict) and "name" in m
            }
            containers.append(
                PlannedContainer(
                    name=str(entry.get("name") or f"c{index}"),
                    image=image,
                    container_port=container_port,
                    boot_time_s=behavior.boot_time_s if behavior else 0.0,
                    app_factory=behavior.app_factory() if behavior else None,
                    env=env,
                    volume_mounts=mounts,
                )
            )
        return containers

    @staticmethod
    def _target_port(
        service_doc: dict | None, containers: _t.Sequence[PlannedContainer]
    ) -> int:
        if service_doc is not None:
            try:
                ports = service_doc["spec"]["ports"]
                first = ports[0]
                return int(first.get("targetPort", first["port"]))
            except (KeyError, IndexError, TypeError):
                raise AnnotationError("Service document has no usable ports") from None
        for container in containers:
            if container.container_port is not None:
                return container.container_port
        raise AnnotationError(
            "no containerPort found and no Service document provided"
        )

    # -- annotated output -----------------------------------------------------

    def _render_annotated(
        self,
        plan: DeploymentPlan,
        deployment_doc: dict,
        service_doc: dict | None,
        exposed_port: int,
    ) -> str:
        labels = dict(plan.labels)
        annotated_dep = {
            "apiVersion": deployment_doc.get("apiVersion", "apps/v1"),
            "kind": "Deployment",
            "metadata": {"name": plan.service_name, "labels": labels},
            "spec": {
                "replicas": 0,
                "selector": {"matchLabels": labels},
                "template": {
                    "metadata": {"labels": labels},
                    "spec": {
                        "containers": [
                            self._container_doc(c) for c in plan.containers
                        ],
                        **(
                            {"schedulerName": plan.scheduler_name}
                            if plan.scheduler_name
                            else {}
                        ),
                    },
                },
            },
        }
        if service_doc is not None:
            annotated_svc = dict(service_doc)
            annotated_svc.setdefault("metadata", {})
            annotated_svc["metadata"]["name"] = plan.service_name
            annotated_svc["metadata"]["labels"] = labels
        else:
            annotated_svc = {
                "apiVersion": "v1",
                "kind": "Service",
                "metadata": {"name": plan.service_name, "labels": labels},
                "spec": {
                    "selector": labels,
                    "ports": [
                        {
                            "port": exposed_port,
                            "targetPort": plan.target_port,
                            "protocol": "TCP",
                        }
                    ],
                },
            }
        return yamlite.dump(annotated_dep) + "---\n" + yamlite.dump(annotated_svc)

    @staticmethod
    def _container_doc(container: PlannedContainer) -> dict:
        doc: dict[str, _t.Any] = {
            "name": container.name,
            "image": container.image.reference,
        }
        if container.container_port is not None:
            doc["ports"] = [{"containerPort": container.container_port}]
        if container.env:
            doc["env"] = [
                {"name": k, "value": v} for k, v in container.env.items()
            ]
        if container.volume_mounts:
            doc["volumeMounts"] = [
                {"name": k, "mountPath": v}
                for k, v in container.volume_mounts.items()
            ]
        return doc
