"""The FlowMemory component (§V).

The controller memorizes every redirection flow it installs.  This
lets switch idle timeouts stay *low* (small flow tables): when a
memorized client re-contacts a service after its switch entry expired,
the controller reinstalls the flow from memory without consulting the
scheduler.  Memorized flows carry their own (longer) idle timeout;
their expiry both prunes stale state and signals that a service
instance may have gone idle — the trigger for automatic scale-down.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.base import ServiceEndpoint
from repro.core.service_registry import EdgeService
from repro.core.state import ControlPlaneState, InMemoryState
from repro.net.addressing import IPv4Address
from repro.sim import Environment


@dataclasses.dataclass
class MemorizedFlow:
    """One remembered (client, service) → instance mapping."""

    client_ip: IPv4Address
    service: EdgeService
    #: Name of the cluster serving the flow ("cloud" for fallback).
    cluster_name: str
    endpoint: ServiceEndpoint
    created_at: float
    last_used: float
    #: Set when the flow is a graceful-degradation fallback: the name
    #: of the preferred cluster whose deployment failed.  Degraded
    #: flows are re-resolved — not just replayed from memory — once the
    #: preferred cluster's breaker stops blocking.
    degraded_from: str | None = None

    @property
    def key(self) -> tuple[IPv4Address, str]:
        return (self.client_ip, self.service.name)

    @property
    def degraded(self) -> bool:
        return self.degraded_from is not None


class FlowMemory:
    """All memorized flows, with idle-expiry sweeping."""

    def __init__(
        self,
        env: Environment,
        idle_timeout_s: float = 60.0,
        sweep_interval_s: float = 1.0,
        on_expire: _t.Callable[[MemorizedFlow], None] | None = None,
        state: ControlPlaneState | None = None,
    ) -> None:
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        self.env = env
        self.idle_timeout_s = float(idle_timeout_s)
        self.on_expire = on_expire
        # Memorized flows are *site-local* control-plane state: the
        # state object owns the mapping, we bind it once (it is stable
        # for the state's lifetime) and use it directly on the hot path.
        self.state = state if state is not None else InMemoryState()
        self._flows = self.state.flows
        # Sweep via a self-rechaining slim callback instead of a
        # generator process: one heap entry per tick, no suspended
        # generator frame.  The tick times accumulate by repeated float
        # addition exactly as the old ``yield timeout(interval)`` loop
        # did, so expiry (and scale-down) instants are unchanged.
        self._sweep_interval_s = float(sweep_interval_s)
        env.call_later(self._sweep_interval_s, self._sweep_tick)

    # -- core operations ---------------------------------------------------

    def remember(
        self,
        client_ip: IPv4Address,
        service: EdgeService,
        cluster_name: str,
        endpoint: ServiceEndpoint,
        degraded_from: str | None = None,
    ) -> MemorizedFlow:
        """Memorize (or refresh) the flow for (client, service)."""
        now = self.env.now
        flow = self._flows.get((client_ip, service.name))
        if flow is None:
            flow = MemorizedFlow(
                client_ip=client_ip,
                service=service,
                cluster_name=cluster_name,
                endpoint=endpoint,
                created_at=now,
                last_used=now,
                degraded_from=degraded_from,
            )
            self._flows[flow.key] = flow
        else:
            flow.cluster_name = cluster_name
            flow.endpoint = endpoint
            flow.last_used = now
            flow.degraded_from = degraded_from
        return flow

    def lookup(
        self, client_ip: IPv4Address, service: EdgeService
    ) -> MemorizedFlow | None:
        return self._flows.get((client_ip, service.name))

    def touch(self, flow: MemorizedFlow) -> None:
        flow.last_used = self.env.now

    def forget(self, flow: MemorizedFlow) -> None:
        self._flows.pop(flow.key, None)

    def forget_client(self, client_ip: IPv4Address) -> int:
        """Drop every memorized flow of one client (mobility
        invalidation: the client moved switches, so its memorized
        resolutions are stale).  Deliberately does **not** fire
        ``on_expire`` — the instances are not idle, the client is about
        to re-resolve and may land on them again.  Returns the number
        of flows forgotten."""
        stale = [
            flow for flow in self._flows.values() if flow.client_ip == client_ip
        ]
        for flow in stale:
            self._flows.pop(flow.key, None)
        return len(stale)

    def flows_for_client(self, client_ip: IPv4Address) -> list[MemorizedFlow]:
        """Every memorized flow of one client (mobility inspection)."""
        return [f for f in self._flows.values() if f.client_ip == client_ip]

    # -- service-level queries -------------------------------------------------

    def flows_for_service(self, service: EdgeService) -> list[MemorizedFlow]:
        return [f for f in self._flows.values() if f.service.name == service.name]

    def service_in_use(self, service: EdgeService) -> bool:
        """Does any client still have a memorized flow to this service?"""
        return any(
            f.service.name == service.name for f in self._flows.values()
        )

    def update_endpoint(
        self,
        service: EdgeService,
        cluster_name: str,
        endpoint: ServiceEndpoint,
    ) -> int:
        """Repoint all of a service's memorized flows (used when the
        BEST instance becomes ready after a no-waiting redirect).
        Returns the number of flows updated."""
        updated = 0
        for flow in self._flows.values():
            if flow.service.name == service.name:
                flow.cluster_name = cluster_name
                flow.endpoint = endpoint
                flow.degraded_from = None
                updated += 1
        return updated

    def mark_service_degraded(
        self, service: EdgeService, preferred_cluster: str
    ) -> int:
        """Tag every flow of ``service`` as degraded from
        ``preferred_cluster`` (its deployment failed); such flows are
        re-resolved instead of replayed once the cluster recovers.
        Returns the number of flows tagged."""
        tagged = 0
        for flow in self._flows.values():
            if (
                flow.service.name == service.name
                and flow.cluster_name != preferred_cluster
            ):
                flow.degraded_from = preferred_cluster
                tagged += 1
        return tagged

    def __len__(self) -> int:
        return len(self._flows)

    # -- expiry ---------------------------------------------------------------------

    def _sweep_tick(self) -> None:
        now = self.env.now
        expired = [
            flow
            for flow in self._flows.values()
            if now - flow.last_used >= self.idle_timeout_s
        ]
        for flow in expired:
            self._flows.pop(flow.key, None)
        # Callbacks run after the removal pass so service_in_use
        # reflects the post-expiry state.
        if self.on_expire is not None:
            for flow in expired:
                self.on_expire(flow)
        # Re-arm after the pass, as the generator loop did (its next
        # ``timeout(interval)`` was created on resume, after the
        # callbacks ran), so heap insertion order is unchanged too.
        self.env.call_later(self._sweep_interval_s, self._sweep_tick)
