"""Live stateful service migration with make-before-break continuity.

The paper's transparent-access promise breaks under mobility: flows are
invalidated when a client moves, but instances never follow, so a
relocated session keeps detouring to its old cluster.  This module
moves the instance — checkpoint, transfer over the *real* simulated
backbone links, start at the destination, and only then flip flows
make-before-break (Fondo-Ferreiro et al., arXiv:2009.01716):

* **Checkpoint transfer** is destination-initiated over a plain HTTP
  daemon every site's EGS host serves on :data:`MIGRATION_PORT`.  Each
  chunk is a real request/response pair, so the bytes pay real
  serialization on every link of the path (EGS link, trunk, backbone)
  and contend with data traffic — and the transfer behaves identically
  under the serial and the partitioned parallel kernel, because it
  *is* data traffic.
* **Pre-copy vs. stop-and-copy** is selectable per service
  (:class:`MigrationPolicy`): pre-copy iterates dirty-rate rounds
  (``dirty_{i+1} = dirty_rate × T_i``) until the residue is small,
  then freezes and ships only the residue — trading extra bytes for a
  short freeze; stop-and-copy freezes first and ships the whole
  checkpoint inside the downtime window.
* **Make-before-break flip**: the destination instance is pulled,
  created, started, and port-ready *before* anything touches the
  source.  The flip itself runs in a single event-loop instant — a
  gNB-conntrack snapshot, per-connection drain entries at
  :data:`~repro.core.controller.PRIORITY_DRAIN`, and the redirect swap
  are indivisible — so in-flight packets drain on the old path while
  new connections take the new one, and the flow-table epoch bump
  revalidates every memoized route at the same instant.
* **Abort safety**: every phase is hardened against the fault layer
  (node crash, link partition, registry outage).  Any failure aborts
  to a consistent state — the destination half-install is rolled back,
  the source is thawed (belt: an explicit ``/abort``; braces: a local
  auto-thaw timer that fires even if the destination vanished) and the
  session continues on the source.  A :class:`MigrationOutcome` with
  ``failed_phase`` mirrors ``DeploymentOutcome``, and aborts feed a
  per-source-site circuit breaker.
* **Planning**: a :class:`MigrationPlanner` admits, batches, and
  orders concurrent migrations under per-backbone-link bandwidth
  budgets tracked by a :class:`BandwidthLedger` (He/Toosi/Buyya,
  arXiv:2111.08936): smallest-checkpoint-first ordering, all-or-nothing
  link reservations, and per-transfer pacing to the admitted rate.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.dispatcher import FATAL_FAULTS, RETRYABLE_FAULTS
from repro.net.host import (
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimeout,
)
from repro.net.packet import HTTPRequest, HTTPResponse
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cluster.base import EdgeCluster, ServiceEndpoint
    from repro.core.controller import EdgeController
    from repro.core.service_registry import EdgeService
    from repro.net.addressing import IPv4Address
    from repro.net.host import Application, Host
    from repro.net.packet import HTTPResult

__all__ = [
    "MIGRATION_PORT",
    "BandwidthLedger",
    "FreezeGate",
    "MigrationError",
    "MigrationManager",
    "MigrationOutcome",
    "MigrationPlanner",
    "MigrationPolicy",
    "policy_for",
]

#: Every EGS host serves the migration daemon here.
MIGRATION_PORT = 7077

#: Network/infrastructure faults a migration phase must survive: TCP
#: errors from crashed hosts and partitioned links, plus the registry
#: and runtime faults the deployment pipeline already classifies.
MIGRATION_FAULTS = (
    ConnectionRefused,
    ConnectionReset,
    ConnectionTimeout,
) + RETRYABLE_FAULTS + FATAL_FAULTS


class MigrationError(Exception):
    """A migration phase failed in a way the protocol detected
    (unexpected daemon status, destination never became ready)."""


@dataclasses.dataclass(frozen=True)
class MigrationPolicy:
    """Per-service knobs of the checkpoint/transfer pipeline."""

    #: "precopy" (iterative dirty rounds, short freeze) or "stopcopy"
    #: (freeze first, one transfer inside the downtime window).
    mode: str = "precopy"
    #: Size of a full runtime checkpoint, drawn from the service spec.
    checkpoint_bytes: int = 8 << 20
    #: How fast the running instance dirties its state while a
    #: pre-copy round is in flight (bits/second).
    dirty_rate_bps: int = 64_000_000
    #: Stop iterating once the residue falls below this.
    stop_threshold_bytes: int = 256 << 10
    #: Bound on pre-copy rounds for services that dirty faster than
    #: the link ships (the final round ships the residue frozen).
    max_rounds: int = 5
    #: One HTTP transfer per chunk.
    chunk_bytes: int = 4 << 20
    #: Transfer rate the planner admits per migration (pacing target).
    rate_bps: int = 2_000_000_000
    #: How long the source keeps serving drained sessions after the
    #: flip before scaling the old instance down.
    drain_s: float = 1.0
    #: Source-side auto-thaw: a frozen instance unfreezes on its own
    #: after this long, so a vanished destination can never strand it.
    freeze_timeout_s: float = 5.0
    #: Per-chunk transfer timeout (partition detection).
    transfer_timeout_s: float = 10.0
    #: Destination readiness bound after scale-up.
    ready_timeout_s: float = 30.0


#: Spec-derived defaults per service template: checkpoint size scales
#: with the image footprint, dirty rate with how stateful the workload
#: is (static nginx barely dirties; the inference service churns).
DEFAULT_POLICIES: dict[str, MigrationPolicy] = {
    "asm": MigrationPolicy(checkpoint_bytes=256 << 10, dirty_rate_bps=8_000_000),
    "nginx": MigrationPolicy(checkpoint_bytes=24 << 20, dirty_rate_bps=16_000_000),
    "nginx-py": MigrationPolicy(
        checkpoint_bytes=32 << 20, dirty_rate_bps=64_000_000
    ),
    "resnet": MigrationPolicy(
        checkpoint_bytes=96 << 20, dirty_rate_bps=256_000_000
    ),
}


def policy_for(service: "EdgeService", mode: str | None = None) -> MigrationPolicy:
    """The migration policy for a service (template defaults, with an
    optional pre-copy/stop-and-copy override)."""
    key = getattr(service, "template_key", None)
    policy = DEFAULT_POLICIES.get(key or "", MigrationPolicy())
    if mode is not None and mode != policy.mode:
        policy = dataclasses.replace(policy, mode=mode)
    return policy


@dataclasses.dataclass
class MigrationOutcome:
    """Timing/byte breakdown of one migration (mirrors
    :class:`~repro.core.dispatcher.DeploymentOutcome`)."""

    service_name: str
    from_site: str
    to_site: str
    mode: str
    started_at: float = 0.0
    #: Pre-copy rounds executed (0 for stop-and-copy).
    rounds: int = 0
    #: Total checkpoint bytes shipped (all rounds + final).
    bytes_moved: int = 0
    #: Bytes shipped inside the freeze window.
    bytes_final: int = 0
    #: Source freeze -> source thaw confirmed (the continuity gap an
    #: active session can observe as added latency).
    downtime_s: float = 0.0
    total_s: float = 0.0
    completed: bool = False
    #: Phase that failed ("admission" / "prepare" / "precopy" /
    #: "freeze" / "final_copy" / "activate" / "flip" / "release"),
    #: or None when the migration completed.
    failed_phase: str | None = None
    error: str | None = None
    #: True when the abort tore a half-installed destination back down.
    rolled_back: bool = False


class _PendingApp:
    """Placeholder application while a FreezeGate is being wired in
    (never handles a request — the swap is atomic)."""

    def handle(self, request: HTTPRequest):  # pragma: no cover
        raise RuntimeError("freeze gate not wired")
        yield


_PENDING_APP = _PendingApp()


class FreezeGate:
    """Wraps a migrating instance's application during the freeze.

    The listener (and its open port) stays up, so new connections
    complete their handshake and queue instead of being refused —
    frozen time shows up as added latency, never as an error.  ``thaw``
    releases every queued request to the inner application in FIFO
    order.
    """

    def __init__(self, env: Environment, inner: "Application") -> None:
        self.env = env
        self.inner = inner
        self.frozen = False
        #: When the current freeze began — lets the auto-thaw timer
        #: tell "still my freeze" from "re-frozen since I was armed".
        self.frozen_at: float | None = None
        self._waiters: list[_t.Any] = []
        #: Diagnostics: most requests ever queued behind the gate.
        self.queued_peak = 0

    def freeze(self) -> None:
        self.frozen = True
        self.frozen_at = self.env.now

    def thaw(self) -> None:
        self.frozen = False
        self.frozen_at = None
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(None)

    def handle(self, request: HTTPRequest):
        while self.frozen:
            event = self.env.event()
            self._waiters.append(event)
            if len(self._waiters) > self.queued_peak:
                self.queued_peak = len(self._waiters)
            yield event
        response = yield from self.inner.handle(request)
        return response


class BandwidthLedger:
    """Committed migration bandwidth per backbone link.

    The planner reserves ``rate_bps`` on every link a transfer crosses
    (all-or-nothing) and releases it on completion or abort.  Every
    reservation change appends to :attr:`trace`, so a run can prove
    after the fact that no link was ever committed past its budget.
    """

    def __init__(self, env: Environment, default_capacity_bps: int) -> None:
        self.env = env
        self.default_capacity_bps = int(default_capacity_bps)
        self._capacity: dict[str, int] = {}
        self._committed: dict[str, int] = {}
        #: (time, link, committed_bps_after_change) per change.
        self.trace: list[tuple[float, str, int]] = []

    def set_capacity(self, link: str, capacity_bps: int) -> None:
        self._capacity[link] = int(capacity_bps)

    def capacity(self, link: str) -> int:
        return self._capacity.get(link, self.default_capacity_bps)

    def committed(self, link: str) -> int:
        return self._committed.get(link, 0)

    def available(self, link: str) -> int:
        return self.capacity(link) - self.committed(link)

    def reserve(self, links: _t.Sequence[str], rate_bps: int) -> bool:
        """Commit ``rate_bps`` on every link, or nothing at all."""
        if any(self.available(link) < rate_bps for link in links):
            return False
        for link in links:
            self._committed[link] = self.committed(link) + rate_bps
            self.trace.append((self.env.now, link, self._committed[link]))
        return True

    def release(self, links: _t.Sequence[str], rate_bps: int) -> None:
        for link in links:
            self._committed[link] = max(0, self.committed(link) - rate_bps)
            self.trace.append((self.env.now, link, self._committed[link]))

    def oversubscriptions(self) -> list[tuple[float, str, int]]:
        """Trace entries that exceeded the link's budget (empty on a
        correctly admitted run)."""
        return [
            (t, link, committed)
            for (t, link, committed) in self.trace
            if committed > self.capacity(link)
        ]


@dataclasses.dataclass
class _MigrationRequest:
    """One queued migration (destination-side planner entry)."""

    service_name: str
    from_site: str
    policy: MigrationPolicy
    done: _t.Any  # event fired with the MigrationOutcome


@dataclasses.dataclass
class _Export:
    """Source-side state of one outbound migration."""

    service: "EdgeService"
    cluster: "EdgeCluster"
    port: int
    gate: FreezeGate | None = None
    released: bool = False


class MigrationPlanner:
    """Admission control for concurrent inbound migrations.

    Orders the queue smallest-checkpoint-first (shortest job first
    minimizes mean completion under a shared budget, per
    He/Toosi/Buyya), reserves the source and destination trunk budgets
    all-or-nothing, and starts every admissible transfer — batching
    falls out naturally: whatever fits the ledger runs concurrently,
    the rest waits for a release.
    """

    def __init__(self, manager: "MigrationManager", ledger: BandwidthLedger) -> None:
        self.manager = manager
        self.ledger = ledger
        self._queue: list[_MigrationRequest] = []
        self._pump_armed = False
        #: Diagnostics: how often a request had to wait for bandwidth.
        self.deferred = 0

    @staticmethod
    def link_for(site: str) -> str:
        """Ledger key of one site's backbone trunk."""
        return f"trunk:{site}"

    def links_for(self, request: _MigrationRequest) -> tuple[str, ...]:
        source = self.link_for(request.from_site)
        dest = self.link_for(self.manager.site)
        return (source,) if source == dest else (source, dest)

    def submit(self, request: _MigrationRequest) -> None:
        self._queue.append(request)
        self._arm()

    def _arm(self) -> None:
        if not self._pump_armed:
            self._pump_armed = True
            self.manager.env.call_later(0.0, self._pump)

    def _pump(self) -> None:
        self._pump_armed = False
        self._queue.sort(key=lambda r: (r.policy.checkpoint_bytes, r.service_name))
        still_waiting: list[_MigrationRequest] = []
        for request in self._queue:
            links = self.links_for(request)
            if self.ledger.reserve(links, request.policy.rate_bps):
                self.manager._start_admitted(request, links)
            else:
                self.deferred += 1
                still_waiting.append(request)
        self._queue = still_waiting

    def released(self) -> None:
        """A transfer finished: re-examine the queue."""
        if self._queue:
            self._arm()


class MigrationManager:
    """Per-site migration endpoint: source daemon + destination pipeline.

    One manager runs on every site.  As a *source* it serves the
    migration daemon on its EGS host (checkpoint reads, freeze/release/
    abort control) and performs the source-side release: flip local
    flows to the remote destination, mark the instance evicting, thaw,
    and scale down after the drain.  As a *destination* it runs the
    admission-controlled pipeline: prepare → (pre-copy) → freeze →
    final copy → activate → flip → release.
    """

    def __init__(
        self,
        env: Environment,
        site: str,
        controller: "EdgeController",
        cluster: "EdgeCluster",
        host: "Host",
        peers: dict[str, "IPv4Address"],
        ledger: BandwidthLedger,
    ) -> None:
        self.env = env
        self.site = site
        self.controller = controller
        self.cluster = cluster
        self.host = host
        #: site name -> EGS address serving that site's daemon.
        self.peers = dict(peers)
        self.ledger = ledger
        self.planner = MigrationPlanner(self, ledger)
        self.recorder = controller.recorder
        #: Completed/aborted outcomes, in finish order (diagnostics).
        self.outcomes: list[MigrationOutcome] = []
        #: Source-side exports in progress, by service name.
        self._exports: dict[str, _Export] = {}
        #: Destination-side migrations in flight, by service name.
        self._inbound: dict[str, _t.Any] = {}
        host.open_port(MIGRATION_PORT, _MigrationDaemon(self))

    def inbound_count(self) -> int:
        """Destination-side migrations currently in flight."""
        return len(self._inbound)

    def export_count(self) -> int:
        """Source-side exports currently live (released ones linger
        only for the drain window)."""
        return len(self._exports)

    # -- destination side: submission --------------------------------------

    def request_migration(
        self,
        service_name: str,
        from_site: str,
        mode: str | None = None,
        policy: MigrationPolicy | None = None,
    ) -> _t.Any:
        """Queue a migration of ``service_name`` from ``from_site`` to
        this site.  Returns an event fired with the
        :class:`MigrationOutcome` (concurrent requests for the same
        service share one)."""
        pending = self._inbound.get(service_name)
        if pending is not None:
            return pending
        done = self.env.event()
        self._inbound[service_name] = done
        if policy is None:
            service = self.controller.state.service_named(service_name)
            policy = (
                policy_for(service, mode)
                if service is not None
                else MigrationPolicy()
            )
        elif mode is not None and mode != policy.mode:
            policy = dataclasses.replace(policy, mode=mode)
        self.planner.submit(
            _MigrationRequest(
                service_name=service_name,
                from_site=from_site,
                policy=policy,
                done=done,
            )
        )
        return done

    def _start_admitted(
        self, request: _MigrationRequest, links: tuple[str, ...]
    ) -> None:
        self.env.process(
            self._run_admitted(request, links),
            name=f"migrate:{request.service_name}:{request.from_site}->{self.site}",
        )

    def _run_admitted(self, request: _MigrationRequest, links: tuple[str, ...]):
        try:
            outcome = yield from self._migrate(request)
        finally:
            self.ledger.release(links, request.policy.rate_bps)
            self._inbound.pop(request.service_name, None)
            self.planner.released()
        self.outcomes.append(outcome)
        if not request.done.triggered:
            request.done.succeed(outcome)
        return outcome

    # -- destination side: the pipeline -------------------------------------

    def _migrate(self, request: _MigrationRequest):
        policy = request.policy
        outcome = MigrationOutcome(
            service_name=request.service_name,
            from_site=request.from_site,
            to_site=self.site,
            mode=policy.mode,
            started_at=self.env.now,
        )
        self.recorder.count(f"migrations_started/{self.site}")
        self.recorder.mark("migrations", self.env.now)

        service = self.controller.state.service_named(request.service_name)
        src_ip = self.peers.get(request.from_site)
        if service is None or src_ip is None or request.from_site == self.site:
            outcome.failed_phase = "admission"
            outcome.error = (
                "unknown service"
                if service is None
                else "unknown peer site"
                if src_ip is None
                else "source == destination"
            )
            return self._finish_aborted(outcome)
        plan = service.plan
        cluster = self.cluster

        if cluster.is_running(plan):
            # Already here (a concurrent deployment won the race): the
            # make-before-break flip and source release still apply.
            endpoint = cluster.endpoint(plan)
            assert endpoint is not None
            self._flip(service, endpoint)
            ok = yield from self._release_source(
                src_ip, service, endpoint, policy, outcome
            )
            if not ok:
                return self._finish_aborted(outcome)
            return self._finish_completed(outcome)

        # Phase: prepare — pull + create at the destination before the
        # source is touched at all (make before break).
        scaled = False
        try:
            if not cluster.image_cached(plan):
                yield from cluster.pull(plan)
            if not cluster.is_created(plan):
                yield from cluster.create(plan)
        except MIGRATION_FAULTS as exc:
            yield from self._abort(outcome, "prepare", exc, src_ip, scaled)
            return self._finish_aborted(outcome)

        # Phase: activate — warm-start the destination instance *now*,
        # before any state moves: container boot (the expensive part)
        # happens outside the freeze window; checkpoint state is
        # applied as it arrives (application itself is instantaneous
        # in the model — the transfer is what pays).  Nothing resolves
        # to the instance until the flip publishes it.
        try:
            yield from cluster.scale_up(plan)
            scaled = True
            ready = yield from cluster.wait_ready(
                plan, timeout_s=policy.ready_timeout_s
            )
            if not ready:
                raise MigrationError(
                    f"destination port not open within {policy.ready_timeout_s}s"
                )
        except MIGRATION_FAULTS + (MigrationError,) as exc:
            yield from self._abort(outcome, "activate", exc, src_ip, scaled)
            return self._finish_aborted(outcome)

        # Phase: precopy — iterative rounds against the live source.
        final_bytes = policy.checkpoint_bytes
        if policy.mode == "precopy":
            to_send = policy.checkpoint_bytes
            try:
                while True:
                    t0 = self.env.now
                    yield from self._transfer(src_ip, service, to_send, policy)
                    outcome.bytes_moved += to_send
                    outcome.rounds += 1
                    round_s = self.env.now - t0
                    dirty = min(
                        int(policy.dirty_rate_bps * round_s / 8.0), to_send
                    )
                    if (
                        dirty <= policy.stop_threshold_bytes
                        or outcome.rounds >= policy.max_rounds
                    ):
                        final_bytes = dirty
                        break
                    to_send = dirty
            except MIGRATION_FAULTS as exc:
                yield from self._abort(outcome, "precopy", exc, src_ip, scaled)
                return self._finish_aborted(outcome)

        # Phase: freeze — the source stops mutating state; its port
        # stays open, so new requests queue rather than fail.
        try:
            yield from self._control(
                src_ip,
                f"/migrate/freeze/{service.name}"
                f"?timeout={policy.freeze_timeout_s!r}",
                policy,
            )
        except MIGRATION_FAULTS + (MigrationError,) as exc:
            yield from self._abort(outcome, "freeze", exc, src_ip, scaled)
            return self._finish_aborted(outcome)
        froze_at = self.env.now

        # Phase: final_copy — the frozen residue (or, for
        # stop-and-copy, the whole checkpoint) ships inside the
        # downtime window.
        try:
            if final_bytes > 0:
                yield from self._transfer(src_ip, service, final_bytes, policy)
                outcome.bytes_moved += final_bytes
                outcome.bytes_final = final_bytes
        except MIGRATION_FAULTS as exc:
            yield from self._abort(outcome, "final_copy", exc, src_ip, scaled)
            return self._finish_aborted(outcome)

        # Phase: flip — one event-loop instant, no yields: drains in,
        # redirects swapped, memory repointed, instance published.
        endpoint = cluster.endpoint(plan)
        assert endpoint is not None
        self._flip(service, endpoint)

        # Phase: release — the source flips its own flows to us, thaws,
        # drains, and scales down.  Only now is the source withdrawn.
        ok = yield from self._release_source(
            src_ip, service, endpoint, policy, outcome
        )
        if not ok:
            # The destination is live and flipped; a source that
            # crashed before acknowledging release cannot un-happen
            # the migration — its auto-thaw/fault handling owns the
            # leftover instance.  The session continues *here*.
            outcome.failed_phase = None
            outcome.error = (outcome.error or "") + " (release unacknowledged)"
        outcome.downtime_s = self.env.now - froze_at
        return self._finish_completed(outcome)

    def _flip(self, service: "EdgeService", endpoint: "ServiceEndpoint") -> None:
        """Atomic make-before-break switch-over at the destination."""
        self.controller.repoint_service_flows(
            service, self.cluster.name, endpoint
        )
        dispatcher = self.controller.dispatcher
        if dispatcher.on_instance_change is not None:
            dispatcher._publish_instance(service, self.cluster, running=True)

    def _release_source(
        self,
        src_ip: "IPv4Address",
        service: "EdgeService",
        endpoint: "ServiceEndpoint",
        policy: MigrationPolicy,
        outcome: MigrationOutcome,
    ):
        """Tell the source to flip, thaw, drain, and scale down.
        Generator returning bool (acknowledged?)."""
        path = (
            f"/migrate/release/{service.name}"
            f"?site={self.site}&cluster={self.cluster.name}"
            f"&ip={endpoint.ip}&port={endpoint.port}"
        )
        try:
            yield from self._control(src_ip, path, policy)
        except MIGRATION_FAULTS + (MigrationError,) as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.failed_phase = "release"
            return False
        return True

    # -- destination side: transport ----------------------------------------

    def _transfer(
        self,
        src_ip: "IPv4Address",
        service: "EdgeService",
        nbytes: int,
        policy: MigrationPolicy,
    ):
        """Pull ``nbytes`` of checkpoint state over the real links,
        paced to the admitted rate (generator; raises on faults)."""
        sent = 0
        while sent < nbytes:
            chunk = min(policy.chunk_bytes, nbytes - sent)
            t0 = self.env.now
            result: "HTTPResult" = yield from self.host.http_request(
                src_ip,
                MIGRATION_PORT,
                HTTPRequest("GET", f"/migrate/state/{service.name}?bytes={chunk}"),
                timeout=policy.transfer_timeout_s,
            )
            if result.response.status != 200:
                raise MigrationError(
                    f"source refused checkpoint read "
                    f"(status {result.response.status})"
                )
            sent += chunk
            if policy.rate_bps > 0:
                target_s = chunk * 8.0 / policy.rate_bps
                elapsed = self.env.now - t0
                if elapsed < target_s:
                    yield self.env.timeout(target_s - elapsed)

    def _control(
        self, src_ip: "IPv4Address", path: str, policy: MigrationPolicy
    ):
        """One control POST to the source daemon (generator; raises
        :class:`MigrationError` on a non-200 answer)."""
        result: "HTTPResult" = yield from self.host.http_request(
            src_ip,
            MIGRATION_PORT,
            HTTPRequest("POST", path),
            timeout=policy.transfer_timeout_s,
        )
        if result.response.status != 200:
            raise MigrationError(
                f"daemon rejected {path} (status {result.response.status})"
            )
        return result

    # -- destination side: abort/rollback ------------------------------------

    def _abort(
        self,
        outcome: MigrationOutcome,
        phase: str,
        exc: BaseException,
        src_ip: "IPv4Address",
        scaled: bool,
    ):
        """Abort to a consistent state: stamp the outcome, tear down a
        half-started destination instance, and best-effort thaw the
        source (its auto-thaw timer covers us if this cannot get
        through).  The session stays on the source, untouched."""
        outcome.failed_phase = phase
        outcome.error = f"{type(exc).__name__}: {exc}"
        service = self.controller.state.service_named(outcome.service_name)
        if scaled and service is not None:
            try:
                yield from self.cluster.scale_down(service.plan)
                outcome.rolled_back = True
                self.recorder.count(f"migrations_rolled_back/{self.site}")
            except MIGRATION_FAULTS:
                pass  # destination runtime is itself faulted; injector owns it
        try:
            yield from self.host.http_request(
                src_ip,
                MIGRATION_PORT,
                HTTPRequest("POST", f"/migrate/abort/{outcome.service_name}"),
                timeout=1.0,
            )
        except MIGRATION_FAULTS:
            pass  # source unreachable: its freeze auto-thaw handles it

    def _finish_aborted(self, outcome: MigrationOutcome) -> MigrationOutcome:
        outcome.total_s = self.env.now - outcome.started_at
        self.recorder.count(f"migrations_aborted/{self.site}")
        dispatcher = self.controller.dispatcher
        if dispatcher.breaker_enabled:
            dispatcher.breaker_for(f"migration:{outcome.from_site}").record_failure()
        return outcome

    def _finish_completed(self, outcome: MigrationOutcome) -> MigrationOutcome:
        outcome.completed = True
        outcome.total_s = self.env.now - outcome.started_at
        self.recorder.count(f"migrations_completed/{self.site}")
        self.recorder.record("migration/bytes_moved", float(outcome.bytes_moved))
        self.recorder.record("migration/downtime_s", outcome.downtime_s)
        self.recorder.record("migration/total_s", outcome.total_s)
        dispatcher = self.controller.dispatcher
        if dispatcher.breaker_enabled:
            breaker = dispatcher.breakers.get(f"migration:{outcome.from_site}")
            if breaker is not None:
                breaker.record_success()
        return outcome

    # -- source side: daemon verbs -------------------------------------------

    def _serve(self, request: HTTPRequest) -> HTTPResponse:
        path, _, query = request.path.partition("?")
        parts = path.strip("/").split("/")
        if len(parts) != 3 or parts[0] != "migrate":
            return HTTPResponse(status=404)
        verb, service_name = parts[1], parts[2]
        params = dict(
            pair.split("=", 1) for pair in query.split("&") if "=" in pair
        )
        if verb == "state" and request.method == "GET":
            return self._serve_state(service_name, params)
        if verb == "freeze" and request.method == "POST":
            return self._serve_freeze(service_name, params)
        if verb == "release" and request.method == "POST":
            return self._serve_release(service_name, params)
        if verb == "abort" and request.method == "POST":
            return self._serve_abort(service_name)
        return HTTPResponse(status=404)

    def _source_instance(
        self, service_name: str
    ) -> tuple["EdgeService", "EdgeCluster", int] | None:
        """The locally running instance of ``service_name`` (source
        side of an export), or None."""
        service = self.controller.state.service_named(service_name)
        if service is None:
            return None
        for cluster in self.controller.clusters:
            endpoint = cluster.endpoint(service.plan)
            if endpoint is not None and cluster.ingress_host.port_is_open(
                endpoint.port
            ):
                return service, cluster, endpoint.port
        return None

    def _serve_state(
        self, service_name: str, params: dict[str, str]
    ) -> HTTPResponse:
        try:
            nbytes = int(params.get("bytes", "0"))
        except ValueError:
            return HTTPResponse(status=400)
        if nbytes < 0:
            return HTTPResponse(status=400)
        if (
            service_name not in self._exports
            and self._source_instance(service_name) is None
        ):
            return HTTPResponse(status=404)
        # The response body *is* the checkpoint chunk: its bytes pay
        # real serialization on every link back to the destination.
        return HTTPResponse(status=200, body_bytes=nbytes)

    def _serve_freeze(
        self, service_name: str, params: dict[str, str]
    ) -> HTTPResponse:
        export = self._exports.get(service_name)
        if export is None:
            located = self._source_instance(service_name)
            if located is None:
                return HTTPResponse(status=404)
            service, cluster, port = located
            export = _Export(service=service, cluster=cluster, port=port)
            self._exports[service_name] = export
        if export.gate is None:
            ingress = export.cluster.ingress_host
            gate = FreezeGate(self.env, _PENDING_APP)
            # swap_app installs the gate and hands back the instance's
            # real application in one instant — no packet interleaves.
            gate.inner = ingress.swap_app(export.port, gate)
            export.gate = gate
        export.gate.freeze()
        # The destination drives the migration, so *its* policy owns
        # the freeze budget; the local template policy is only the
        # fallback for a request that did not carry one.
        try:
            timeout_s = float(params["timeout"])
        except (KeyError, ValueError):
            timeout_s = policy_for(export.service).freeze_timeout_s
        self.env.call_later(
            timeout_s, self._auto_thaw, service_name, self.env.now
        )
        self.recorder.count(f"migrations_frozen/{self.site}")
        return HTTPResponse(status=200)

    def _auto_thaw(self, service_name: str, frozen_at: float) -> None:
        """Safety valve: a destination that died mid-final-copy can
        never strand a frozen source — the freeze expires on its own
        and the instance keeps serving locally."""
        export = self._exports.get(service_name)
        if export is None or export.released:
            return
        gate = export.gate
        if gate is None or not gate.frozen or gate.frozen_at != frozen_at:
            return  # released, aborted, or re-frozen since this timer
        self.recorder.count(f"migrations_auto_thawed/{self.site}")
        # The destination went silent past the freeze budget: the
        # migration is dead from this side.  Thaw the queued requests,
        # unwrap the gate and drop the export so nothing stays
        # half-migrated on the source.
        self._dismantle_export(service_name, export)

    def _dismantle_export(self, service_name: str, export: _Export) -> None:
        """Undo an un-released export: release queued requests, put the
        instance's real application back on the port, forget the
        export."""
        gate = export.gate
        if gate is not None:
            if gate.frozen:
                gate.thaw()
            if gate.inner is not _PENDING_APP:
                export.cluster.ingress_host.swap_app(export.port, gate.inner)
            export.gate = None
        self._exports.pop(service_name, None)

    def _serve_release(
        self, service_name: str, params: dict[str, str]
    ) -> HTTPResponse:
        from repro.cluster.base import ServiceEndpoint
        from repro.net.addressing import IPv4Address

        export = self._exports.get(service_name)
        if export is None:
            located = self._source_instance(service_name)
            if located is None:
                return HTTPResponse(status=404)
            service, cluster, port = located
            export = _Export(service=service, cluster=cluster, port=port)
            self._exports[service_name] = export
        try:
            dest_site = params["site"]
            dest_cluster = params["cluster"]
            dest_ep = ServiceEndpoint(
                ip=IPv4Address.parse(params["ip"]), port=int(params["port"])
            )
        except (KeyError, ValueError):
            return HTTPResponse(status=400)

        service, cluster = export.service, export.cluster
        remote_name = f"{dest_site}/{dest_cluster}"
        dispatcher = self.controller.dispatcher
        # Make-before-break, source half (one instant): local flows
        # flip to the remote destination with per-connection drains;
        # the dying instance is hidden from fresh resolutions; peers
        # learn the old location is gone *after* they learned the new
        # one exists (the destination published before releasing).
        self.controller.repoint_service_flows(service, remote_name, dest_ep)
        dispatcher.evicting.add((service.name, cluster.name))
        if dispatcher.on_instance_change is not None:
            dispatcher._publish_instance(service, cluster, running=False)
        export.released = True
        if export.gate is not None and export.gate.frozen:
            export.gate.thaw()
        policy = policy_for(service)
        self.env.process(
            self._drain_and_scale_down(service, cluster, policy.drain_s),
            name=f"migrate-drain:{service.name}@{self.site}",
        )
        self.recorder.count(f"migrations_released/{self.site}")
        return HTTPResponse(status=200)

    def _drain_and_scale_down(
        self, service: "EdgeService", cluster: "EdgeCluster", drain_s: float
    ):
        """Keep the old instance alive for the drain window (queued and
        in-flight exchanges finish on it), then scale it down."""
        yield self.env.timeout(drain_s)
        try:
            yield from cluster.scale_down(service.plan)
        except MIGRATION_FAULTS:
            pass  # the node died during the drain; injector owns cleanup
        finally:
            self.controller.dispatcher.evicting.discard(
                (service.name, cluster.name)
            )
            self._exports.pop(service.name, None)

    def _serve_abort(self, service_name: str) -> HTTPResponse:
        export = self._exports.get(service_name)
        if export is not None and not export.released:
            self.controller.dispatcher.evicting.discard(
                (service_name, export.cluster.name)
            )
            self._dismantle_export(service_name, export)
        self.recorder.count(f"migrations_source_aborts/{self.site}")
        return HTTPResponse(status=200)


class _MigrationDaemon:
    """The per-EGS migration HTTP endpoint (an :class:`Application`)."""

    def __init__(self, manager: MigrationManager) -> None:
        self._manager = manager

    def handle(self, request: HTTPRequest):
        return self._manager._serve(request)
        yield  # pragma: no cover - generator protocol; never blocks
