"""Typed control-plane state (DESIGN.md §9).

:class:`ControlPlaneState` is the interface every mutable controller
store hides behind; :class:`InMemoryState` is the single-controller
implementation.  The federated, replicated implementation lives in
:mod:`repro.core.federation.state`.
"""

from repro.core.state.base import (
    ControlPlaneState,
    InstanceRecord,
    LinkStatsRecord,
)
from repro.core.state.memory import InMemoryState

__all__ = [
    "ControlPlaneState",
    "InMemoryState",
    "InstanceRecord",
    "LinkStatsRecord",
]
