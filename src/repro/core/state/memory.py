"""The single-controller state implementation: plain dicts.

Exactly the dictionaries the monolithic controller components used to
own privately, moved behind :class:`ControlPlaneState`.  No
versioning, no propagation — every read observes every prior write
immediately, and iteration order is dict insertion order, so the
single-controller configuration behaves bit-for-bit as before the
state extraction.
"""

from __future__ import annotations

import typing as _t

from repro.core.state.base import (
    ControlPlaneState,
    InstanceRecord,
    LinkStatsRecord,
)

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.flow_memory import MemorizedFlow
    from repro.core.schedulers.base import ClientInfo
    from repro.core.service_registry import EdgeService
    from repro.faults.breaker import CircuitBreaker
    from repro.net.addressing import IPv4Address

__all__ = ["InMemoryState"]


class InMemoryState(ControlPlaneState):
    """All control-plane state in local dictionaries."""

    def __init__(self) -> None:
        self._by_address: dict[tuple[IPv4Address, int], EdgeService] = {}
        self._by_name: dict[str, EdgeService] = {}
        self._clients: dict[_t.Any, ClientInfo] = {}
        self._instances: dict[tuple[str, str, str], InstanceRecord] = {}
        self._flows: dict[tuple[IPv4Address, str], MemorizedFlow] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._link_stats: dict[tuple[str, str], LinkStatsRecord] = {}

    # -- registered services ------------------------------------------------

    def put_service(self, service: "EdgeService") -> None:
        self._by_address[service.address] = service
        self._by_name[service.name] = service

    def remove_service(self, service: "EdgeService") -> None:
        self._by_address.pop(service.address, None)
        self._by_name.pop(service.name, None)

    def service_at(self, ip: "IPv4Address", port: int) -> "EdgeService | None":
        return self._by_address.get((ip, port))

    def service_named(self, name: str) -> "EdgeService | None":
        return self._by_name.get(name)

    def services(self) -> "list[EdgeService]":
        return sorted(self._by_address.values(), key=lambda s: s.name)

    def service_count(self) -> int:
        return len(self._by_address)

    # -- client locations -----------------------------------------------------

    def put_client(self, info: "ClientInfo") -> None:
        self._clients[info.ip] = info

    def client(self, ip: object) -> "ClientInfo | None":
        return self._clients.get(ip)

    @property
    def client_map(self) -> "_t.MutableMapping[_t.Any, ClientInfo]":
        return self._clients

    # -- instance views --------------------------------------------------------

    def publish_instance(self, record: InstanceRecord) -> None:
        key = (record.service_name, record.site, record.cluster_name)
        self._instances[key] = record

    def instances_for(self, service_name: str) -> list[InstanceRecord]:
        return sorted(
            (
                record
                for record in self._instances.values()
                if record.service_name == service_name
            ),
            key=lambda r: (r.site, r.cluster_name),
        )

    # -- link-utilization views --------------------------------------------------

    def publish_link_stats(self, record: LinkStatsRecord) -> None:
        self._link_stats[(record.site, record.link)] = record

    def link_stats(self) -> list[LinkStatsRecord]:
        return sorted(
            self._link_stats.values(), key=lambda r: (r.site, r.link)
        )

    # -- site-local stores ------------------------------------------------------

    @property
    def flows(
        self,
    ) -> "_t.MutableMapping[tuple[IPv4Address, str], MemorizedFlow]":
        return self._flows

    @property
    def breakers(self) -> "_t.MutableMapping[str, CircuitBreaker]":
        return self._breakers
