"""The typed control-plane state interface.

Every piece of *mutable* controller state — registered services,
client locations, memorized flows, circuit breakers, and published
instance views — lives behind :class:`ControlPlaneState`.  The
components (:class:`~repro.core.service_registry.ServiceRegistry`,
:class:`~repro.core.flow_memory.FlowMemory`,
:class:`~repro.core.dispatcher.Dispatcher`) hold *logic only* and
operate on whichever state implementation they are handed:

* :class:`~repro.core.state.memory.InMemoryState` — plain dicts, the
  single-controller configuration (today's behaviour, bit for bit);
* :class:`~repro.core.federation.state.SiteReplica` — a per-site
  replica of the shared control plane with simulated propagation
  latency and last-writer-wins versioning (the distributed
  configuration of DESIGN.md §9).

The split follows the consistency needs of each store:

* **Replicated stores** (services, client locations, instance views)
  are accessed through *methods*, so a replica can version writes and
  schedule their propagation.
* **Site-local stores** (memorized flows, circuit breakers) are
  exposed as raw mutable mappings — each site owns its switches'
  flows and its own failure detectors outright, so there is nothing
  to replicate and the owning component may bind the mapping once and
  use it directly on the hot path.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cluster.plan import ServiceEndpoint
    from repro.core.flow_memory import MemorizedFlow
    from repro.core.schedulers.base import ClientInfo
    from repro.core.service_registry import EdgeService
    from repro.faults.breaker import CircuitBreaker
    from repro.net.addressing import IPv4Address

__all__ = ["ControlPlaneState", "InstanceRecord", "LinkStatsRecord"]


@dataclasses.dataclass(frozen=True)
class InstanceRecord:
    """One published service-instance observation.

    Sites publish these when a deployment finishes or an instance is
    scaled down; remote sites read them (possibly stale) to consider
    far-away running instances in their FAST/BEST decisions.
    """

    service_name: str
    cluster_name: str
    #: Identifier of the site operating the cluster.
    site: str
    running: bool
    endpoint: "ServiceEndpoint | None"
    #: The cluster's latency tier as seen from its *own* site.
    distance: int
    #: Simulated time of the observation at the publishing site.
    observed_at: float


@dataclasses.dataclass(frozen=True)
class LinkStatsRecord:
    """One published link-utilization observation.

    Produced by the per-site
    :class:`~repro.ops.collector.FlowStatsCollector` from switch
    flow/port counter deltas; replicated so remote sites (and
    utilization-aware schedulers) see federation-wide link load.
    """

    #: Identifier of the site publishing the observation.
    site: str
    #: Name of the observed link (e.g. ``"trunk:site0"``).
    link: str
    #: Simulated time of the observation at the publishing site.
    observed_at: float
    #: Width of the delta window the rates were computed over.
    window_s: float
    #: Packets forwarded by the observed switch during the window.
    packets_per_s: float
    #: Estimated bits/s on the link during the window.
    bits_per_s: float
    #: ``bits_per_s`` over the link's configured bandwidth (0.0 when
    #: the bandwidth is unknown/unbounded); may exceed 1.0 briefly
    #: because the estimate is counter-derived, not wire-sampled.
    utilization: float


class ControlPlaneState(abc.ABC):
    """All mutable control-plane state, behind one typed interface."""

    # -- registered services (replicated) ----------------------------------

    @abc.abstractmethod
    def put_service(self, service: "EdgeService") -> None:
        """Add a registered service (last writer wins on conflicts)."""

    @abc.abstractmethod
    def remove_service(self, service: "EdgeService") -> None:
        """Drop a service registration (idempotent)."""

    @abc.abstractmethod
    def service_at(self, ip: "IPv4Address", port: int) -> "EdgeService | None":
        """The service registered at ``ip:port``, if any."""

    @abc.abstractmethod
    def service_named(self, name: str) -> "EdgeService | None":
        """The service with worldwide-unique ``name``, if any."""

    @abc.abstractmethod
    def services(self) -> "list[EdgeService]":
        """All registered services, sorted by name."""

    @abc.abstractmethod
    def service_count(self) -> int:
        """Number of registered services."""

    # -- client locations (replicated) -------------------------------------

    @abc.abstractmethod
    def put_client(self, info: "ClientInfo") -> None:
        """Record a client's latest observed location."""

    @abc.abstractmethod
    def client(self, ip: object) -> "ClientInfo | None":
        """Last known location of ``ip``, if any."""

    @property
    @abc.abstractmethod
    def client_map(self) -> "_t.MutableMapping[_t.Any, ClientInfo]":
        """The local view of client locations (read-mostly access)."""

    # -- instance views (replicated) ----------------------------------------

    @abc.abstractmethod
    def publish_instance(self, record: InstanceRecord) -> None:
        """Publish an instance observation for remote consumption."""

    @abc.abstractmethod
    def instances_for(self, service_name: str) -> list[InstanceRecord]:
        """All known instance observations for ``service_name``,
        ordered deterministically by (site, cluster name)."""

    # -- link-utilization views (replicated) ---------------------------------

    @abc.abstractmethod
    def publish_link_stats(self, record: LinkStatsRecord) -> None:
        """Publish a link-utilization observation for remote consumption."""

    @abc.abstractmethod
    def link_stats(self) -> list[LinkStatsRecord]:
        """All known link observations, ordered by (site, link)."""

    # -- memorized flows (site-local) ----------------------------------------

    @property
    @abc.abstractmethod
    def flows(
        self,
    ) -> "_t.MutableMapping[tuple[IPv4Address, str], MemorizedFlow]":
        """This site's memorized (client, service) flows."""

    # -- circuit breakers (site-local) ---------------------------------------

    @property
    @abc.abstractmethod
    def breakers(self) -> "_t.MutableMapping[str, CircuitBreaker]":
        """This site's per-cluster circuit breakers."""
