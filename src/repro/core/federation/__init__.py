"""Federated (multi-site) control plane.

``repro.core.federation`` shards the monolithic edge controller into
per-site :class:`SiteController` instances that coordinate only
through a replicated :class:`SharedStateHub` — the paper's
architecture scaled out to many gNB sites with explicit state-
propagation latency, stale-view accounting, and graceful degradation
under control-plane partitions.
"""

from repro.core.federation.remote import RemoteClusterView
from repro.core.federation.site import SiteController, SiteDispatcher
from repro.core.federation.state import (
    HubLike,
    RemoteHubHandle,
    ReplicaLink,
    SharedStateHub,
    SiteReplica,
    VersionStamp,
)

__all__ = [
    "HubLike",
    "RemoteClusterView",
    "RemoteHubHandle",
    "ReplicaLink",
    "SharedStateHub",
    "SiteController",
    "SiteDispatcher",
    "SiteReplica",
    "VersionStamp",
]
