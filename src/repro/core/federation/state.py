"""The shared control-plane state: hub, per-site replicas, versioning.

The federated control plane replicates three stores across sites —
registered services, client locations, and instance views — through a
logically centralised **shared-state service** (etcd/Redis in a real
deployment, :class:`SharedStateHub` here).  Memorized flows and
circuit breakers stay site-local (each site owns its switches and its
failure detectors outright).

Consistency model (DESIGN.md §9):

* Every replicated entry is a **last-writer-wins register** stamped
  with a :class:`VersionStamp` — a Lamport clock paired with the
  writing site's id, compared lexicographically, so concurrent writes
  resolve identically (and deterministically) everywhere.
* A site **reads its own writes** immediately: local writes apply to
  the site replica before they start propagating.
* Propagation is asynchronous with explicit simulated latency:
  ``propagation_delay_s`` one-way to the hub, the same again from the
  hub to every other replica — remote sites observe a write after two
  one-way delays.  Until then their views are *stale*, which the
  dispatcher surfaces as ``stale_redirects`` metrics rather than
  hiding.
* A **partition** between a site and the hub (``ReplicaLink.down``)
  buffers traffic in both directions — the site's outbound writes in
  the link's outbox, the hub's fan-out in a per-site inbox — and the
  site degrades to serving from its local view.  Healing the link
  drains both buffers in FIFO order, each message paying the normal
  one-way delay; last-writer-wins stamps make the replay convergent.
"""

from __future__ import annotations

import typing as _t

from repro.core.state.base import (
    ControlPlaneState,
    InstanceRecord,
    LinkStatsRecord,
)
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.flow_memory import MemorizedFlow
    from repro.core.schedulers.base import ClientInfo
    from repro.core.service_registry import EdgeService
    from repro.faults.breaker import CircuitBreaker
    from repro.net.addressing import IPv4Address

__all__ = [
    "HubLike",
    "RemoteHubHandle",
    "ReplicaLink",
    "SharedStateHub",
    "SiteReplica",
    "VersionStamp",
]


class VersionStamp(_t.NamedTuple):
    """Lamport-clock version of one replicated entry.

    Compared lexicographically: higher Lamport time wins, site id
    breaks ties — every replica resolves a conflict the same way.
    """

    lamport: int
    site: str


#: (store domain, entry key) — the unit of versioning.
StateKey = _t.Tuple[str, _t.Any]

#: One replicated write in flight: domain, key, value, stamp.
StateUpdate = _t.Tuple[str, _t.Any, _t.Any, VersionStamp]


class HubLike(_t.Protocol):
    """What a :class:`SiteReplica`'s link needs from "the hub".

    In the monolithic testbed this is the :class:`SharedStateHub`
    itself; under the partitioned kernel each site partition holds a
    :class:`RemoteHubHandle` that forwards writes over a control
    channel instead.
    """

    def submit(self, origin: str, update: StateUpdate) -> None: ...

    def on_link_restored(self, site: str) -> None: ...

    def version_of(self, domain: str, key: _t.Any) -> "VersionStamp | None": ...


class ReplicaLink:
    """The (partitionable) channel between one site and the hub.

    Duck-types the ``down`` flag of a data-plane link so the fault
    injector's :class:`~repro.faults.plan.LinkPartition` can target it
    by name via the testbed's ``named_links`` table.  While down,
    site-to-hub writes queue in :attr:`outbox` and hub-to-site
    deliveries queue in :attr:`inbox`; setting ``down = False`` drains
    both (FIFO, each message paying the normal one-way delay).
    """

    def __init__(self, env: Environment, hub: HubLike, site: str) -> None:
        self.env = env
        self.hub = hub
        self.site = site
        self._down = False
        self.outbox: list[StateUpdate] = []
        self.inbox: list[StateUpdate] = []
        #: Diagnostics: how often the link was partitioned.
        self.partitions = 0

    @property
    def down(self) -> bool:
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        if value == self._down:
            return
        self._down = value
        if value:
            self.partitions += 1
        else:
            self.hub.on_link_restored(self.site)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self._down else "up"
        return f"<ReplicaLink {self.site}<->shared-state {state}>"


class SharedStateHub:
    """The logically centralised shared-state service.

    Holds the authoritative (most recently arrived, LWW-resolved) copy
    of every replicated entry and fans writes out to all other site
    replicas.  The authoritative versions also let the metrics layer
    ask "was this site's view stale when it decided?" without
    perturbing the data path.
    """

    def __init__(
        self, env: Environment, propagation_delay_s: float = 0.025
    ) -> None:
        if propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be >= 0")
        self.env = env
        #: One-way site -> hub (and hub -> site) latency.
        self.propagation_delay_s = float(propagation_delay_s)
        self.replicas: dict[str, SiteReplica] = {}
        #: Remote (cross-partition) sites: site name -> send callable
        #: shipping one update over that site's control channel.
        self._remote_sites: dict[
            str, _t.Callable[[StateUpdate], None]
        ] = {}
        self._values: dict[StateKey, _t.Any] = {}
        self._versions: dict[StateKey, VersionStamp] = {}

    @property
    def lookahead_s(self) -> float:
        """Conservative-sync window of the control plane.

        A state update submitted at time ``t`` cannot reach any replica
        before ``t + propagation_delay_s``, so a partitioned run that
        cuts the federation at the hub may advance each site by exactly
        this much between synchronizations.  Zero (hub co-located with
        the sites) means control-plane channels cannot be cut — the
        partitioner rejects them, mirroring zero-latency data links.
        """
        return self.propagation_delay_s

    # -- wiring ------------------------------------------------------------

    def connect(self, site: str) -> "SiteReplica":
        """Create (and register) the replica for one site."""
        if site in self.replicas:
            raise ValueError(f"site {site!r} already connected")
        replica = SiteReplica(self.env, site, ReplicaLink(self.env, self, site))
        self.replicas[site] = replica
        return replica

    def attach_remote(
        self, site: str, send: _t.Callable[[StateUpdate], None]
    ) -> None:
        """Register a site living in *another partition*.

        The hub never holds a replica object for a remote site — just a
        ``send`` callable that ships one :data:`StateUpdate` over the
        site's control channel (the partitioned kernel wires it to a
        portal whose lookahead is :attr:`propagation_delay_s`, so the
        hub -> site leg pays exactly the in-process delay).
        """
        if site in self.replicas or site in self._remote_sites:
            raise ValueError(f"site {site!r} already connected")
        self._remote_sites[site] = send

    # -- write propagation -------------------------------------------------

    def submit(self, origin: str, update: StateUpdate) -> None:
        """A site's write arriving over its (up) link."""
        self.env.call_later(
            self.propagation_delay_s, self.deliver, origin, update
        )

    def deliver(self, origin: str, update: StateUpdate) -> None:
        """One write *arriving at the hub* (site -> hub delay already
        paid): LWW-store it, then fan out to every other site — local
        replicas via ``call_later``, remote partitions via their
        control-channel send."""
        domain, key, value, stamp = update
        state_key = (domain, key)
        current = self._versions.get(state_key)
        if current is None or stamp > current:
            self._versions[state_key] = stamp
            self._values[state_key] = value
        for site, replica in self.replicas.items():
            if site == origin:
                continue
            link = replica.link
            if link.down:
                link.inbox.append(update)
            else:
                self.env.call_later(
                    self.propagation_delay_s, replica.apply_remote, update
                )
        for site, send in self._remote_sites.items():
            if site == origin:
                continue
            send(update)

    # Pre-partitioning internal name, kept for API stability.
    _receive = deliver

    def on_link_restored(self, site: str) -> None:
        """Drain both directions of a healed site link."""
        replica = self.replicas[site]
        link = replica.link
        outbox, link.outbox = link.outbox, []
        for update in outbox:
            self.submit(site, update)
        inbox, link.inbox = link.inbox, []
        for update in inbox:
            self.env.call_later(
                self.propagation_delay_s, replica.apply_remote, update
            )

    # -- authoritative reads (metrics / tests) -----------------------------

    def version_of(self, domain: str, key: _t.Any) -> VersionStamp | None:
        return self._versions.get((domain, key))

    def value_of(self, domain: str, key: _t.Any) -> _t.Any:
        return self._values.get((domain, key))


class SiteReplica(ControlPlaneState):
    """One site's replica of the shared control-plane state.

    Implements :class:`~repro.core.state.ControlPlaneState`, so every
    existing component (registry, flow memory, dispatcher, controller)
    runs unmodified against it.  Replicated writes apply locally first
    (read-your-writes), then travel ``site -> hub -> other sites`` with
    one one-way delay per leg; incoming remote writes apply through
    last-writer-wins version comparison.
    """

    def __init__(self, env: Environment, site: str, link: ReplicaLink) -> None:
        self.env = env
        self.site = site
        self.link = link
        self._clock = 0
        self._versions: dict[StateKey, VersionStamp] = {}
        #: Separate Lamport stream for the observability (linkstats)
        #: domain: link-utilization publishing must never advance the
        #: data-path clock, or enabling the collector would shift the
        #: VersionStamps of service/client/instance writes and could
        #: flip LWW winners — breaking the md5-neutrality guarantee.
        self._stats_clock = 0
        self._stats_versions: dict[StateKey, VersionStamp] = {}
        # Replicated stores (local views).
        self._by_address: dict[tuple[IPv4Address, int], EdgeService] = {}
        self._by_name: dict[str, EdgeService] = {}
        self._clients: dict[_t.Any, ClientInfo] = {}
        self._instances: dict[tuple[str, str, str], InstanceRecord] = {}
        self._link_stats: dict[tuple[str, str], LinkStatsRecord] = {}
        # Site-local stores.
        self._flows: dict[tuple[IPv4Address, str], MemorizedFlow] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Fired when a *remote* write adds/removes a service —
        #: the site controller uses these to (un)install intercepts.
        self.on_service_added: _t.Callable[[EdgeService], None] | None = None
        self.on_service_removed: _t.Callable[[EdgeService], None] | None = None
        #: Fired when a *remote* write changes an instance record — the
        #: site controller uses this to heal flows pinned to an
        #: instance another site just withdrew (migration release).
        self.on_instance_changed: _t.Callable[[InstanceRecord], None] | None = None

    # -- write plumbing ----------------------------------------------------

    def _local_write(self, domain: str, key: _t.Any, value: _t.Any) -> None:
        self._clock += 1
        stamp = VersionStamp(self._clock, self.site)
        self._versions[(domain, key)] = stamp
        self._apply(domain, key, value, remote=False)
        update: StateUpdate = (domain, key, value, stamp)
        if self.link.down:
            self.link.outbox.append(update)
        else:
            self.link.hub.submit(self.site, update)

    def apply_remote(self, update: StateUpdate) -> None:
        domain, key, value, stamp = update
        if domain == "linkstats":
            self._apply_remote_stats(key, value, stamp)
            return
        if stamp.lamport > self._clock:
            self._clock = stamp.lamport
        state_key = (domain, key)
        current = self._versions.get(state_key)
        if current is not None and stamp <= current:
            return  # stale or duplicate delivery: LWW keeps ours
        self._versions[state_key] = stamp
        self._apply(domain, key, value, remote=True)

    def _apply(
        self, domain: str, key: _t.Any, value: _t.Any, remote: bool
    ) -> None:
        if domain == "service":
            if value is None:
                service = self._by_address.pop(key, None)
                if service is not None:
                    self._by_name.pop(service.name, None)
                    if remote and self.on_service_removed is not None:
                        self.on_service_removed(service)
            else:
                self._by_address[key] = value
                self._by_name[value.name] = value
                if remote and self.on_service_added is not None:
                    self.on_service_added(value)
        elif domain == "client":
            self._clients[key] = value
        elif domain == "instance":
            self._instances[key] = value
            if remote and self.on_instance_changed is not None:
                self.on_instance_changed(value)
        else:  # pragma: no cover - new domains must be wired here
            raise ValueError(f"unknown state domain {domain!r}")

    def _apply_remote_stats(
        self, key: _t.Any, value: _t.Any, stamp: VersionStamp
    ) -> None:
        """LWW-apply a remote linkstats write on the *stats* clock."""
        if stamp.lamport > self._stats_clock:
            self._stats_clock = stamp.lamport
        state_key: StateKey = ("linkstats", key)
        current = self._stats_versions.get(state_key)
        if current is not None and stamp <= current:
            return
        self._stats_versions[state_key] = stamp
        self._link_stats[key] = value

    # -- staleness introspection (metrics only) ----------------------------

    def instance_is_stale(
        self, service_name: str, site: str, cluster_name: str
    ) -> bool:
        """Has the hub accepted a newer version of this instance entry
        than the one this site decided on?  (Metrics only — the data
        path never peeks at the hub.)"""
        key = (service_name, site, cluster_name)
        authoritative = self.link.hub.version_of("instance", key)
        if authoritative is None:
            return False
        return self._versions.get(("instance", key)) != authoritative

    # -- ControlPlaneState: services ---------------------------------------

    def put_service(self, service: "EdgeService") -> None:
        self._local_write("service", service.address, service)

    def remove_service(self, service: "EdgeService") -> None:
        self._local_write("service", service.address, None)

    def service_at(self, ip: "IPv4Address", port: int) -> "EdgeService | None":
        return self._by_address.get((ip, port))

    def service_named(self, name: str) -> "EdgeService | None":
        return self._by_name.get(name)

    def services(self) -> "list[EdgeService]":
        return sorted(self._by_address.values(), key=lambda s: s.name)

    def service_count(self) -> int:
        return len(self._by_address)

    # -- ControlPlaneState: client locations -------------------------------

    def put_client(self, info: "ClientInfo") -> None:
        """Record a client observation.

        Only *location changes* (new client, or a different datapath)
        replicate — per-packet ``last_seen`` refreshes stay local, so
        steady-state traffic costs no propagation events.
        """
        previous = self._clients.get(info.ip)
        if previous is None or previous.datapath_id != info.datapath_id:
            self._local_write("client", info.ip, info)
        else:
            self._clients[info.ip] = info

    def client(self, ip: object) -> "ClientInfo | None":
        return self._clients.get(ip)

    @property
    def client_map(self) -> "_t.MutableMapping[_t.Any, ClientInfo]":
        return self._clients

    # -- ControlPlaneState: instance views ---------------------------------

    def publish_instance(self, record: InstanceRecord) -> None:
        key = (record.service_name, record.site, record.cluster_name)
        self._local_write("instance", key, record)

    def instance(
        self, service_name: str, site: str, cluster_name: str
    ) -> InstanceRecord | None:
        return self._instances.get((service_name, site, cluster_name))

    def instances_for(self, service_name: str) -> list[InstanceRecord]:
        return sorted(
            (
                record
                for record in self._instances.values()
                if record.service_name == service_name
            ),
            key=lambda r: (r.site, r.cluster_name),
        )

    # -- ControlPlaneState: link-utilization views -------------------------

    def publish_link_stats(self, record: LinkStatsRecord) -> None:
        """Publish a link observation on the dedicated stats clock.

        Same propagation path as every replicated write (local apply,
        then site -> hub -> other sites), but versioned on
        :attr:`_stats_clock` so the data-path Lamport stream is
        untouched whether or not the collector runs.
        """
        key = (record.site, record.link)
        self._stats_clock += 1
        stamp = VersionStamp(self._stats_clock, self.site)
        self._stats_versions[("linkstats", key)] = stamp
        self._link_stats[key] = record
        update: StateUpdate = ("linkstats", key, record, stamp)
        if self.link.down:
            self.link.outbox.append(update)
        else:
            self.link.hub.submit(self.site, update)

    def link_stats(self) -> list[LinkStatsRecord]:
        return sorted(
            self._link_stats.values(), key=lambda r: (r.site, r.link)
        )

    # -- ControlPlaneState: site-local stores ------------------------------

    @property
    def flows(
        self,
    ) -> "_t.MutableMapping[tuple[IPv4Address, str], MemorizedFlow]":
        return self._flows

    @property
    def breakers(self) -> "_t.MutableMapping[str, CircuitBreaker]":
        return self._breakers

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SiteReplica {self.site} clock={self._clock}>"


class RemoteHubHandle:
    """A site partition's stand-in for the (remote) shared-state hub.

    Satisfies :class:`HubLike` so a :class:`SiteReplica` runs
    unmodified inside a forked worker:

    * :meth:`submit` ships the update over the site's outbound control
      channel (the portal's lookahead is the propagation delay, so the
      site -> hub leg costs exactly what :meth:`SharedStateHub.submit`
      charges in-process);
    * :meth:`version_of` answers ``None`` — the authoritative versions
      live in the backbone partition, so staleness introspection
      degrades to "never stale".  Crucially it degrades *identically*
      under the serial executor and the parallel coordinator (both run
      the same partitioned build), so parity gating is unaffected;
    * :meth:`on_link_restored` drains the site link's outbox through
      :meth:`submit` (hub-to-site inbox draining is the backbone
      partition's job).
    """

    def __init__(self, send: _t.Callable[[StateUpdate], None]) -> None:
        self._send = send
        #: Bound after the ReplicaLink exists (the two reference each
        #: other); needed only to drain the outbox on link heal.
        self.link: ReplicaLink | None = None

    def submit(self, origin: str, update: StateUpdate) -> None:
        self._send(update)

    def on_link_restored(self, site: str) -> None:
        link = self.link
        if link is None:  # pragma: no cover - wiring error
            return
        outbox, link.outbox = link.outbox, []
        for update in outbox:
            self.submit(site, update)

    def version_of(self, domain: str, key: _t.Any) -> VersionStamp | None:
        return None
