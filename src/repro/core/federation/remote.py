"""Remote instance views presented to the scheduler as clusters.

The Global Scheduler stays a pure function over
:class:`~repro.core.schedulers.base.ClusterState` sequences — it never
learns about federation.  A :class:`RemoteClusterView` wraps one
replicated :class:`~repro.core.state.InstanceRecord` in just enough of
the :class:`~repro.cluster.base.EdgeCluster` surface for scheduling
and redirection; anything that would *operate* on the remote cluster
(pull / create / scale-up) raises, because deployments are the owning
site's job.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.base import DeployError, ServiceEndpoint
from repro.core.state import InstanceRecord

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.services.definition import DeploymentPlan


class RemoteClusterView:
    """A running instance at another site, seen through shared state.

    Named ``"{site}/{cluster}"`` so memorized flows and metrics keys
    say where the traffic went (local cluster names must not contain
    ``"/"``).  ``has_capacity_for`` is always False: a remote site is a
    redirect target only while its instance is *running* — this site
    never deploys there (each site's dispatcher owns exactly its own
    clusters), which the
    :attr:`~repro.core.schedulers.base.ClusterState.eligible` rule
    encodes for free.
    """

    __slots__ = ("record", "distance")

    def __init__(self, record: InstanceRecord, distance_penalty: int) -> None:
        self.record = record
        #: The owning site's view of its cluster distance, pushed out
        #: by the extra cross-site backbone hops.
        self.distance = record.distance + distance_penalty

    @property
    def name(self) -> str:
        return f"{self.record.site}/{self.record.cluster_name}"

    # -- read-only EdgeCluster surface -------------------------------------

    def is_running(self, plan: "DeploymentPlan") -> bool:
        return self.record.running

    def is_created(self, plan: "DeploymentPlan") -> bool:
        return self.record.running

    def image_cached(self, plan: "DeploymentPlan") -> bool:
        return self.record.running

    def endpoint(self, plan: "DeploymentPlan") -> ServiceEndpoint | None:
        return self.record.endpoint

    def running_count(self) -> int:
        return 1 if self.record.running else 0

    # -- mutations are the owning site's business --------------------------

    def _refuse(self, verb: str) -> _t.NoReturn:
        raise DeployError(
            f"{self.name}: cannot {verb} through a remote view — "
            f"deployments belong to site {self.record.site!r}"
        )

    def pull(self, plan: "DeploymentPlan") -> "_t.Generator[_t.Any, _t.Any, None]":  # pragma: no cover - guarded
        self._refuse("pull")
        yield  # unreachable; keeps the generator protocol

    def create(self, plan: "DeploymentPlan") -> "_t.Generator[_t.Any, _t.Any, None]":  # pragma: no cover - guarded
        self._refuse("create")
        yield

    def scale_up(self, plan: "DeploymentPlan") -> "_t.Generator[_t.Any, _t.Any, None]":  # pragma: no cover - guarded
        self._refuse("scale up")
        yield

    def scale_down(self, plan: "DeploymentPlan") -> "_t.Generator[_t.Any, _t.Any, None]":
        """No-op: the owning site's idle tracking scales it down."""
        return
        yield  # pragma: no cover - generator protocol

    def wait_ready(self, plan: "DeploymentPlan", **_kwargs: _t.Any) -> "_t.Generator[_t.Any, _t.Any, bool]":
        """A replicated *running* record is by definition ready."""
        return self.record.running
        yield  # pragma: no cover - generator protocol

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self.record.running else "stopped"
        return f"<RemoteClusterView {self.name} {state} d={self.distance}>"
