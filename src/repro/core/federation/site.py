"""Per-site controller and dispatcher.

A :class:`SiteController` is an :class:`~repro.core.controller.EdgeController`
that owns exactly one site — its gNB switches, its clusters, its flow
memory and breakers — and coordinates with peers only through its
:class:`~repro.core.federation.state.SiteReplica`:

* deployments it performs are announced as instance records,
* peers' running instances show up in scheduling as
  :class:`~repro.core.federation.remote.RemoteClusterView` candidates,
* services registered anywhere get intercept flows installed here when
  the registration replicates in,
* while the site's shared-state link is partitioned it degrades to the
  local view: local instances (and the cloud) keep serving, remote
  candidates vanish, and every write queues for the heal.
"""

from __future__ import annotations

import typing as _t

from repro.core.controller import ControllerConfig, EdgeController
from repro.core.dispatcher import Dispatcher, Resolution
from repro.core.federation.remote import RemoteClusterView
from repro.core.federation.state import SiteReplica
from repro.core.flow_memory import MemorizedFlow
from repro.core.schedulers.base import ClientInfo, ClusterState, GlobalScheduler
from repro.core.service_registry import EdgeService, ServiceRegistry
from repro.core.state import InstanceRecord
from repro.metrics import MetricsRecorder
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cluster.base import EdgeCluster
    from repro.core.controller import SwitchTopology


class SiteDispatcher(Dispatcher):
    """A dispatcher that blends replicated remote instances into the
    local scheduler's view.

    Local clusters keep the full lifecycle (deploy, breakers,
    capacity); remote sites appear as running-only redirect candidates
    at a distance penalty.  When the replica's shared-state link is
    down the remote candidates disappear — the site serves from what
    it knows locally and counts the degradation instead of failing.
    """

    def __init__(
        self,
        env: Environment,
        clusters: "_t.Sequence[EdgeCluster]",
        scheduler: GlobalScheduler,
        flow_memory: _t.Any,
        *,
        replica: SiteReplica,
        remote_distance_penalty: int = 2,
        **kwargs: _t.Any,
    ) -> None:
        super().__init__(env, clusters, scheduler, flow_memory, **kwargs)
        self.replica = replica
        #: Extra scheduler distance for crossing the backbone.
        self.remote_distance_penalty = remote_distance_penalty

    def gather_states(self, service: EdgeService) -> list[ClusterState]:
        states = super().gather_states(service)
        if self.replica.link.down:
            return states  # partition: local view only
        remote_util: dict[str, float] | None = None
        for record in self.replica.instances_for(service.name):
            if record.site == self.site:
                continue  # our own announcements; already local
            if not record.running or record.endpoint is None:
                continue
            if remote_util is None:
                # Remote candidates carry the publishing site's worst
                # replicated link utilization — the read-model view,
                # never a poke into a Link object this site can't see.
                remote_util = {}
                for row in self.replica.link_stats():
                    if row.utilization > remote_util.get(row.site, 0.0):
                        remote_util[row.site] = row.utilization
            states.append(
                ClusterState(
                    cluster=_t.cast(
                        "EdgeCluster",
                        RemoteClusterView(record, self.remote_distance_penalty),
                    ),
                    running=True,
                    created=True,
                    cached=True,
                    has_capacity=False,
                    utilization=remote_util.get(record.site, 0.0),
                )
            )
        return states

    def resolve(
        self, service: EdgeService, client: ClientInfo
    ) -> "_t.Generator[_t.Any, _t.Any, Resolution]":
        """Resolve as usual, then account for federation effects:
        serves made on a partitioned (local-only) view, redirects that
        crossed sites, and redirects made on a provably stale view."""
        if self.replica.link.down:
            self.recorder.count(f"degraded_serves/{self.site}")
        resolution: Resolution = yield from super().resolve(service, client)
        remote_site, sep, remote_cluster = resolution.cluster_name.partition("/")
        if sep:
            self.recorder.count(f"cross_site_redirects/{self.site}")
            if self.replica.instance_is_stale(
                service.name, remote_site, remote_cluster
            ):
                self.recorder.count(f"stale_redirects/{self.site}")
        return resolution


class SiteController(EdgeController):
    """One site's edge controller in the federated control plane."""

    def __init__(
        self,
        env: Environment,
        registry: ServiceRegistry,
        clusters: "_t.Sequence[EdgeCluster]",
        scheduler: GlobalScheduler,
        topology: "SwitchTopology",
        replica: SiteReplica,
        config: ControllerConfig | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        recorder: MetricsRecorder | None = None,
        remote_distance_penalty: int = 2,
    ) -> None:
        for cluster in clusters:
            if "/" in cluster.name:
                raise ValueError(
                    f"local cluster name {cluster.name!r} may not contain "
                    "'/' — that separator marks remote views"
                )
        # Set before super().__init__: _make_dispatcher needs the replica.
        self.replica = replica
        self.remote_distance_penalty = remote_distance_penalty
        super().__init__(
            env,
            registry,
            clusters,
            scheduler,
            topology,
            config=config,
            calibration=calibration,
            recorder=recorder,
            state=replica,
            on_instance_change=replica.publish_instance,
            site=replica.site,
            name=f"controller-{replica.site}",
        )
        replica.on_service_added = self._on_remote_service_added
        replica.on_service_removed = self._on_remote_service_removed
        replica.on_instance_changed = self._on_remote_instance_changed

    @property
    def site(self) -> str:
        return self.replica.site

    def _make_dispatcher(
        self,
        env: Environment,
        clusters: "_t.Sequence[EdgeCluster]",
        scheduler: GlobalScheduler,
        calibration: Calibration,
        on_instance_change: _t.Callable[[InstanceRecord], None] | None,
        site: str,
    ) -> Dispatcher:
        return SiteDispatcher(
            env,
            clusters,
            scheduler,
            self.flow_memory,
            replica=self.replica,
            remote_distance_penalty=self.remote_distance_penalty,
            recorder=self.recorder,
            calibration=calibration,
            state=self.state,
            on_instance_change=on_instance_change,
            site=site,
        )

    # -- service replication -------------------------------------------------

    def _on_remote_service_added(self, service: EdgeService) -> None:
        """A peer site registered a service: intercept its traffic on
        every switch this site owns (the local registry already sees it
        — both read the same replica)."""
        for datapath in self.datapaths.values():
            self._install_intercept(datapath, service)

    def _on_remote_service_removed(self, service: EdgeService) -> None:
        """A peer site unregistered a service: drop its intercepts,
        redirects, and memorized flows here.  Local deployments are
        torn down by the idle scale-down machinery as flows expire."""
        self._remove_service_flows(service)

    def _on_remote_instance_changed(self, record: InstanceRecord) -> None:
        """A peer announced an instance transition.  When a remote
        instance this site has flows pinned to is *withdrawn* (a
        migration released its source, or a site scaled down), re-drive
        those clients through the dispatcher immediately instead of
        letting them idle out against a dead endpoint.  By the
        make-before-break ordering the destination's running record
        always replicates in before the source's withdrawal, so the
        re-resolution lands on the new instance."""
        if record.running:
            return
        withdrawn = f"{record.site}/{record.cluster_name}"
        service = self.replica.service_named(record.service_name)
        if service is None:
            return
        for flow in self.flow_memory.flows_for_service(service):
            if flow.cluster_name != withdrawn:
                continue
            self.flow_memory.forget(flow)
            self.env.process(
                self._redispatch(flow.service, flow.client_ip),
                name=f"heal:{flow.service.name}:{flow.client_ip}",
            )

    # -- remote-aware flow liveness ------------------------------------------

    def _endpoint_alive(self, flow: MemorizedFlow) -> bool:
        remote_site, sep, cluster_name = flow.cluster_name.partition("/")
        if not sep:
            return super()._endpoint_alive(flow)
        record = self.replica.instance(flow.service.name, remote_site, cluster_name)
        return (
            record is not None
            and record.running
            and record.endpoint == flow.endpoint
        )
