"""The paper's contribution: the on-demand-deployment SDN controller.

Components (fig. 6/7):

* :class:`ServiceRegistry` — services registered by their unique
  (cloud IP, port) combination;
* :class:`Annotator` — turns a developer's minimal Kubernetes-style
  YAML into an annotated, cluster-neutral deployment plan (§V);
* :class:`FlowMemory` — memorized redirection flows with idle
  timeouts, enabling low switch timeouts and idle scale-down;
* Global schedulers (:mod:`repro.core.schedulers`) — pluggable,
  dynamically loadable FAST/BEST policies;
* :class:`Dispatcher` — gathers instance state, feeds the scheduler,
  triggers and deduplicates deployments, tracks client locations;
* :class:`EdgeController` — the Ryu-style SDN app tying it together:
  transparent interception, packet holding, deployment phases, flow
  installation, and automatic scale-down.
"""

from repro.core.service_registry import EdgeService, ServiceRegistry
from repro.core.annotator import AnnotationError, Annotator
from repro.core.state import ControlPlaneState, InMemoryState, InstanceRecord
from repro.core.flow_memory import FlowMemory, MemorizedFlow
from repro.core.schedulers import (
    ClusterState,
    Decision,
    GlobalScheduler,
    HybridDockerK8sScheduler,
    LowLatencyScheduler,
    NearestScheduler,
    load_scheduler,
)
from repro.core.dispatcher import DeploymentOutcome, Dispatcher
from repro.core.controller import ControllerConfig, EdgeController, SwitchTopology

__all__ = [
    "AnnotationError",
    "Annotator",
    "ClusterState",
    "ControlPlaneState",
    "ControllerConfig",
    "InMemoryState",
    "InstanceRecord",
    "Decision",
    "DeploymentOutcome",
    "Dispatcher",
    "EdgeController",
    "EdgeService",
    "FlowMemory",
    "GlobalScheduler",
    "HybridDockerK8sScheduler",
    "LowLatencyScheduler",
    "MemorizedFlow",
    "NearestScheduler",
    "ServiceRegistry",
    "SwitchTopology",
    "load_scheduler",
]
