"""Registered edge services, keyed by their unique cloud address.

§II: "The services to be redirected to the edge are first registered
with a mobile edge platform provider, identified by their unique
combination of domain name/IP address and port number."
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.plan import DeploymentPlan
from repro.core.annotator import Annotator
from repro.core.state import ControlPlaneState, InMemoryState
from repro.net.addressing import IPv4Address
from repro.net.packet import HTTPRequest


@dataclasses.dataclass
class EdgeService:
    """One registered edge service."""

    #: Worldwide-unique name assigned by the annotator.
    name: str
    cloud_ip: IPv4Address
    port: int
    plan: DeploymentPlan
    #: The developer's original definition and the annotated output.
    definition_yaml: str
    annotated_yaml: str
    #: Catalog key ("asm", "nginx", ...) for experiment aggregation.
    template_key: str | None = None

    @property
    def address(self) -> tuple[IPv4Address, int]:
        return (self.cloud_ip, self.port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EdgeService {self.name} @ {self.cloud_ip}:{self.port}>"


class ServiceRegistry:
    """All services the platform provider has registered.

    The registrations themselves live in the control-plane
    :class:`~repro.core.state.ControlPlaneState` (replicated across
    sites in the federated configuration); this class holds only the
    annotation/validation logic around them.
    """

    def __init__(
        self,
        annotator: Annotator,
        state: ControlPlaneState | None = None,
    ) -> None:
        self.annotator = annotator
        self.state = state if state is not None else InMemoryState()

    def register(
        self,
        definition_yaml: str,
        cloud_ip: IPv4Address,
        port: int,
        template_key: str | None = None,
    ) -> EdgeService:
        """Register a service definition under a cloud address."""
        if self.state.service_at(cloud_ip, port) is not None:
            raise ValueError(f"service at {cloud_ip}:{port} already registered")
        plan, annotated = self.annotator.annotate(definition_yaml, cloud_ip, port)
        service = EdgeService(
            name=plan.service_name,
            cloud_ip=cloud_ip,
            port=port,
            plan=plan,
            definition_yaml=definition_yaml,
            annotated_yaml=annotated,
            template_key=template_key,
        )
        self.state.put_service(service)
        return service

    def unregister(self, service: EdgeService) -> None:
        self.state.remove_service(service)

    def lookup(self, ip: IPv4Address, port: int) -> EdgeService | None:
        """The service registered at ``ip:port``, if any."""
        return self.state.service_at(ip, port)

    def by_name(self, name: str) -> EdgeService | None:
        return self.state.service_named(name)

    def all(self) -> list[EdgeService]:
        return self.state.services()

    def __len__(self) -> int:
        return self.state.service_count()
