"""Scheduler interface types."""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

from repro.cluster.base import EdgeCluster
from repro.core.service_registry import EdgeService
from repro.net.addressing import IPv4Address


@dataclasses.dataclass(frozen=True)
class ClusterState:
    """What the Dispatcher tells the scheduler about one cluster."""

    cluster: EdgeCluster
    #: An instance is up and answering.
    running: bool
    #: Create has happened (containers / Deployment exist).
    created: bool
    #: All images are in the local cache.
    cached: bool
    #: Room for a (new) instance of this service.
    has_capacity: bool = True
    #: The cluster's circuit breaker is open: recent deployments kept
    #: failing and the cooldown has not elapsed — not a candidate.
    blocked: bool = False
    #: The breaker is half-open: the cluster may take a probe
    #: deployment, but schedulers prefer healthy peers at equal rank.
    degraded: bool = False
    #: Load on the path toward this cluster, from the observability
    #: read-model's replicated link-utilization rows (0.0 when no
    #: collector runs).  Candidate views read it from here — never
    #: from private ``Link`` attributes — so utilization-aware
    #: schedulers (LinUCB-style) see the same numbers everywhere.
    utilization: float = 0.0

    @property
    def distance(self) -> int:
        return self.cluster.distance

    @property
    def eligible(self) -> bool:
        """Can this cluster serve the request (now or after deploying)?"""
        return (self.running or self.has_capacity) and not self.blocked


@dataclasses.dataclass(frozen=True)
class Decision:
    """The scheduler's two choices.

    ``best is None`` means BEST equals FAST (with-waiting semantics);
    ``fast is None`` means forward the current request to the cloud.
    """

    fast: EdgeCluster | None
    best: EdgeCluster | None = None

    @property
    def without_waiting(self) -> bool:
        return self.best is not None


@dataclasses.dataclass(frozen=True)
class ClientInfo:
    """Client location data tracked by the Dispatcher."""

    ip: IPv4Address
    datapath_id: int
    in_port: int
    last_seen: float


class GlobalScheduler(abc.ABC):
    """Chooses the edge cluster(s) for a request (fig. 6, left)."""

    @abc.abstractmethod
    def choose(
        self,
        service: EdgeService,
        states: _t.Sequence[ClusterState],
        client: ClientInfo,
    ) -> Decision:
        """Return the FAST/BEST decision for this request."""
