"""Dynamic scheduler loading (§IV-B).

"To keep our system flexible, the concrete scheduler implementation
can be defined in the controller's configuration and will be
dynamically loaded."  The configuration value is a
``package.module:ClassName`` string plus keyword parameters.
"""

from __future__ import annotations

import importlib
import typing as _t

from repro.core.schedulers.base import GlobalScheduler


class SchedulerLoadError(RuntimeError):
    """The configured scheduler could not be loaded."""


def load_scheduler(
    spec: str, *, reload: bool = False, **params: _t.Any
) -> GlobalScheduler:
    """Instantiate the scheduler named by ``spec``.

    ``spec`` is ``"module.path:ClassName"``; bare class names resolve
    against the built-in scheduler module.  ``reload=True`` re-imports
    the module first, picking up an edited scheduler file without
    restarting the controller (the paper's "flexible" configuration
    taken one step further).
    """
    if ":" in spec:
        module_name, _, class_name = spec.partition(":")
    else:
        module_name, class_name = "repro.core.schedulers.builtin", spec

    try:
        module = importlib.import_module(module_name)
        if reload:
            module = importlib.reload(module)
    except ImportError as exc:
        raise SchedulerLoadError(f"cannot import {module_name!r}: {exc}") from exc

    cls = getattr(module, class_name, None)
    if cls is None:
        raise SchedulerLoadError(
            f"module {module_name!r} has no attribute {class_name!r}"
        )
    if not (isinstance(cls, type) and issubclass(cls, GlobalScheduler)):
        raise SchedulerLoadError(
            f"{module_name}:{class_name} is not a GlobalScheduler subclass"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise SchedulerLoadError(
            f"cannot instantiate {class_name} with {params!r}: {exc}"
        ) from exc
