"""Global schedulers: pluggable FAST/BEST policies (§IV-B).

The controller's configuration names a scheduler class which is
dynamically loaded (:func:`load_scheduler`).  A scheduler returns two
choices:

* **FAST** — the fastest location for the *current* request;
* **BEST** — the best location for *future* requests, "returned empty
  if equal to the FAST choice; if non-empty, we have On-Demand
  Deployment without Waiting.  If FAST is empty, the request is
  forwarded toward the cloud."
"""

from repro.core.schedulers.base import ClusterState, Decision, GlobalScheduler
from repro.core.schedulers.builtin import (
    CloudOnlyScheduler,
    HybridDockerK8sScheduler,
    LowLatencyScheduler,
    NearestScheduler,
)
from repro.core.schedulers.loader import SchedulerLoadError, load_scheduler

__all__ = [
    "CloudOnlyScheduler",
    "ClusterState",
    "Decision",
    "GlobalScheduler",
    "HybridDockerK8sScheduler",
    "LowLatencyScheduler",
    "NearestScheduler",
    "SchedulerLoadError",
    "load_scheduler",
]
