"""Built-in global schedulers.

* :class:`NearestScheduler` — always target the nearest cluster; if no
  instance runs there, the request *waits* for the on-demand
  deployment (fig. 5).
* :class:`LowLatencyScheduler` — "if the scheduler demands a very low
  response time" (fig. 3): serve the current request from the nearest
  *running* instance (or the cloud) while the optimal edge deploys in
  parallel.
* :class:`HybridDockerK8sScheduler` — §VII's combination: answer the
  first request from Docker (fast start) while the same service
  deploys to Kubernetes for managed steady-state operation.
* :class:`CloudOnlyScheduler` — baseline: never deploy, always cloud.

None of the built-ins rank on :attr:`ClusterState.utilization` — their
decision keys must stay byte-identical whether or not the flow-stats
collector runs.  Utilization-aware policies (the planned LinUCB-style
selector) read that field off the candidate states; the dispatcher
fills it from the replicated link-stats read-model, so no scheduler
ever touches a ``Link`` object directly.
"""

from __future__ import annotations

import typing as _t

from repro.core.schedulers.base import (
    ClientInfo,
    ClusterState,
    Decision,
    GlobalScheduler,
)
from repro.core.service_registry import EdgeService


def _nearest(states: _t.Sequence[ClusterState]) -> ClusterState | None:
    """Closest *eligible* cluster (running or with room), ties broken
    by cached-ness then name.  Full clusters are skipped — their small
    near-edge capacity is exactly why farther clusters exist (§IV-A)."""
    eligible = [s for s in states if s.eligible]
    if not eligible:
        return None
    # Degraded (breaker half-open) clusters lose ties against healthy
    # peers; with no breaker activity the key reduces to the old one.
    return min(
        eligible,
        key=lambda s: (s.distance, s.degraded, not s.cached, s.cluster.name),
    )


def _nearest_running(states: _t.Sequence[ClusterState]) -> ClusterState | None:
    running = [s for s in states if s.running and not s.blocked]
    if not running:
        return None
    return min(running, key=lambda s: (s.distance, s.degraded, s.cluster.name))


class NearestScheduler(GlobalScheduler):
    """Always the nearest cluster; deploy there with waiting if needed."""

    def choose(
        self,
        service: EdgeService,
        states: _t.Sequence[ClusterState],
        client: ClientInfo,
    ) -> Decision:
        nearest = _nearest(states)
        if nearest is None:
            return Decision(fast=None, best=None)  # no edge: cloud
        return Decision(fast=nearest.cluster, best=None)


class LowLatencyScheduler(GlobalScheduler):
    """Serve now from wherever runs; deploy the optimal edge in parallel.

    §IV-A.2: the initial request goes to "a running service instance in
    another edge (possibly further away) or even ... the cloud.  In
    parallel, the controller triggers the deployment of the service in
    the optimal edge cluster."
    """

    def choose(
        self,
        service: EdgeService,
        states: _t.Sequence[ClusterState],
        client: ClientInfo,
    ) -> Decision:
        nearest = _nearest(states)
        if nearest is None:
            return Decision(fast=None, best=None)
        if nearest.running:
            return Decision(fast=nearest.cluster, best=None)
        fallback = _nearest_running(states)
        if fallback is not None:
            return Decision(fast=fallback.cluster, best=nearest.cluster)
        # Nothing runs anywhere: current request to the cloud, deploy
        # the nearest edge for future requests.
        return Decision(fast=None, best=nearest.cluster)


class HybridDockerK8sScheduler(GlobalScheduler):
    """§VII: "First, we launch an edge service via Docker to respond
    faster to the initial request.  Then, we deploy the same service to
    Kubernetes for future requests."

    Parameters name the two clusters (they usually share one host).
    """

    def __init__(self, docker_cluster: str, k8s_cluster: str) -> None:
        self.docker_cluster = docker_cluster
        self.k8s_cluster = k8s_cluster

    def choose(
        self,
        service: EdgeService,
        states: _t.Sequence[ClusterState],
        client: ClientInfo,
    ) -> Decision:
        by_name = {s.cluster.name: s for s in states}
        docker = by_name.get(self.docker_cluster)
        k8s = by_name.get(self.k8s_cluster)
        if k8s is not None and k8s.running:
            # Steady state: Kubernetes serves everything.
            return Decision(fast=k8s.cluster, best=None)
        if docker is not None and k8s is not None:
            # First request via Docker (with waiting if not yet up);
            # Kubernetes deploys in the background as BEST.
            return Decision(fast=docker.cluster, best=k8s.cluster)
        if docker is not None:
            return Decision(fast=docker.cluster, best=None)
        if k8s is not None:
            return Decision(fast=k8s.cluster, best=None)
        return Decision(fast=None, best=None)


class CloudOnlyScheduler(GlobalScheduler):
    """Baseline: never use the edge."""

    def choose(
        self,
        service: EdgeService,
        states: _t.Sequence[ClusterState],
        client: ClientInfo,
    ) -> Decision:
        return Decision(fast=None, best=None)
