"""Proactive deployment via request prediction (§I / §VII).

"Of course, prediction algorithms could be used to pre-deploy the
required services just in time" (§I); the discussion closes with "More
so when combined with good prediction for proactive deployment."

This module provides that layer: a :class:`RequestPredictor` learns
per-service arrival patterns from the packet-ins the controller sees;
a :class:`ProactiveDeployer` periodically deploys services that are
predicted to be requested soon, so the first request after an idle
scale-down finds a running instance.  Prediction is best-effort by
design — the on-demand path remains the correctness backstop, exactly
the paper's argument ("a hundred percent correct prediction rate is
impossible").
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

from repro.cluster.base import EdgeCluster
from repro.core.dispatcher import Dispatcher
from repro.core.service_registry import EdgeService, ServiceRegistry
from repro.sim import Environment


class RequestPredictor(abc.ABC):
    """Learns arrival patterns and predicts next-request times."""

    @abc.abstractmethod
    def observe(self, service_name: str, time: float) -> None:
        """Record one request arrival."""

    @abc.abstractmethod
    def predicted_next(self, service_name: str, now: float) -> float | None:
        """Estimated time of the service's next request (None: unknown)."""


@dataclasses.dataclass
class _ArrivalState:
    last_arrival: float
    ewma_interval: float | None = None
    count: int = 1


class EWMAPredictor(RequestPredictor):
    """Exponentially-weighted moving average of inter-arrival times.

    After ``min_observations`` arrivals the predictor extrapolates the
    next request as ``last_arrival + ewma_interval`` — enough to catch
    periodic workloads (telemetry uploads, polling clients) without any
    offline training.
    """

    def __init__(self, alpha: float = 0.3, min_observations: int = 3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if min_observations < 2:
            raise ValueError("min_observations must be >= 2")
        self.alpha = alpha
        self.min_observations = min_observations
        self._state: dict[str, _ArrivalState] = {}

    def observe(self, service_name: str, time: float) -> None:
        state = self._state.get(service_name)
        if state is None:
            self._state[service_name] = _ArrivalState(last_arrival=time)
            return
        interval = time - state.last_arrival
        if interval <= 0:
            return  # simultaneous arrivals carry no period information
        if state.ewma_interval is None:
            state.ewma_interval = interval
        else:
            state.ewma_interval = (
                self.alpha * interval + (1 - self.alpha) * state.ewma_interval
            )
        state.last_arrival = time
        state.count += 1

    def predicted_next(self, service_name: str, now: float) -> float | None:
        state = self._state.get(service_name)
        if (
            state is None
            or state.ewma_interval is None
            or state.count < self.min_observations
        ):
            return None
        return state.last_arrival + state.ewma_interval

    def interval_estimate(self, service_name: str) -> float | None:
        state = self._state.get(service_name)
        return state.ewma_interval if state else None


class FlowStatsSampler:
    """Feeds the predictor from switch flow statistics.

    Packet-ins only reveal *cold* arrivals; traffic on installed
    redirect flows never reaches the controller.  This sampler polls
    each datapath's redirect-flow statistics (an ordinary OpenFlow
    flow-stats request) and reports an arrival to the predictor
    whenever a service's packet count advanced since the last poll —
    arrival timing at poll resolution, enough for the EWMA."""

    def __init__(
        self,
        env: Environment,
        controller,  # EdgeController (duck-typed to avoid the import cycle)
        predictor: RequestPredictor,
        poll_interval_s: float = 5.0,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.env = env
        self.controller = controller
        self.predictor = predictor
        self.poll_interval_s = poll_interval_s
        #: (datapath id, cookie) -> packet count at the previous poll.
        self._last_counts: dict[tuple[int, _t.Any], int] = {}
        self.stats = {"polls": 0, "observed_arrivals": 0}
        env.process(self._loop(), name="flowstats-sampler")

    def _loop(self):
        while True:
            yield self.env.timeout(self.poll_interval_s)
            self.stats["polls"] += 1
            for datapath in list(self.controller.datapaths.values()):
                reply = yield datapath.request_flow_stats(
                    cookie_prefix="redirect:"
                )
                self._ingest(datapath.id, reply.stats)

    def _ingest(self, dpid: int, stats) -> None:
        now = self.env.now
        advanced: set[str] = set()
        for entry in stats:
            cookie = str(entry.cookie or "")
            # cookie format: "redirect:<service name>:<client ip>"
            parts = cookie.split(":", 2)
            if len(parts) < 3:
                continue
            service_name = parts[1]
            # Forward and reverse entries share a cookie; the match
            # disambiguates them.
            key = (dpid, entry.cookie, entry.match)
            previous = self._last_counts.get(key, 0)
            self._last_counts[key] = entry.packet_count
            if entry.packet_count > previous:
                advanced.add(service_name)
        for service_name in advanced:
            self.stats["observed_arrivals"] += 1
            self.predictor.observe(service_name, now)


class ProactiveDeployer:
    """Pre-deploys services predicted to be requested soon.

    Every ``check_interval_s`` it asks the predictor for each
    registered service's next-request estimate; services whose estimate
    falls within ``lead_time_s`` (and that are not running anywhere)
    are deployed in the background to the cluster chosen by
    ``select_cluster`` (default: the nearest one).
    """

    def __init__(
        self,
        env: Environment,
        dispatcher: Dispatcher,
        registry: ServiceRegistry,
        predictor: RequestPredictor,
        check_interval_s: float = 5.0,
        lead_time_s: float = 10.0,
        select_cluster: _t.Callable[[EdgeService, _t.Sequence[EdgeCluster]], EdgeCluster | None]
        | None = None,
    ) -> None:
        if check_interval_s <= 0 or lead_time_s <= 0:
            raise ValueError("intervals must be positive")
        self.env = env
        self.dispatcher = dispatcher
        self.registry = registry
        self.predictor = predictor
        self.check_interval_s = check_interval_s
        self.lead_time_s = lead_time_s
        self.select_cluster = select_cluster or self._nearest
        self.stats = {"checks": 0, "proactive_deployments": 0}
        env.process(self._loop(), name="proactive-deployer")

    @staticmethod
    def _nearest(
        service: EdgeService, clusters: _t.Sequence[EdgeCluster]
    ) -> EdgeCluster | None:
        if not clusters:
            return None
        return min(clusters, key=lambda c: (c.distance, c.name))

    def _loop(self):
        while True:
            yield self.env.timeout(self.check_interval_s)
            self.stats["checks"] += 1
            now = self.env.now
            for service in self.registry.all():
                predicted = self.predictor.predicted_next(service.name, now)
                if predicted is None or predicted - now > self.lead_time_s:
                    continue
                if any(
                    c.is_running(service.plan) for c in self.dispatcher.clusters
                ):
                    continue
                cluster = self.select_cluster(service, self.dispatcher.clusters)
                if cluster is None:
                    continue
                self.stats["proactive_deployments"] += 1
                self.dispatcher.deploy_in_background(service, cluster)
