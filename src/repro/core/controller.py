"""The edge SDN controller application.

Ties everything together as a Ryu-style app (fig. 2/5/7):

* installs interception rules so requests to *registered* services
  punt to the controller while everything else flows to the cloud,
* answers packet-ins: FlowMemory fast path, or the full dispatch
  algorithm (scheduler → deployment phases → flow installation),
* holds the buffered first packet during *with-waiting* deployments
  and releases it through the freshly installed flow,
* rewrites addresses in both directions so the redirection stays
  transparent to clients,
* scales idle services down when their memorized flows expire.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.base import EdgeCluster, ServiceEndpoint
from repro.core.dispatcher import Dispatcher, Resolution
from repro.core.flow_memory import FlowMemory, MemorizedFlow
from repro.core.schedulers.base import GlobalScheduler
from repro.core.service_registry import EdgeService, ServiceRegistry
from repro.core.state import ControlPlaneState, InMemoryState, InstanceRecord
from repro.metrics import MetricsRecorder
from repro.net.addressing import IPv4Address
from repro.net.openflow import FlowMatch, Output, PacketIn, SetField
from repro.sdnfw import Datapath, SDNApp
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim import Environment

#: Flow priorities, lowest to highest.
PRIORITY_DEFAULT = 0  # match-all -> cloud uplink
PRIORITY_INFRA = 2  # destination-based infrastructure forwarding
PRIORITY_INTERCEPT = 10  # registered service -> controller
PRIORITY_REDIRECT = 20  # per-(client, service) redirection
PRIORITY_DRAIN = 25  # per-connection drain during make-before-break


class SwitchTopology:
    """Static port map the controller needs per datapath.

    The real controller learns this via LLDP/inventory; the testbed
    builder registers it explicitly.
    """

    def __init__(self) -> None:
        self._host_ports: dict[int, dict[IPv4Address, int]] = {}
        self._cloud_ports: dict[int, int] = {}

    def register_host(self, datapath_id: int, ip: IPv4Address, port: int) -> None:
        self._host_ports.setdefault(datapath_id, {})[ip] = port

    def set_cloud_port(self, datapath_id: int, port: int) -> None:
        self._cloud_ports[datapath_id] = port

    def port_for(self, datapath_id: int, ip: IPv4Address) -> int | None:
        return self._host_ports.get(datapath_id, {}).get(ip)

    def cloud_port(self, datapath_id: int) -> int | None:
        return self._cloud_ports.get(datapath_id)

    def hosts(self, datapath_id: int) -> dict[IPv4Address, int]:
        return dict(self._host_ports.get(datapath_id, {}))


@dataclasses.dataclass(frozen=True)
class ControllerConfig:
    """Controller behaviour knobs (paper §V defaults)."""

    #: Low idle timeout for switch entries (FlowMemory re-installs).
    switch_idle_timeout_s: float = 10.0
    #: Longer idle timeout for memorized flows.
    memory_idle_timeout_s: float = 60.0
    #: Controller packet-in processing cost (Python/Ryu overhead).
    processing_delay_s: float = 0.0008
    #: Scale idle services down when their last flow expires.
    auto_scale_down: bool = True

    @classmethod
    def from_calibration(cls, calibration: Calibration) -> "ControllerConfig":
        return cls(
            switch_idle_timeout_s=calibration.switch_idle_timeout_s,
            memory_idle_timeout_s=calibration.memory_idle_timeout_s,
            processing_delay_s=calibration.controller_processing_s,
        )


class EdgeController(SDNApp):
    """The transparent-edge SDN controller with on-demand deployment."""

    def __init__(
        self,
        env: Environment,
        registry: ServiceRegistry,
        clusters: _t.Sequence[EdgeCluster],
        scheduler: GlobalScheduler,
        topology: SwitchTopology,
        config: ControllerConfig | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        recorder: MetricsRecorder | None = None,
        state: ControlPlaneState | None = None,
        on_instance_change: _t.Callable[[InstanceRecord], None] | None = None,
        site: str = "local",
        name: str = "edge-controller",
    ) -> None:
        super().__init__(env, name=name)
        self.registry = registry
        self.clusters = list(clusters)
        self.topology = topology
        self.config = config or ControllerConfig.from_calibration(calibration)
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        #: The typed control-plane state every stateful component
        #: operates on: plain in-memory dicts here, a per-site replica
        #: of the shared state in the federated configuration.
        self.state = state if state is not None else InMemoryState()
        self.flow_memory = FlowMemory(
            env,
            idle_timeout_s=self.config.memory_idle_timeout_s,
            on_expire=self._on_memory_expire,
            state=self.state,
        )
        self.dispatcher = self._make_dispatcher(
            env, clusters, scheduler, calibration, on_instance_change, site
        )
        # When a background deployment comes up, repoint the *data
        # plane* (drain entries + fresh redirect flows), not just the
        # flow memory — otherwise switches keep steering clients at an
        # endpoint that may since have gone away.
        self.dispatcher.on_endpoint_ready = self.repoint_service_flows
        #: Optional request predictor for proactive deployment (§VII).
        self.predictor = None
        self.proactive_deployer = None
        #: Redirect flows installed per client: ip -> {(dpid, cookie)}.
        #: Used to tear down stale entries on client migration.
        self._client_cookies: dict[IPv4Address, set[tuple[int, str]]] = {}
        #: Optional gNB-conntrack lookup the testbed wires in:
        #: ``(client_ip, dst_ip, dst_port) -> local source ports`` of
        #: the client's in-flight connections (see
        #: :meth:`~repro.net.host.Host.tracked_ports`).  When present,
        #: make-before-break repoints install per-connection drain
        #: entries so packets of established sessions keep following
        #: the old path while new sessions take the new one.
        self.conntrack: _t.Callable[
            [IPv4Address, IPv4Address, int], tuple[int, ...]
        ] | None = None
        #: Diagnostics.
        self.stats = {
            "packet_in": 0,
            "memory_hits": 0,
            "dispatched": 0,
            "cloud_fallbacks": 0,
            "scale_downs": 0,
            "redispatched": 0,
            "flows_repointed": 0,
        }

    def _make_dispatcher(
        self,
        env: Environment,
        clusters: _t.Sequence[EdgeCluster],
        scheduler: GlobalScheduler,
        calibration: Calibration,
        on_instance_change: _t.Callable[[InstanceRecord], None] | None,
        site: str,
    ) -> Dispatcher:
        """Build the dispatcher (overridden by the federated
        :class:`~repro.core.federation.site.SiteController` to blend
        remote instance views into scheduling)."""
        return Dispatcher(
            env,
            clusters,
            scheduler,
            self.flow_memory,
            recorder=self.recorder,
            calibration=calibration,
            state=self.state,
            on_instance_change=on_instance_change,
            site=site,
        )

    def enable_proactive(
        self,
        predictor=None,
        check_interval_s: float = 5.0,
        lead_time_s: float = 10.0,
        sample_flow_stats: bool = False,
        stats_poll_interval_s: float = 5.0,
    ):
        """Attach a request predictor and start the proactive deployer.

        With ``sample_flow_stats`` the controller also polls the
        switches' redirect-flow statistics so the predictor sees *warm*
        traffic (which never produces packet-ins).

        Returns the :class:`~repro.core.predictor.ProactiveDeployer`.
        """
        from repro.core.predictor import (
            EWMAPredictor,
            FlowStatsSampler,
            ProactiveDeployer,
        )

        self.predictor = predictor if predictor is not None else EWMAPredictor()
        self.proactive_deployer = ProactiveDeployer(
            self.env,
            self.dispatcher,
            self.registry,
            self.predictor,
            check_interval_s=check_interval_s,
            lead_time_s=lead_time_s,
        )
        if sample_flow_stats:
            self.flow_stats_sampler = FlowStatsSampler(
                self.env,
                self,
                self.predictor,
                poll_interval_s=stats_poll_interval_s,
            )
        return self.proactive_deployer

    def add_cluster(self, cluster: EdgeCluster) -> None:
        """Register an additional edge cluster at runtime."""
        self.clusters.append(cluster)
        self.dispatcher.clusters.append(cluster)

    # -- service registration ------------------------------------------------

    def register_service(
        self,
        definition_yaml: str,
        cloud_ip: IPv4Address,
        port: int,
        template_key: str | None = None,
    ) -> EdgeService:
        """Register a service and intercept its traffic on all switches."""
        service = self.registry.register(
            definition_yaml, cloud_ip, port, template_key=template_key
        )
        for datapath in self.datapaths.values():
            self._install_intercept(datapath, service)
        return service

    def unregister_service(
        self, service: EdgeService, remove_deployments: bool = True
    ) -> None:
        """Remove a service from the platform.

        Interception and redirect flows are deleted from every switch
        (its traffic reverts to the plain cloud path), memorized flows
        are forgotten, and — unless ``remove_deployments`` is False —
        running instances are scaled down and removed from every
        cluster (the fig. 4 Scale Down / Remove phases).
        """
        self.registry.unregister(service)
        self._remove_service_flows(service)
        if remove_deployments:
            for cluster in self.clusters:
                if cluster.is_created(service.plan):
                    self.env.process(
                        self._teardown(cluster, service),
                        name=f"teardown:{service.name}@{cluster.name}",
                    )

    def _remove_service_flows(self, service: EdgeService) -> None:
        """Purge every trace of the service from the data plane this
        controller owns: intercepts, per-client redirects, memory."""
        for datapath in self.datapaths.values():
            datapath.delete_flows(cookie=f"intercept:{service.name}")
        for client_ip, cookies in list(self._client_cookies.items()):
            stale = {
                (dpid, cookie)
                for (dpid, cookie) in cookies
                if cookie.startswith(f"redirect:{service.name}:")
                or cookie.startswith(f"drain:{service.name}:")
            }
            for dpid, cookie in stale:
                datapath = self.datapaths.get(dpid)
                if datapath is not None:
                    datapath.delete_flows(cookie=cookie)
            cookies -= stale
        for flow in self.flow_memory.flows_for_service(service):
            self.flow_memory.forget(flow)

    @staticmethod
    def _teardown(cluster: EdgeCluster, service: EdgeService):
        yield from cluster.scale_down(service.plan)
        yield from cluster.remove(service.plan)

    def _install_intercept(self, datapath: Datapath, service: EdgeService) -> None:
        from repro.net.openflow.actions import ToController

        datapath.add_flow(
            FlowMatch(ip_dst=service.cloud_ip, tcp_dst=service.port),
            [ToController()],
            priority=PRIORITY_INTERCEPT,
            cookie=f"intercept:{service.name}",
            notify_removal=False,
        )

    # -- datapath lifecycle ----------------------------------------------------

    def on_datapath_join(self, datapath: Datapath) -> None:
        dpid = datapath.id
        cloud_port = self.topology.cloud_port(dpid)
        if cloud_port is not None:
            datapath.add_flow(
                FlowMatch(),
                [Output(cloud_port)],
                priority=PRIORITY_DEFAULT,
                cookie="default:cloud",
                notify_removal=False,
            )
        for ip, port in self.topology.hosts(dpid).items():
            datapath.add_flow(
                FlowMatch(ip_dst=ip),
                [Output(port)],
                priority=PRIORITY_INFRA,
                cookie=f"infra:{ip}",
                notify_removal=False,
            )
        for service in self.registry.all():
            self._install_intercept(datapath, service)

    # -- packet-in handling ----------------------------------------------------------

    def on_packet_in(self, datapath: Datapath, message: PacketIn) -> None:
        self.stats["packet_in"] += 1
        self.env.process(
            self._handle_packet_in(datapath, message),
            name=f"pktin:{message.buffer_id}",
        )

    def _handle_packet_in(self, datapath: Datapath, message: PacketIn):
        yield self.env.timeout(self.config.processing_delay_s)
        packet = message.packet
        service = self.registry.lookup(packet.ip_dst, packet.tcp.dst_port)
        if service is None:
            # Not a registered service: shove it toward the cloud.
            cloud_port = self.topology.cloud_port(datapath.id)
            if cloud_port is not None:
                datapath.packet_out(
                    [Output(cloud_port)], buffer_id=message.buffer_id
                )
            return

        client_ip = packet.ip_src
        client = self.dispatcher.note_client(client_ip, datapath.id, message.in_port)
        if self.predictor is not None:
            self.predictor.observe(service.name, self.env.now)

        memorized = self.flow_memory.lookup(client_ip, service)
        if (
            memorized is not None
            and self._endpoint_alive(memorized)
            and not self._should_re_resolve(memorized)
        ):
            # FlowMemory fast path: reinstall without scheduling (§V).
            self.stats["memory_hits"] += 1
            self.flow_memory.touch(memorized)
            self._install_path(
                datapath,
                client_ip,
                message.in_port,
                service,
                memorized.endpoint if memorized.cluster_name != "cloud" else None,
                message.buffer_id,
            )
            return

        self.stats["dispatched"] += 1
        resolution: Resolution = yield from self.dispatcher.resolve(service, client)
        if resolution.endpoint is None:
            self.stats["cloud_fallbacks"] += 1
            self._remember(client_ip, service, resolution)
            self._install_path(
                datapath, client_ip, message.in_port, service, None, message.buffer_id
            )
        else:
            self._remember(client_ip, service, resolution)
            self._install_path(
                datapath,
                client_ip,
                message.in_port,
                service,
                resolution.endpoint,
                message.buffer_id,
            )

    def _remember(
        self, client_ip: IPv4Address, service: EdgeService, resolution: Resolution
    ) -> None:
        endpoint = resolution.endpoint
        if endpoint is None:
            endpoint = ServiceEndpoint(ip=service.cloud_ip, port=service.port)
        self.flow_memory.remember(
            client_ip,
            service,
            resolution.cluster_name,
            endpoint,
            degraded_from=resolution.degraded_from,
        )

    def _should_re_resolve(self, flow: MemorizedFlow) -> bool:
        """Degraded flows go back through the dispatcher — not the
        memory fast path — as soon as the preferred cluster's breaker
        stops blocking (the re-dispatch is what sends the half-open
        probe).  Healthy flows return False on one attribute load."""
        preferred = flow.degraded_from
        if preferred is None:
            return False
        breaker = self.dispatcher.breakers.get(preferred)
        if breaker is None:
            # No breaker (transient failure, or breakers disabled):
            # re-resolve immediately and let the dispatcher retry.
            return True
        return not breaker.blocked(self.env.now)

    def _endpoint_alive(self, flow: MemorizedFlow) -> bool:
        if flow.cluster_name == "cloud":
            return True
        for cluster in self.clusters:
            if cluster.name == flow.cluster_name:
                ep = cluster.endpoint(flow.service.plan)
                return (
                    ep == flow.endpoint
                    and cluster.ingress_host.port_is_open(ep.port)
                )
        return False

    # -- flow installation --------------------------------------------------------------

    def _install_path(
        self,
        datapath: Datapath,
        client_ip: IPv4Address,
        client_port_no: int,
        service: EdgeService,
        endpoint: ServiceEndpoint | None,
        buffer_id: int | None,
    ) -> None:
        """Install the (client, service) flows and release the held packet.

        ``endpoint is None`` forwards to the cloud without rewriting.
        The reverse entry goes in *before* the forward entry releases
        the buffered packet, so the response cannot miss.
        """
        idle = self.config.switch_idle_timeout_s
        cookie = f"redirect:{service.name}:{client_ip}"
        known = self._client_cookies.setdefault(client_ip, set())
        if (datapath.id, cookie) in known:
            # Reinstall (memory fast path, or a concurrent dispatch):
            # clear the previous entries first so the table never holds
            # duplicates.  FIFO ordering makes delete-then-add safe.
            datapath.delete_flows(cookie=cookie)
        known.add((datapath.id, cookie))
        if endpoint is None:
            cloud_port = self.topology.cloud_port(datapath.id)
            if cloud_port is None:
                return
            datapath.add_flow(
                FlowMatch(
                    ip_src=client_ip,
                    ip_dst=service.cloud_ip,
                    tcp_dst=service.port,
                ),
                [Output(cloud_port)],
                priority=PRIORITY_REDIRECT,
                idle_timeout=idle,
                cookie=cookie,
                buffer_id=buffer_id,
            )
            return

        out_port = self.topology.port_for(datapath.id, endpoint.ip)
        if out_port is None:
            return
        # Reverse first: edge responses rewritten back to the cloud address.
        datapath.add_flow(
            FlowMatch(
                ip_src=endpoint.ip, tcp_src=endpoint.port, ip_dst=client_ip
            ),
            [
                SetField("ip_src", service.cloud_ip),
                SetField("tcp_src", service.port),
                Output(client_port_no),
            ],
            priority=PRIORITY_REDIRECT,
            idle_timeout=idle,
            cookie=cookie,
        )
        # Forward: client traffic rewritten to the edge instance; the
        # buffered first packet is released through this entry.
        datapath.add_flow(
            FlowMatch(
                ip_src=client_ip, ip_dst=service.cloud_ip, tcp_dst=service.port
            ),
            [
                SetField("ip_dst", endpoint.ip),
                SetField("tcp_dst", endpoint.port),
                Output(out_port),
            ],
            priority=PRIORITY_REDIRECT,
            idle_timeout=idle,
            cookie=cookie,
            buffer_id=buffer_id,
        )

    # -- make-before-break repoints (migration / healing) ----------------------------------

    def _install_drains(
        self,
        datapath: Datapath,
        client_ip: IPv4Address,
        client_port_no: int,
        service: EdgeService,
        old_endpoint: ServiceEndpoint,
    ) -> int:
        """Install per-connection drain entries pinning the client's
        *in-flight* connections to the old path.

        Installed at :data:`PRIORITY_DRAIN` (above the redirect entries
        about to be swapped), matched per TCP source port from the
        gNB-conntrack snapshot, with the switch idle timeout so they
        expire on their own once the old sessions close.  Returns the
        number of connections covered; a no-op without a conntrack.
        """
        if self.conntrack is None:
            return 0
        ports = self.conntrack(client_ip, service.cloud_ip, service.port)
        if not ports:
            return 0
        idle = self.config.switch_idle_timeout_s
        cookie = f"drain:{service.name}:{client_ip}"
        known = self._client_cookies.setdefault(client_ip, set())
        if (datapath.id, cookie) in known:
            # A previous repoint's drains are still in the table; the
            # connections they covered are part of this snapshot too.
            datapath.delete_flows(cookie=cookie)
        known.add((datapath.id, cookie))
        to_cloud = (
            old_endpoint.ip == service.cloud_ip
            and old_endpoint.port == service.port
        )
        if to_cloud:
            old_out = self.topology.cloud_port(datapath.id)
            forward_actions: list[_t.Any] = []
        else:
            old_out = self.topology.port_for(datapath.id, old_endpoint.ip)
            forward_actions = [
                SetField("ip_dst", old_endpoint.ip),
                SetField("tcp_dst", old_endpoint.port),
            ]
            # Reverse drain: responses from the old instance keep being
            # rewritten back to the cloud address for the client.
            datapath.add_flow(
                FlowMatch(
                    ip_src=old_endpoint.ip,
                    tcp_src=old_endpoint.port,
                    ip_dst=client_ip,
                ),
                [
                    SetField("ip_src", service.cloud_ip),
                    SetField("tcp_src", service.port),
                    Output(client_port_no),
                ],
                priority=PRIORITY_DRAIN,
                idle_timeout=idle,
                cookie=cookie,
            )
        if old_out is None:
            return 0
        for src_port in ports:
            datapath.add_flow(
                FlowMatch(
                    ip_src=client_ip,
                    tcp_src=src_port,
                    ip_dst=service.cloud_ip,
                    tcp_dst=service.port,
                ),
                forward_actions + [Output(old_out)],
                priority=PRIORITY_DRAIN,
                idle_timeout=idle,
                cookie=cookie,
            )
        return len(ports)

    def repoint_service_flows(
        self,
        service: EdgeService,
        cluster_name: str,
        endpoint: ServiceEndpoint,
        from_endpoint: ServiceEndpoint | None = None,
    ) -> int:
        """Atomically repoint memorized flows of ``service`` to a new
        instance, make-before-break.

        Runs in a single event-loop instant (no yields), so for every
        covered client the conntrack snapshot, the per-connection drain
        entries, and the redirect swap are one indivisible switch-over:
        connections opened before it drain on the old path, connections
        opened after it ride the new one, and the flow-table epoch bump
        from the add/delete revalidates every memoized route at the
        same instant.  With ``from_endpoint`` only flows currently
        pointing there are touched (a migration flips exactly the
        instance it moved).  Returns the number of flows repointed.
        """
        repointed = 0
        now = self.env.now
        for flow in self.flow_memory.flows_for_service(service):
            if from_endpoint is not None and flow.endpoint != from_endpoint:
                continue
            if flow.cluster_name == cluster_name and flow.endpoint == endpoint:
                continue
            old_endpoint = flow.endpoint
            client = self.dispatcher.client_locations.get(flow.client_ip)
            if client is not None:
                datapath = self.datapaths.get(client.datapath_id)
                attached = (
                    datapath is not None
                    and self.topology.port_for(
                        client.datapath_id, flow.client_ip
                    )
                    == client.in_port
                )
                if attached:
                    self._install_drains(
                        datapath,
                        flow.client_ip,
                        client.in_port,
                        service,
                        old_endpoint,
                    )
                    self._install_path(
                        datapath,
                        flow.client_ip,
                        client.in_port,
                        service,
                        endpoint,
                        None,
                    )
            flow.cluster_name = cluster_name
            flow.endpoint = endpoint
            flow.degraded_from = None
            flow.last_used = now
            repointed += 1
        if repointed:
            self.stats["flows_repointed"] += repointed
        return repointed

    # -- client mobility (Follow-me style handover) ----------------------------------------

    def install_host_routes(self, ip: IPv4Address) -> None:
        """(Re)install the infrastructure forwarding rules for one host
        on every attached switch, from the current topology."""
        for datapath in self.datapaths.values():
            port = self.topology.port_for(datapath.id, ip)
            if port is None:
                continue
            datapath.delete_flows(cookie=f"infra:{ip}")
            datapath.add_flow(
                FlowMatch(ip_dst=ip),
                [Output(port)],
                priority=PRIORITY_INFRA,
                cookie=f"infra:{ip}",
                notify_removal=False,
            )

    def update_client_location(
        self,
        client_ip: IPv4Address,
        datapath_id: int | None = None,
        in_port: int | None = None,
    ) -> None:
        """Handle a client handover to a different switch.

        The testbed updates :attr:`topology` first; this method then
        refreshes the client's infrastructure routes, removes its stale
        redirect flows, and forgets exactly this client's memorized
        flows — they were resolved for the old location, so the first
        packet from the new switch goes back through the scheduler
        instead of replaying a possibly far-away instance from memory.
        Other clients' flows (and the idle-expiry machinery) are
        untouched.

        When the handover signal carries the new attachment
        (``datapath_id``/``in_port``), the client's *degraded* and
        *remote-pinned* flows are proactively re-dispatched in the
        background instead of idling until the client's next packet:
        the scheduler runs again from the new location immediately, the
        result is memorized, and — when the new attachment is one of
        this controller's switches — the redirect entries go straight
        into the flow table.  This closes the stale-redirect window: a
        relocated session whose old resolution was a fallback (breaker
        degradation, cross-site pin) heals at handover time, not at
        idle-out.
        """
        stale = self.flow_memory.flows_for_client(client_ip)
        if datapath_id is not None and in_port is not None:
            self.dispatcher.note_client(client_ip, datapath_id, in_port)
        self.install_host_routes(client_ip)
        for dpid, cookie in self._client_cookies.pop(client_ip, set()):
            datapath = self.datapaths.get(dpid)
            if datapath is not None:
                datapath.delete_flows(cookie=cookie)
        self.flow_memory.forget_client(client_ip)
        if datapath_id is None or in_port is None:
            # Attachment unknown (e.g. the client left for a switch
            # another controller owns): nothing to re-dispatch *from*
            # here — the new owner re-resolves on first contact.
            return
        for flow in stale:
            if not (flow.degraded or "/" in flow.cluster_name):
                continue
            self.env.process(
                self._redispatch(flow.service, client_ip),
                name=f"redispatch:{flow.service.name}:{client_ip}",
            )

    def _redispatch(self, service: EdgeService, client_ip: IPv4Address):
        """Background re-resolution of one (client, service) flow after
        a handover (no packet to answer — memory is warmed, and switch
        entries are installed eagerly when the recorded attachment is
        one of ours and current)."""
        client = self.dispatcher.client_locations.get(client_ip)
        if client is None:
            return
        if self.registry.lookup(service.cloud_ip, service.port) is None:
            return  # unregistered while the handover was in flight
        self.stats["redispatched"] += 1
        resolution: Resolution = yield from self.dispatcher.resolve(
            service, client
        )
        if self.flow_memory.lookup(client_ip, service) is not None:
            return  # a real packet-in re-resolved first; keep its result
        self._remember(client_ip, service, resolution)
        datapath = self.datapaths.get(client.datapath_id)
        if (
            datapath is not None
            and self.topology.port_for(client.datapath_id, client_ip)
            == client.in_port
        ):
            self._install_path(
                datapath,
                client_ip,
                client.in_port,
                service,
                resolution.endpoint,
                None,
            )

    # -- idle scale-down --------------------------------------------------------------------

    def _on_memory_expire(self, flow: MemorizedFlow) -> None:
        if not self.config.auto_scale_down:
            return
        if flow.cluster_name == "cloud":
            return
        if self.flow_memory.service_in_use(flow.service):
            return
        self.stats["scale_downs"] += 1
        self.dispatcher.scale_down_idle(flow.service)
