"""The Dispatcher component (fig. 6/7).

"Our system architecture includes a Dispatcher component, which feeds
the Scheduler with information about the current system state and is
responsible for checking and triggering the deployment of edge
services.  This component also tracks the clients' current location."

Responsibilities here:

* gather per-cluster :class:`ClusterState` for the scheduler,
* execute the FAST/BEST decision — *with waiting* (hold until the FAST
  instance is ready) or *without waiting* (background-deploy BEST),
* deduplicate concurrent deployments of the same service to the same
  cluster (several clients can hit a cold service simultaneously —
  fig. 10 shows up to 8 deployments/s),
* record per-phase timings (Pull / Create / Scale-Up / wait-ready) for
  the figure-11..15 harnesses,
* track client locations.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.cluster.base import DeployError, EdgeCluster, ServiceEndpoint
from repro.containers.containerd import NodeDown, PullError
from repro.containers.registry import ImageNotFound, RegistryUnavailable
from repro.core.flow_memory import FlowMemory
from repro.core.schedulers.base import (
    ClientInfo,
    ClusterState,
    Decision,
    GlobalScheduler,
)
from repro.core.service_registry import EdgeService
from repro.core.state import ControlPlaneState, InMemoryState, InstanceRecord
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.metrics import MetricsRecorder
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim import Environment, Process

#: Faults a retry can plausibly cure: transient registry errors,
#: exhausted in-runtime pull retries, a crashed (rebooting) node.
RETRYABLE_FAULTS = (RegistryUnavailable, PullError, NodeDown)

#: Faults that will fail identically on every attempt: unknown image
#: reference (bad manifest) or a structurally invalid deployment.
FATAL_FAULTS = (ImageNotFound, DeployError)


@dataclasses.dataclass
class DeploymentOutcome:
    """Timing breakdown of one on-demand deployment."""

    service_name: str
    cluster_name: str
    pulled: bool = False
    created: bool = False
    scaled: bool = False
    pull_s: float = 0.0
    create_s: float = 0.0
    scale_up_s: float = 0.0
    wait_ready_s: float = 0.0
    total_s: float = 0.0
    ready: bool = True
    #: Phase that failed ("pull" / "create" / "scale_up" /
    #: "wait_ready"), or None when the deployment succeeded.
    failed_phase: str | None = None
    #: Stringified cause of the failure (diagnostics).
    error: str | None = None
    #: Attempts spent on the last phase executed (1 = no retries).
    attempts: int = 1


@dataclasses.dataclass(frozen=True)
class Resolution:
    """Where the current request should go."""

    #: None → forward toward the cloud.
    endpoint: ServiceEndpoint | None
    cluster_name: str
    #: The decision that produced this resolution (diagnostics).
    decision: Decision | None = None
    #: Set when this resolution is a graceful-degradation fallback:
    #: the preferred cluster whose deployment failed or whose breaker
    #: is open.  Propagated into the memorized flow so it re-resolves
    #: once the cluster recovers.
    degraded_from: str | None = None


class Dispatcher:
    """Deployment orchestration for the SDN controller."""

    def __init__(
        self,
        env: Environment,
        clusters: _t.Sequence[EdgeCluster],
        scheduler: GlobalScheduler,
        flow_memory: FlowMemory,
        recorder: MetricsRecorder | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        ready_timeout_s: float = 120.0,
        max_phase_retries: int = 2,
        retry_backoff_s: float = 0.5,
        retry_jitter: float = 0.1,
        retry_seed: int = 0,
        breaker_enabled: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        state: ControlPlaneState | None = None,
        on_instance_change: _t.Callable[[InstanceRecord], None] | None = None,
        site: str = "local",
    ) -> None:
        self.env = env
        self.clusters = list(clusters)
        self.scheduler = scheduler
        self.flow_memory = flow_memory
        #: All mutable dispatcher state lives here (breakers and client
        #: locations); the federated configuration hands every site
        #: component one shared replica.
        self.state = state if state is not None else InMemoryState()
        #: Publication hook for instance-state changes (None on the
        #: single-controller path: one ``is not None`` check per
        #: deployment is the whole cost).  The federated configuration
        #: uses it to announce running/stopped instances to peer sites.
        self.on_instance_change = on_instance_change
        #: Hook for "the BEST instance became ready after a no-waiting
        #: redirect".  The controller points this at
        #: ``repoint_service_flows`` so the *data plane* follows the
        #: memory repoint (drains + fresh redirect entries) instead of
        #: leaving switch entries aimed at the old endpoint until they
        #: idle out.  ``None`` falls back to the memory-only update.
        self.on_endpoint_ready: (
            _t.Callable[[EdgeService, str, ServiceEndpoint], int] | None
        ) = None
        #: Site identifier stamped into published instance records.
        self.site = site
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        self.calibration = calibration
        self.ready_timeout_s = ready_timeout_s
        #: Retries per deployment phase after the first attempt.
        self.max_phase_retries = max_phase_retries
        #: Base backoff before a phase retry (doubles per attempt),
        #: stretched by up to ``retry_jitter`` from a dispatcher-owned
        #: seeded RNG — drawn only on failures, so fault-free runs stay
        #: byte-identical.
        self.retry_backoff_s = retry_backoff_s
        self.retry_jitter = retry_jitter
        self._retry_rng = random.Random(retry_seed)
        self.breaker_enabled = breaker_enabled
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        #: cluster name -> circuit breaker; created lazily on the first
        #: deployment failure, so the mapping stays empty (and state
        #: gathering pays nothing) on healthy runs.  Breakers are
        #: site-local state: bind the state's mapping once and use it
        #: directly.
        self.breakers = self.state.breakers
        #: (service name, cluster name) -> in-flight deployment process.
        self._inflight: dict[tuple[str, str], Process] = {}
        #: (service name, cluster name) pairs mid-eviction: a migration
        #: released the instance and is draining its last sessions, so
        #: fresh resolutions must not land on it even though its port is
        #: still open.  Empty (one truthiness check per gather) outside
        #: active migrations.
        self.evicting: set[tuple[str, str]] = set()

    @property
    def client_locations(self) -> _t.MutableMapping[_t.Any, ClientInfo]:
        """Last known client locations (view into the state layer)."""
        return self.state.client_map

    # -- client tracking -----------------------------------------------------

    def note_client(self, ip, datapath_id: int, in_port: int) -> ClientInfo:
        """Record a client observation; invalidate its memorized flows
        when it shows up behind a *different* switch.

        A moved client's memorized flows were resolved for its old
        location, so replaying them from memory would pin the client to
        a possibly far-away instance until idle expiry.  Forgetting
        exactly the moved client's flows (nobody else's) forces a fresh
        scheduler resolution on its next request.
        """
        previous = self.state.client(ip)
        info = ClientInfo(
            ip=ip, datapath_id=datapath_id, in_port=in_port, last_seen=self.env.now
        )
        self.state.put_client(info)
        if previous is not None and previous.datapath_id != datapath_id:
            self.flow_memory.forget_client(ip)
        return info

    # -- state gathering ----------------------------------------------------------

    def gather_states(self, service: EdgeService) -> list[ClusterState]:
        """Snapshot every cluster's state for this service.

        Breaker consultation is skipped entirely while no breaker
        exists (nothing ever failed): one dict truthiness check is the
        whole fault-layer cost on healthy runs.
        """
        plan = service.plan
        breakers = self.breakers if self.breaker_enabled else None
        evicting = self.evicting
        utilization = self._site_utilization()
        states = []
        for cluster in self.clusters:
            blocked = degraded = False
            if breakers:
                breaker = breakers.get(cluster.name)
                if breaker is not None:
                    blocked = breaker.blocked(self.env.now)
                    degraded = breaker.state is BreakerState.HALF_OPEN
            if evicting and (service.name, cluster.name) in evicting:
                # Mid-eviction: the instance only exists to drain its
                # last sessions; present it as gone-and-unusable so no
                # new flow is scheduled onto it.
                states.append(
                    ClusterState(
                        cluster=cluster,
                        running=False,
                        created=cluster.is_created(plan),
                        cached=cluster.image_cached(plan),
                        has_capacity=False,
                        blocked=True,
                        degraded=degraded,
                        utilization=utilization,
                    )
                )
                continue
            states.append(
                ClusterState(
                    cluster=cluster,
                    running=cluster.is_running(plan),
                    created=cluster.is_created(plan),
                    cached=cluster.image_cached(plan),
                    has_capacity=self._has_room(service, cluster),
                    blocked=blocked,
                    degraded=degraded,
                    utilization=utilization,
                )
            )
        return states

    def _site_utilization(self) -> float:
        """Worst observed link utilization at this site, from the
        replicated observability rows (0.0 without a collector — the
        read is one empty-list check on that path)."""
        stats = self.state.link_stats()
        if not stats:
            return 0.0
        return max(
            (r.utilization for r in stats if r.site == self.site),
            default=0.0,
        )

    def breaker_for(self, cluster_name: str) -> CircuitBreaker:
        """The cluster's circuit breaker, created on first use."""
        breaker = self.breakers.get(cluster_name)
        if breaker is None:
            breaker = self.breakers[cluster_name] = CircuitBreaker(
                self.env,
                cluster_name,
                failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
                recorder=self.recorder,
            )
        return breaker

    def _has_room(self, service: EdgeService, cluster: EdgeCluster) -> bool:
        """Capacity check that also counts in-flight deployments —
        otherwise concurrent dispatches would all admit themselves
        against the same free slots."""
        if cluster.is_running(service.plan):
            return True
        if cluster.capacity is None:
            return True
        inflight = sum(
            1
            for (svc_name, cluster_name) in self._inflight
            if cluster_name == cluster.name and svc_name != service.name
        )
        return cluster.running_count() + inflight < cluster.capacity

    # -- the dispatch algorithm (fig. 7) ------------------------------------------------

    def resolve(self, service: EdgeService, client: ClientInfo):
        """Decide and (if needed) deploy; generator returning Resolution.

        Blocks (with-waiting) when the scheduler sends the current
        request to a cluster without a running instance; spawns a
        background deployment when a distinct BEST choice exists.

        Graceful degradation: when the awaited deployment fails, the
        dispatcher re-enters the paper's "without waiting" path over
        the remaining candidates — the client is redirected to the
        next FAST cluster, or ultimately the cloud, instead of seeing
        the failure.  The resulting flow is tagged with the failed
        cluster so it re-resolves once that cluster recovers.
        """
        attempted: set[str] = set()
        states = self.gather_states(service)
        decision = self.scheduler.choose(service, states, client)
        degraded_from = self._blocked_preference(states) if self.breakers else None

        while True:
            fast, best = decision.fast, decision.best

            if fast is None:
                # Current request to the cloud; optionally deploy BEST
                # for future requests (no-waiting with cloud fallback).
                if best is not None:
                    self.deploy_in_background(service, best)
                return Resolution(
                    endpoint=None,
                    cluster_name="cloud",
                    decision=decision,
                    degraded_from=degraded_from,
                )

            if best is None or best is fast or not fast.is_running(service.plan):
                # With-waiting (FAST == BEST), or the degenerate
                # no-waiting case where the scheduler picked a cold
                # FAST: the request holds until ready.
                outcome = yield from self.ensure_deployed(service, fast)
                if not outcome.ready:
                    attempted.add(fast.name)
                    if degraded_from is None:
                        degraded_from = fast.name
                    states = [
                        s
                        for s in self.gather_states(service)
                        if s.cluster.name not in attempted
                    ]
                    decision = self.scheduler.choose(service, states, client)
                    continue

            if best is not None and best is not fast:
                # Without-waiting: redirect now, deploy BEST in parallel.
                self.deploy_in_background(service, best)
            endpoint = fast.endpoint(service.plan)
            assert endpoint is not None
            return Resolution(
                endpoint=endpoint,
                cluster_name=fast.name,
                decision=decision,
                degraded_from=degraded_from,
            )

    def _blocked_preference(self, states: list[ClusterState]) -> str | None:
        """Nearest breaker-blocked cluster — the candidate the
        scheduler would likely have preferred were it healthy — so
        resolutions made while a breaker is open come out tagged
        degraded even without an in-band failure."""
        blocked = [s for s in states if s.blocked]
        if not blocked:
            return None
        return min(blocked, key=lambda s: (s.distance, s.cluster.name)).cluster.name

    # -- deployment pipeline -----------------------------------------------------------

    def ensure_deployed(self, service: EdgeService, cluster: EdgeCluster):
        """Run (or join) the deployment of ``service`` on ``cluster``.

        Generator returning :class:`DeploymentOutcome`.  Concurrent
        callers for the same (service, cluster) share one pipeline.
        """
        key = (service.name, cluster.name)
        inflight = self._inflight.get(key)
        if inflight is not None:
            outcome = yield inflight
            return outcome
        process = self.env.process(
            self._deploy(service, cluster), name=f"deploy:{key}"
        )
        self._inflight[key] = process
        try:
            outcome = yield process
        finally:
            self._inflight.pop(key, None)
        return outcome

    def _deploy(self, service: EdgeService, cluster: EdgeCluster):
        plan = service.plan
        tag = service.template_key or service.name
        outcome = DeploymentOutcome(
            service_name=service.name, cluster_name=cluster.name
        )
        started = self.env.now

        if cluster.is_running(plan):
            return outcome

        self.recorder.mark("deployments", started)

        if not cluster.image_cached(plan):
            t0 = self.env.now
            ok = yield from self._attempt_phase(
                outcome, "pull", lambda: cluster.pull(plan)
            )
            if not ok:
                return self._finish_failed(outcome, started, cluster)
            outcome.pulled = True
            outcome.pull_s = self.env.now - t0
            self.recorder.record(f"pull/{cluster.name}/{tag}", outcome.pull_s)

        if not cluster.is_created(plan):
            t0 = self.env.now
            ok = yield from self._attempt_phase(
                outcome, "create", lambda: cluster.create(plan)
            )
            if not ok:
                return self._finish_failed(outcome, started, cluster)
            outcome.created = True
            outcome.create_s = self.env.now - t0
            self.recorder.record(f"create/{cluster.name}/{tag}", outcome.create_s)

        t0 = self.env.now
        ok = yield from self._attempt_phase(
            outcome, "scale_up", lambda: cluster.scale_up(plan)
        )
        if not ok:
            return self._finish_failed(outcome, started, cluster)
        outcome.scaled = True
        outcome.scale_up_s = self.env.now - t0
        self.recorder.record(f"scale_up/{cluster.name}/{tag}", outcome.scale_up_s)

        # §VI: poll the service port until it answers.
        t0 = self.env.now
        ready = yield from cluster.wait_ready(
            plan,
            poll_interval_s=self.calibration.port_poll_interval_s,
            timeout_s=self.ready_timeout_s,
        )
        outcome.wait_ready_s = self.env.now - t0
        outcome.ready = ready
        self.recorder.record(
            f"wait_ready/{cluster.name}/{tag}", outcome.wait_ready_s
        )
        if not ready:
            # The instance never answered on its port: a deployment
            # failure like any other, not a silent half-install.
            outcome.failed_phase = "wait_ready"
            outcome.error = (
                f"service port not open within {self.ready_timeout_s}s"
            )
            return self._finish_failed(outcome, started, cluster)

        outcome.total_s = self.env.now - started
        self.recorder.record(f"deploy_total/{cluster.name}/{tag}", outcome.total_s)
        if self.breaker_enabled:
            breaker = self.breakers.get(cluster.name)
            if breaker is not None:
                breaker.record_success()
        if self.on_instance_change is not None:
            self._publish_instance(service, cluster, running=True)
        return outcome

    def _publish_instance(
        self, service: EdgeService, cluster: EdgeCluster, running: bool
    ) -> None:
        """Announce an instance transition through ``on_instance_change``
        (federated configuration only; never called when the hook is
        unset)."""
        assert self.on_instance_change is not None
        self.on_instance_change(
            InstanceRecord(
                service_name=service.name,
                cluster_name=cluster.name,
                site=self.site,
                running=running,
                endpoint=cluster.endpoint(service.plan) if running else None,
                distance=cluster.distance,
                observed_at=self.env.now,
            )
        )

    def _attempt_phase(self, outcome: DeploymentOutcome, phase: str, make_call):
        """Run one deployment phase with bounded, jittered retries
        (generator returning bool: did the phase complete?).

        Retryable faults back off exponentially (``retry_backoff_s * 2^n``,
        stretched by up to ``retry_jitter`` from the seeded RNG); fatal
        faults fail immediately.  On the happy path this adds no events
        and draws no random numbers.
        """
        attempt = 1
        while True:
            try:
                yield from make_call()
                outcome.attempts = attempt
                return True
            except FATAL_FAULTS as exc:
                outcome.failed_phase = phase
                outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.attempts = attempt
                return False
            except RETRYABLE_FAULTS as exc:
                if attempt > self.max_phase_retries:
                    outcome.failed_phase = phase
                    outcome.error = f"{type(exc).__name__}: {exc}"
                    outcome.attempts = attempt
                    return False
                backoff = self.retry_backoff_s * 2 ** (attempt - 1)
                backoff *= 1.0 + self.retry_jitter * self._retry_rng.random()
                self.recorder.count(f"deploy_retries/{outcome.cluster_name}")
                yield self.env.timeout(backoff)
                attempt += 1

    def _finish_failed(
        self,
        outcome: DeploymentOutcome,
        started: float,
        cluster: EdgeCluster,
    ) -> DeploymentOutcome:
        """Close out a failed deployment: stamp the outcome, count the
        failure, and feed the cluster's circuit breaker."""
        outcome.ready = False
        outcome.total_s = self.env.now - started
        self.recorder.count(f"deploy_failures/{cluster.name}")
        if self.breaker_enabled:
            self.breaker_for(cluster.name).record_failure()
        return outcome

    def deploy_in_background(
        self, service: EdgeService, cluster: EdgeCluster
    ) -> Process:
        """Deploy without blocking the caller; when the instance is
        ready, repoint the service's memorized flows to it so future
        requests use the BEST location."""
        return self.env.process(
            self._background(service, cluster),
            name=f"bg-deploy:{service.name}@{cluster.name}",
        )

    def _background(self, service: EdgeService, cluster: EdgeCluster):
        outcome = yield from self.ensure_deployed(service, cluster)
        if not outcome.ready:
            # BEST failed: clients stay where they are, but their flows
            # are tagged degraded so they re-resolve (instead of being
            # replayed from memory) once this cluster recovers.
            self.flow_memory.mark_service_degraded(service, cluster.name)
            return
        endpoint = cluster.endpoint(service.plan)
        if endpoint is not None:
            if self.on_endpoint_ready is not None:
                self.on_endpoint_ready(service, cluster.name, endpoint)
            else:
                self.flow_memory.update_endpoint(
                    service, cluster.name, endpoint
                )

    # -- scale-down -------------------------------------------------------------------------

    def scale_down_idle(self, service: EdgeService) -> None:
        """Scale the service down on every cluster where it runs
        (called by the controller when the last memorized flow for the
        service expired)."""
        for cluster in self.clusters:
            if cluster.is_running(service.plan):
                self.env.process(
                    self._scale_down(service, cluster),
                    name=f"scaledown:{service.name}@{cluster.name}",
                )

    def _scale_down(self, service: EdgeService, cluster: EdgeCluster):
        yield from cluster.scale_down(service.plan)
        if self.on_instance_change is not None:
            self._publish_instance(service, cluster, running=False)
