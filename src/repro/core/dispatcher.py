"""The Dispatcher component (fig. 6/7).

"Our system architecture includes a Dispatcher component, which feeds
the Scheduler with information about the current system state and is
responsible for checking and triggering the deployment of edge
services.  This component also tracks the clients' current location."

Responsibilities here:

* gather per-cluster :class:`ClusterState` for the scheduler,
* execute the FAST/BEST decision — *with waiting* (hold until the FAST
  instance is ready) or *without waiting* (background-deploy BEST),
* deduplicate concurrent deployments of the same service to the same
  cluster (several clients can hit a cold service simultaneously —
  fig. 10 shows up to 8 deployments/s),
* record per-phase timings (Pull / Create / Scale-Up / wait-ready) for
  the figure-11..15 harnesses,
* track client locations.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.base import EdgeCluster, ServiceEndpoint
from repro.core.flow_memory import FlowMemory
from repro.core.schedulers.base import (
    ClientInfo,
    ClusterState,
    Decision,
    GlobalScheduler,
)
from repro.core.service_registry import EdgeService
from repro.metrics import MetricsRecorder
from repro.services.calibration import Calibration, DEFAULT_CALIBRATION
from repro.sim import Environment, Process


@dataclasses.dataclass
class DeploymentOutcome:
    """Timing breakdown of one on-demand deployment."""

    service_name: str
    cluster_name: str
    pulled: bool = False
    created: bool = False
    scaled: bool = False
    pull_s: float = 0.0
    create_s: float = 0.0
    scale_up_s: float = 0.0
    wait_ready_s: float = 0.0
    total_s: float = 0.0
    ready: bool = True


@dataclasses.dataclass(frozen=True)
class Resolution:
    """Where the current request should go."""

    #: None → forward toward the cloud.
    endpoint: ServiceEndpoint | None
    cluster_name: str
    #: The decision that produced this resolution (diagnostics).
    decision: Decision | None = None


class Dispatcher:
    """Deployment orchestration for the SDN controller."""

    def __init__(
        self,
        env: Environment,
        clusters: _t.Sequence[EdgeCluster],
        scheduler: GlobalScheduler,
        flow_memory: FlowMemory,
        recorder: MetricsRecorder | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        ready_timeout_s: float = 120.0,
    ) -> None:
        self.env = env
        self.clusters = list(clusters)
        self.scheduler = scheduler
        self.flow_memory = flow_memory
        self.recorder = recorder if recorder is not None else MetricsRecorder()
        self.calibration = calibration
        self.ready_timeout_s = ready_timeout_s
        #: (service name, cluster name) -> in-flight deployment process.
        self._inflight: dict[tuple[str, str], Process] = {}
        #: client ip -> last known location.
        self.client_locations: dict[_t.Any, ClientInfo] = {}

    # -- client tracking -----------------------------------------------------

    def note_client(self, ip, datapath_id: int, in_port: int) -> ClientInfo:
        info = ClientInfo(
            ip=ip, datapath_id=datapath_id, in_port=in_port, last_seen=self.env.now
        )
        self.client_locations[ip] = info
        return info

    # -- state gathering ----------------------------------------------------------

    def gather_states(self, service: EdgeService) -> list[ClusterState]:
        """Snapshot every cluster's state for this service."""
        plan = service.plan
        return [
            ClusterState(
                cluster=cluster,
                running=cluster.is_running(plan),
                created=cluster.is_created(plan),
                cached=cluster.image_cached(plan),
                has_capacity=self._has_room(service, cluster),
            )
            for cluster in self.clusters
        ]

    def _has_room(self, service: EdgeService, cluster: EdgeCluster) -> bool:
        """Capacity check that also counts in-flight deployments —
        otherwise concurrent dispatches would all admit themselves
        against the same free slots."""
        if cluster.is_running(service.plan):
            return True
        if cluster.capacity is None:
            return True
        inflight = sum(
            1
            for (svc_name, cluster_name) in self._inflight
            if cluster_name == cluster.name and svc_name != service.name
        )
        return cluster.running_count() + inflight < cluster.capacity

    # -- the dispatch algorithm (fig. 7) ------------------------------------------------

    def resolve(self, service: EdgeService, client: ClientInfo):
        """Decide and (if needed) deploy; generator returning Resolution.

        Blocks (with-waiting) when the scheduler sends the current
        request to a cluster without a running instance; spawns a
        background deployment when a distinct BEST choice exists.
        """
        states = self.gather_states(service)
        decision = self.scheduler.choose(service, states, client)
        fast, best = decision.fast, decision.best

        if fast is None:
            # Current request to the cloud; optionally deploy BEST for
            # future requests (no-waiting with cloud fallback).
            if best is not None:
                self.deploy_in_background(service, best)
            return Resolution(endpoint=None, cluster_name="cloud", decision=decision)

        if best is None or best is fast:
            # With-waiting: FAST == BEST; the request holds until ready.
            outcome = yield from self.ensure_deployed(service, fast)
            if not outcome.ready:
                return Resolution(
                    endpoint=None, cluster_name="cloud", decision=decision
                )
            endpoint = fast.endpoint(service.plan)
            assert endpoint is not None
            return Resolution(
                endpoint=endpoint, cluster_name=fast.name, decision=decision
            )

        # Without-waiting: redirect now to FAST, deploy BEST in parallel.
        if not fast.is_running(service.plan):
            # Degenerate case (scheduler picked a cold FAST): wait on it.
            outcome = yield from self.ensure_deployed(service, fast)
            if not outcome.ready:
                return Resolution(
                    endpoint=None, cluster_name="cloud", decision=decision
                )
        self.deploy_in_background(service, best)
        endpoint = fast.endpoint(service.plan)
        assert endpoint is not None
        return Resolution(endpoint=endpoint, cluster_name=fast.name, decision=decision)

    # -- deployment pipeline -----------------------------------------------------------

    def ensure_deployed(self, service: EdgeService, cluster: EdgeCluster):
        """Run (or join) the deployment of ``service`` on ``cluster``.

        Generator returning :class:`DeploymentOutcome`.  Concurrent
        callers for the same (service, cluster) share one pipeline.
        """
        key = (service.name, cluster.name)
        inflight = self._inflight.get(key)
        if inflight is not None:
            outcome = yield inflight
            return outcome
        process = self.env.process(
            self._deploy(service, cluster), name=f"deploy:{key}"
        )
        self._inflight[key] = process
        try:
            outcome = yield process
        finally:
            self._inflight.pop(key, None)
        return outcome

    def _deploy(self, service: EdgeService, cluster: EdgeCluster):
        plan = service.plan
        tag = service.template_key or service.name
        outcome = DeploymentOutcome(
            service_name=service.name, cluster_name=cluster.name
        )
        started = self.env.now

        if cluster.is_running(plan):
            return outcome

        self.recorder.mark("deployments", started)

        if not cluster.image_cached(plan):
            t0 = self.env.now
            yield from cluster.pull(plan)
            outcome.pulled = True
            outcome.pull_s = self.env.now - t0
            self.recorder.record(f"pull/{cluster.name}/{tag}", outcome.pull_s)

        if not cluster.is_created(plan):
            t0 = self.env.now
            yield from cluster.create(plan)
            outcome.created = True
            outcome.create_s = self.env.now - t0
            self.recorder.record(f"create/{cluster.name}/{tag}", outcome.create_s)

        t0 = self.env.now
        yield from cluster.scale_up(plan)
        outcome.scaled = True
        outcome.scale_up_s = self.env.now - t0
        self.recorder.record(f"scale_up/{cluster.name}/{tag}", outcome.scale_up_s)

        # §VI: poll the service port until it answers.
        t0 = self.env.now
        ready = yield from cluster.wait_ready(
            plan,
            poll_interval_s=self.calibration.port_poll_interval_s,
            timeout_s=self.ready_timeout_s,
        )
        outcome.wait_ready_s = self.env.now - t0
        outcome.ready = ready
        self.recorder.record(
            f"wait_ready/{cluster.name}/{tag}", outcome.wait_ready_s
        )

        outcome.total_s = self.env.now - started
        self.recorder.record(f"deploy_total/{cluster.name}/{tag}", outcome.total_s)
        return outcome

    def deploy_in_background(
        self, service: EdgeService, cluster: EdgeCluster
    ) -> Process:
        """Deploy without blocking the caller; when the instance is
        ready, repoint the service's memorized flows to it so future
        requests use the BEST location."""
        return self.env.process(
            self._background(service, cluster),
            name=f"bg-deploy:{service.name}@{cluster.name}",
        )

    def _background(self, service: EdgeService, cluster: EdgeCluster):
        outcome = yield from self.ensure_deployed(service, cluster)
        if not outcome.ready:
            return
        endpoint = cluster.endpoint(service.plan)
        if endpoint is not None:
            self.flow_memory.update_endpoint(service, cluster.name, endpoint)

    # -- scale-down -------------------------------------------------------------------------

    def scale_down_idle(self, service: EdgeService) -> None:
        """Scale the service down on every cluster where it runs
        (called by the controller when the last memorized flow for the
        service expired)."""
        for cluster in self.clusters:
            if cluster.is_running(service.plan):
                self.env.process(
                    cluster.scale_down(service.plan),
                    name=f"scaledown:{service.name}@{cluster.name}",
                )
