"""Command-line interface: run experiments and regenerate the docs.

Usage::

    python -m repro list
    python -m repro run fig11 [--fast]
    python -m repro run all [--fast]
    python -m repro experiments-md [--fast] [-o EXPERIMENTS.md]

``--fast`` shrinks instance/repetition counts for a quick look; the
published EXPERIMENTS.md uses the full paper-scale parameters.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS, ExperimentResult
from repro.experiments.engine import run_experiment_shard


def _run_one(name: str, fast: bool) -> ExperimentResult:
    # One experiment, in-process; the engine owns the --fast parameter
    # table so the serial CLI and the parallel suite runner agree.
    return run_experiment_shard(name, fast)


def cmd_list() -> int:
    for name, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"{name:22} {doc}")
    return 0


def cmd_run(names: list[str], fast: bool) -> int:
    targets = list(EXPERIMENTS) if names == ["all"] else names
    unknown = [n for n in targets if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in targets:
        result = _run_one(name, fast)
        print(result.render())
        print()
    return 0


def cmd_experiments_md(fast: bool, output: str | None) -> int:
    from repro.docs import generate_experiments_md

    text = generate_experiments_md(fast=fast, run=_run_one)
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiments by name")
    run_parser.add_argument("names", nargs="+", help="experiment names or 'all'")
    run_parser.add_argument("--fast", action="store_true", help="reduced sizes")

    md_parser = sub.add_parser(
        "experiments-md", help="regenerate EXPERIMENTS.md content"
    )
    md_parser.add_argument("--fast", action="store_true")
    md_parser.add_argument("-o", "--output", default=None)

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.names, args.fast)
    if args.command == "experiments-md":
        return cmd_experiments_md(args.fast, args.output)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
