"""The federated multi-site testbed (Extension D1).

Scales the single-EGS C³ setup out to *n* radio sites: every site has
its own gNB switch, Edge Gateway Server, Docker cluster, clients, and
— the point of the exercise — its own :class:`SiteController`.  Sites
meet at a backbone switch (which also fronts the cloud uplink) on the
data plane, and at a :class:`~repro.core.federation.SharedStateHub` on
the control plane:

.. code-block:: text

            clients ── gnb-site0 ──┐             ┌── gnb-site1 ── clients
                          │        │             │       │
                 site0-egs┘      backbone ─ cloud       └site1-egs
                                   │
            controller-site0 ═ shared state hub ═ controller-site1

The backbone runs a static forwarding app (no interception): per-host
routes plus a default route to the cloud.  All service interception
and redirection happens at the site switches, each owned exclusively
by its site controller.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster import DockerCluster, EdgeCluster
from repro.containers import Containerd, DockerEngine, Registry
from repro.containers.registry import PRIVATE_PROFILE, PUBLIC_PROFILE
from repro.core import (
    Annotator,
    ControllerConfig,
    GlobalScheduler,
    LowLatencyScheduler,
    ServiceRegistry,
    SwitchTopology,
)
from repro.core.controller import PRIORITY_DEFAULT, PRIORITY_INFRA
from repro.core.federation import SharedStateHub, SiteController, SiteReplica
from repro.core.migration import BandwidthLedger, MigrationManager, MigrationOutcome
from repro.core.service_registry import EdgeService
from repro.metrics import MetricsRecorder
from repro.net import Host, Link
from repro.net.addressing import IPAllocator, IPv4Address, MACAllocator
from repro.net.cloud import CloudHost
from repro.net.link import GBPS
from repro.net.openflow import FlowMatch, OpenFlowSwitch, Output
from repro.ops import OPS_PORT, FlowStatsCollector, OpsApp, OpsReadModel
from repro.sdnfw import Datapath, SDNApp
from repro.services import DEFAULT_CALIBRATION, Calibration, ServiceTemplate, build_catalog
from repro.services.catalog import template_by_key
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.parallel.model import EdgeWorkload
    from repro.sim.parallel.partitioner import TopologySpec
    from repro.sim.parallel.testbed import TestbedReplay

#: Name under which a site's shared-state link appears in
#: ``named_links`` (pair it with the site name to partition it).
SHARED_STATE = "shared-state"

#: Name under which a site's trunk (gNB <-> backbone) link appears in
#: ``named_links`` (pair it with the site name to partition it).
BACKBONE = "backbone"


@dataclasses.dataclass(frozen=True)
class FederationConfig:
    """Knobs of the federated testbed."""

    n_sites: int = 2
    clients_per_site: int = 2
    #: One-way site <-> shared-state latency; a write reaches remote
    #: replicas after two of these (site -> hub -> peers).
    propagation_delay_s: float = 0.025
    #: Added scheduler distance for serving from another site.
    remote_distance_penalty: int = 2
    registry: str = "public"
    client_link_latency_s: float = 200e-6
    client_link_bandwidth_bps: float = 1 * GBPS
    egs_link_latency_s: float = 50e-6
    egs_link_bandwidth_bps: float = 10 * GBPS
    #: Site gNB <-> backbone.
    trunk_latency_s: float = 0.002
    trunk_bandwidth_bps: float = 10 * GBPS
    cloud_link_latency_s: float = 0.015
    cloud_link_bandwidth_bps: float = 1 * GBPS
    control_channel_latency_s: float = 150e-6
    auto_scale_down: bool = False
    #: Share of each trunk's bandwidth the migration planner may
    #: commit to checkpoint transfers (the rest stays with data).
    migration_budget_fraction: float = 0.4
    #: Serve the operational REST API (:mod:`repro.ops`) on every
    #: site's EGS host at :data:`repro.ops.OPS_PORT`.
    ops_api: bool = True
    #: Poll each site's gNB switch counters every this many seconds
    #: with a :class:`~repro.ops.FlowStatsCollector`; the trunk-link
    #: utilization rows replicate through the shared-state hub
    #: (``None``: no collectors).
    flow_stats_period_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one site")
        if self.clients_per_site < 1:
            raise ValueError("need at least one client per site")
        if self.registry not in ("public", "private"):
            raise ValueError(f"unknown registry {self.registry!r}")
        if self.flow_stats_period_s is not None and self.flow_stats_period_s <= 0:
            raise ValueError("flow_stats_period_s must be positive")

    @property
    def data_lookahead_s(self) -> float:
        """Lookahead of the partitioned kernel's *data* cut channels.

        A packet entering the trunk at ``t`` cannot reach the far side
        before ``t + trunk_latency_s`` — the physical guarantee the
        conservative synchronizer runs on for backbone traffic.
        """
        return self.trunk_latency_s

    @property
    def control_lookahead_s(self) -> float:
        """Lookahead of the *control* (shared-state) cut channels.

        Replication rides the hub's one-way propagation delay, not the
        trunk: a state write submitted at ``t`` is delivered remotely
        no earlier than ``t + propagation_delay_s``.  With the default
        knobs this is 12.5x the trunk latency, so control channels
        grant far wider safe-time windows than data channels — the
        per-kind derivation the adaptive round engine exploits.
        """
        return self.propagation_delay_s

    def partition_plan(
        self,
        n_clients: int | None = None,
        n_requests: int = 100_000,
        duration_s: float = 60.0,
        seed: int = 42,
    ) -> tuple["EdgeWorkload", "TopologySpec"]:
        """Derive a partitioned-replay plan from this federation shape.

        Maps the testbed's latency knobs onto the synthetic replay
        workload of ``repro.sim.parallel.model`` and cuts the topology
        at the trunk links — one partition per site plus the backbone.
        Validates the cut eagerly, so a federation configured with a
        zero-latency trunk (no lookahead window) raises
        :class:`~repro.sim.parallel.PartitionError` here rather than
        deadlocking a run later.
        """
        from repro.sim.parallel import model as _parallel_model

        workload = _parallel_model.EdgeWorkload(
            n_sites=self.n_sites,
            n_clients=(
                n_clients
                if n_clients is not None
                else self.n_sites * self.clients_per_site
            ),
            n_requests=n_requests,
            duration_s=duration_s,
            client_latency_s=self.client_link_latency_s,
            egs_latency_s=self.egs_link_latency_s,
            trunk_latency_s=self.trunk_latency_s,
            cloud_latency_s=self.cloud_link_latency_s,
            seed=seed,
        )
        topology = _parallel_model.topology_spec(workload)
        topology.partitions()  # eager validation (e.g. zero-latency trunk)
        return workload, topology

    def testbed_replay(
        self,
        n_requests: int = 40,
        duration_s: float = 4.0,
        seed: int = 42,
        service_keys: tuple[str, ...] = ("asm", "nginx"),
    ) -> tuple["TestbedReplay", "TopologySpec"]:
        """Derive a *full-testbed* partitioned replay from this shape.

        Unlike :meth:`partition_plan` (a synthetic approximation), the
        replay builds the real stack — gNB switches, EGS hosts, Docker
        clusters, clients, and per-site :class:`SiteController`\\ s —
        inside each partition, with shared-state replication riding a
        dedicated control channel per site.  The cut is validated
        eagerly: a zero-latency trunk *or* zero propagation delay
        leaves the conservative synchronizer without lookahead and
        raises :class:`~repro.sim.parallel.PartitionError` here
        instead of deadlocking a run.
        """
        from repro.sim.parallel import testbed as _parallel_testbed

        replay = _parallel_testbed.build_replay(
            self,
            n_requests=n_requests,
            duration_s=duration_s,
            seed=seed,
            service_keys=service_keys,
        )
        topology = _parallel_testbed.replay_topology(replay)
        topology.partitions()  # eager validation of both channel kinds
        return replay, topology


class BackboneApp(SDNApp):
    """Static forwarding on the backbone switch: per-host routes plus
    a default route to the cloud.  No interception — transparency is a
    site-switch concern."""

    def __init__(self, env: Environment, topology: SwitchTopology) -> None:
        super().__init__(env, name="backbone")
        self.topology = topology

    def on_datapath_join(self, datapath: Datapath) -> None:
        cloud_port = self.topology.cloud_port(datapath.id)
        if cloud_port is not None:
            datapath.add_flow(
                FlowMatch(),
                [Output(cloud_port)],
                priority=PRIORITY_DEFAULT,
                cookie="default:cloud",
                notify_removal=False,
            )
        for ip, port in self.topology.hosts(datapath.id).items():
            self._route(datapath, ip, port)

    @staticmethod
    def _route(datapath: Datapath, ip: IPv4Address, port: int) -> None:
        datapath.add_flow(
            FlowMatch(ip_dst=ip),
            [Output(port)],
            priority=PRIORITY_INFRA,
            cookie=f"infra:{ip}",
            notify_removal=False,
        )

    def install_host_route(self, ip: IPv4Address) -> None:
        """(Re)install the backbone route for one host (handover)."""
        for datapath in self.datapaths.values():
            port = self.topology.port_for(datapath.id, ip)
            if port is None:
                continue
            datapath.delete_flows(cookie=f"infra:{ip}")
            self._route(datapath, ip, port)


@dataclasses.dataclass
class Site:
    """Everything one radio site owns."""

    name: str
    switch: OpenFlowSwitch
    egs: Host
    cluster: DockerCluster
    clients: list[Host]
    topology: SwitchTopology
    registry: ServiceRegistry
    replica: SiteReplica
    controller: SiteController
    #: Port on the site switch toward the backbone.
    trunk_port: int
    #: Port on the backbone toward this site.
    backbone_port: int
    #: Live-migration endpoint (wired after all sites exist).
    manager: "MigrationManager | None" = None
    #: Operational surface (wired after all sites exist).
    collector: "FlowStatsCollector | None" = None
    ops: "OpsReadModel | None" = None
    ops_app: "OpsApp | None" = None


class FederatedTestbed:
    """*n* sites, *n* controllers, one shared state, one backbone."""

    def __init__(
        self,
        config: FederationConfig | None = None,
        scheduler_factory: _t.Callable[[], GlobalScheduler] | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.config = config or FederationConfig()
        self.calibration = calibration
        self.env = Environment()
        self.recorder = MetricsRecorder()
        self._ips = IPAllocator("10.0.0.0")
        self._macs = MACAllocator()
        self._service_ips = IPAllocator("203.0.113.0")
        make_scheduler = scheduler_factory or LowLatencyScheduler

        # -- shared state + catalog ---------------------------------------
        self.hub = SharedStateHub(
            self.env, propagation_delay_s=self.config.propagation_delay_s
        )
        self.public_registry = Registry(self.env, "docker-hub", PUBLIC_PROFILE)
        self.private_registry = Registry(self.env, "private-lan", PRIVATE_PROFILE)
        self.images, self.behaviors = build_catalog(calibration)
        for image in self.images.values():
            self.public_registry.publish(image)
            self.private_registry.publish(image)
        self.active_registry = (
            self.private_registry
            if self.config.registry == "private"
            else self.public_registry
        )
        self.annotator = Annotator(self.images, self.behaviors)

        # -- backbone + cloud ---------------------------------------------
        self.backbone_switch = OpenFlowSwitch(self.env, "backbone", datapath_id=1)
        self.switches: dict[int, OpenFlowSwitch] = {1: self.backbone_switch}
        self.backbone_topology = SwitchTopology()
        self.backbone = BackboneApp(self.env, self.backbone_topology)
        self.cloud = CloudHost(
            self.env,
            "cloud",
            self._macs.allocate(),
            IPv4Address.parse("198.51.100.1"),
        )
        cloud_port, cloud_iface = self.backbone_switch.add_port(
            self._macs.allocate()
        )
        Link(
            self.env,
            self.cloud.iface,
            cloud_iface,
            self.config.cloud_link_bandwidth_bps,
            self.config.cloud_link_latency_s,
        )
        self.backbone_topology.set_cloud_port(1, cloud_port)

        # -- sites ---------------------------------------------------------
        self.sites: list[Site] = []
        self.clusters: list[EdgeCluster] = []
        self.clients: list[Host] = []
        #: Logical links the fault injector can partition by name pair,
        #: e.g. ``("site0", "shared-state")``.
        self.named_links: dict[tuple[str, str], _t.Any] = {}
        controller_config = dataclasses.replace(
            ControllerConfig.from_calibration(calibration),
            auto_scale_down=self.config.auto_scale_down,
        )
        for index in range(self.config.n_sites):
            self._build_site(index, make_scheduler(), controller_config)

        # Every site knows every remote host through its trunk; the
        # backbone knows every host through the owning site's port.
        self._register_cross_site_routes()

        # -- attach controllers (routes install from final topologies) ----
        self.backbone.attach(
            self.backbone_switch,
            latency_s=self.config.control_channel_latency_s,
        )
        for site in self.sites:
            site.controller.attach(
                site.switch, latency_s=self.config.control_channel_latency_s
            )

        # -- live migration -------------------------------------------------
        # One shared ledger: every site's planner sees the same trunk
        # commitments, so concurrent inbound migrations at different
        # sites cannot jointly oversubscribe a source trunk.
        self.ledger = BandwidthLedger(
            self.env,
            default_capacity_bps=int(
                self.config.trunk_bandwidth_bps
                * self.config.migration_budget_fraction
            ),
        )
        peers = {site.name: site.egs.ip for site in self.sites}
        hosts_by_ip = {client.ip: client for client in self.clients}

        def _conntrack(client_ip, dst_ip, dst_port):
            # The gNB's connection-tracking view: which source ports of
            # this client have live (or half-open) conversations with
            # the service address.  Stood in for by the client host's
            # own socket table — identical information, zero protocol.
            host = hosts_by_ip.get(client_ip)
            return host.tracked_ports(dst_ip, dst_port) if host else ()

        for site in self.sites:
            site.controller.conntrack = _conntrack
            site.manager = MigrationManager(
                self.env,
                site.name,
                site.controller,
                site.cluster,
                site.egs,
                peers,
                self.ledger,
            )

        # -- operational surface (repro.ops) -------------------------------
        for site in self.sites:
            if self.config.flow_stats_period_s is not None:
                site.collector = FlowStatsCollector(
                    self.env,
                    site.name,
                    site.switch,
                    {
                        f"trunk:{site.name}": self.named_links[
                            (site.name, BACKBONE)
                        ]
                    },
                    state=site.replica,
                    period_s=self.config.flow_stats_period_s,
                    recorder=self.recorder,
                ).start()
            site.ops = OpsReadModel(
                self.env,
                site.controller,
                site=site.name,
                switches=(site.switch,),
                manager=site.manager,
                collector=site.collector,
            )
            if self.config.ops_api:
                site.ops_app = OpsApp(
                    site.ops, register=self._site_registrar(site)
                )
                site.egs.open_port(OPS_PORT, site.ops_app)

        self._cloud_apps: dict[str, _t.Any] = {}
        self.settle(0.1)

    # -- assembly ----------------------------------------------------------

    def _build_site(
        self,
        index: int,
        scheduler: GlobalScheduler,
        controller_config: ControllerConfig,
    ) -> Site:
        name = f"site{index}"
        dpid = index + 2  # backbone owns dpid 1
        switch = OpenFlowSwitch(self.env, f"gnb-{name}", datapath_id=dpid)
        self.switches[dpid] = switch
        topology = SwitchTopology()

        # Trunk to the backbone.
        backbone_port, backbone_iface = self.backbone_switch.add_port(
            self._macs.allocate()
        )
        trunk_port, trunk_iface = switch.add_port(self._macs.allocate())
        trunk_link = Link(
            self.env,
            trunk_iface,
            backbone_iface,
            self.config.trunk_bandwidth_bps,
            self.config.trunk_latency_s,
        )
        self.named_links[(name, BACKBONE)] = trunk_link
        topology.set_cloud_port(dpid, trunk_port)

        # EGS with its own runtime + Docker cluster.
        egs = Host(
            self.env, f"{name}-egs", self._macs.allocate(), self._ips.allocate()
        )
        self._wire_host(
            egs,
            switch,
            topology,
            self.config.egs_link_bandwidth_bps,
            self.config.egs_link_latency_s,
        )
        containerd = Containerd(self.env, egs)
        engine = DockerEngine(self.env, containerd)
        cluster = DockerCluster(
            self.env,
            f"{name}-docker",
            egs,
            engine,
            self.active_registry,
            distance=0,
        )
        self.clusters.append(cluster)

        clients = []
        for j in range(self.config.clients_per_site):
            client = Host(
                self.env,
                f"{name}-rpi{j:02d}",
                self._macs.allocate(),
                self._ips.allocate(),
            )
            self._wire_host(
                client,
                switch,
                topology,
                self.config.client_link_bandwidth_bps,
                self.config.client_link_latency_s,
            )
            clients.append(client)
        self.clients.extend(clients)

        replica = self.hub.connect(name)
        registry = ServiceRegistry(self.annotator, state=replica)
        controller = SiteController(
            self.env,
            registry,
            [cluster],
            scheduler,
            topology,
            replica,
            config=controller_config,
            calibration=self.calibration,
            recorder=self.recorder,
            remote_distance_penalty=self.config.remote_distance_penalty,
        )
        self.named_links[(name, SHARED_STATE)] = replica.link

        site = Site(
            name=name,
            switch=switch,
            egs=egs,
            cluster=cluster,
            clients=clients,
            topology=topology,
            registry=registry,
            replica=replica,
            controller=controller,
            trunk_port=trunk_port,
            backbone_port=backbone_port,
        )
        self.sites.append(site)
        return site

    def _wire_host(
        self,
        host: Host,
        switch: OpenFlowSwitch,
        topology: SwitchTopology,
        bandwidth_bps: float,
        latency_s: float,
    ) -> int:
        port_no, iface = switch.add_port(self._macs.allocate())
        Link(self.env, host.iface, iface, bandwidth_bps, latency_s)
        topology.register_host(switch.datapath_id, host.ip, port_no)
        return port_no

    def _register_cross_site_routes(self) -> None:
        # Snapshot each site's *local* hosts before registering anything
        # anywhere — remote entries added below would otherwise leak
        # into later sites' "local" views and misroute the backbone.
        local = {
            site.name: list(site.topology.hosts(site.switch.datapath_id))
            for site in self.sites
        }
        for site in self.sites:
            for ip in local[site.name]:
                self.backbone_topology.register_host(1, ip, site.backbone_port)
            for other in self.sites:
                if other is site:
                    continue
                for ip in local[site.name]:
                    other.topology.register_host(
                        other.switch.datapath_id, ip, other.trunk_port
                    )

    # -- conveniences shared with the classic testbed ----------------------

    @property
    def controllers(self) -> list[SiteController]:
        return [site.controller for site in self.sites]

    @property
    def controller(self) -> SiteController:
        """The first site's controller (single-controller interface for
        tools that expect one, e.g. parts of the fault injector)."""
        return self.sites[0].controller

    def settle(self, duration_s: float = 0.01) -> None:
        """Advance time so in-flight control traffic lands."""
        self.env.run(until=self.env.now + duration_s)

    def settle_replication(self, margin_s: float = 0.01) -> None:
        """Advance past one full site -> hub -> peers propagation."""
        self.settle(2 * self.config.propagation_delay_s + margin_s)

    def site_of(self, client: Host) -> Site:
        for site in self.sites:
            if client in site.clients:
                return site
        raise ValueError(f"{client.name!r} belongs to no site")

    # -- service management ------------------------------------------------

    def register_template(
        self,
        template: ServiceTemplate,
        site: Site | None = None,
        cloud_ip: IPv4Address | None = None,
        port: int = 80,
        wait_replication: bool = True,
    ) -> EdgeService:
        """Register one catalog service at ``site`` (default: site0)
        and serve it from the cloud.  Registration replicates to every
        other site, which installs its intercepts when the write lands;
        by default this blocks until the propagation is done."""
        at = site or self.sites[0]
        ip = cloud_ip if cloud_ip is not None else self._service_ips.allocate()
        service = at.controller.register_service(
            template.definition_yaml, ip, port, template_key=template.key
        )
        behavior = self.behaviors.get(template.images[0].reference)
        factory = behavior.app_factory()
        if factory is not None:
            app = factory(self.env)
            self.cloud.open_service(ip, port, app)
            self._cloud_apps[service.name] = app
        if wait_replication:
            self.settle_replication()
        else:
            self.settle(0.005)
        return service

    def _site_registrar(
        self, site: Site
    ) -> _t.Callable[[str], EdgeService]:
        """``POST /services`` hook for ``site``'s ops API.

        Runs *inside* the simulation, so it must not :meth:`settle` —
        intercepts install a control hop later, and remote sites see
        the registration once replication lands."""

        def register(key: str) -> EdgeService:
            template = template_by_key(key)
            ip = self._service_ips.allocate()
            service = site.controller.register_service(
                template.definition_yaml, ip, 80, template_key=template.key
            )
            behavior = self.behaviors.get(template.images[0].reference)
            factory = behavior.app_factory()
            if factory is not None:
                app = factory(self.env)
                self.cloud.open_service(ip, 80, app)
                self._cloud_apps[service.name] = app
            return service

        return register

    # -- client mobility ---------------------------------------------------

    def move_client(self, client: Host, target: Site) -> None:
        """Hand a client over to another site's gNB (same IP).

        The origin site clears the client's redirect flows and
        memorized resolutions, every topology repoints at the new
        location, and the backbone route follows — the next request is
        re-resolved by the *target* site's controller.
        """
        origin = self.site_of(client)
        if origin is target:
            return
        old_endpoint = client.iface.endpoint
        if old_endpoint is not None:
            old_endpoint.link.down = True
            client.iface.endpoint = None
        origin.clients.remove(client)
        port_no, iface = target.switch.add_port(self._macs.allocate())
        Link(
            self.env,
            client.iface,
            iface,
            self.config.client_link_bandwidth_bps,
            self.config.client_link_latency_s,
        )
        target.clients.append(client)
        # Repoint every view of the client's location.
        target.topology.register_host(
            target.switch.datapath_id, client.ip, port_no
        )
        self.backbone_topology.register_host(1, client.ip, target.backbone_port)
        for site in self.sites:
            if site is not target:
                site.topology.register_host(
                    site.switch.datapath_id, client.ip, site.trunk_port
                )
        # Origin tears down stale flows + memory; target installs
        # routes and learns the new attachment, so subsequent proactive
        # re-dispatches (migration healing) can install eagerly there.
        origin.controller.update_client_location(client.ip)
        target.controller.update_client_location(
            client.ip, target.switch.datapath_id, port_no
        )
        self.backbone.install_host_route(client.ip)
        self.settle(0.05)

    # -- live migration ----------------------------------------------------

    def migrate(
        self,
        service: EdgeService,
        from_site: "Site",
        to_site: "Site",
        mode: str | None = None,
    ) -> "MigrationOutcome":
        """Drive one migration to completion from outside the
        simulation and return its outcome."""
        assert to_site.manager is not None
        done = to_site.manager.request_migration(
            service.name, from_site.name, mode=mode
        )
        outcome: MigrationOutcome = self.env.run(until=done)
        return outcome

    # -- driving requests --------------------------------------------------

    def http_request(
        self,
        client: Host,
        service: EdgeService,
        request=None,
        timeout: float | None = 120.0,
    ):
        """One measured request (generator returning HTTPResult)."""
        template_request = request
        if template_request is None:
            from repro.net.packet import HTTPRequest

            template_request = HTTPRequest("GET", "/", body_bytes=0)
        result = yield from client.http_request(
            service.cloud_ip, service.port, template_request, timeout=timeout
        )
        return result

    def run_request(self, client: Host, service: EdgeService, request=None, timeout=120.0):
        """Drive one request to completion from outside the simulation."""
        proc = self.env.process(
            self.http_request(client, service, request, timeout)
        )
        return self.env.run(until=proc)

    # -- deployment-state helpers ------------------------------------------

    def prepare_pulled(self, cluster: EdgeCluster, service: EdgeService) -> None:
        proc = self.env.process(cluster.pull(service.plan))
        self.env.run(until=proc)

    def prepare_created(self, cluster: EdgeCluster, service: EdgeService) -> None:
        self.prepare_pulled(cluster, service)
        proc = self.env.process(cluster.create(service.plan))
        self.env.run(until=proc)
