"""The simulated C³ evaluation testbed (fig. 8).

Topology: the SDN controller, the virtual OVS switch, Docker, and the
Kubernetes cluster all run on the *Edge Gateway Server* (EGS); clients
run on Raspberry Pis attached through 1 Gbps links; the cloud sits
behind a WAN uplink.  Docker and Kubernetes share one containerd (and
hence one image store), exactly as on the real EGS.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster import DockerCluster, EdgeCluster, K8sEdgeCluster
from repro.containers import Containerd, DockerEngine, Registry
from repro.containers.registry import PRIVATE_PROFILE, PUBLIC_PROFILE
from repro.core import (
    Annotator,
    ControllerConfig,
    EdgeController,
    GlobalScheduler,
    NearestScheduler,
    ServiceRegistry,
    SwitchTopology,
)
from repro.core.service_registry import EdgeService
from repro.core.state import InMemoryState
from repro.k8s import KubernetesCluster
from repro.k8s.profile import K8sProfile
from repro.metrics import MetricsRecorder
from repro.net import Host, Link
from repro.net.addressing import IPAllocator, IPv4Address, MACAllocator
from repro.net.cloud import CloudHost
from repro.net.link import GBPS
from repro.net.openflow import OpenFlowSwitch
from repro.ops import OPS_PORT, FlowStatsCollector, OpsApp, OpsReadModel
from repro.services import DEFAULT_CALIBRATION, Calibration, ServiceTemplate, build_catalog
from repro.services.catalog import template_by_key
from repro.sim import Environment


@dataclasses.dataclass(frozen=True)
class TestbedConfig:
    """Knobs of the simulated testbed."""

    __test__ = False  # not a pytest class, despite the name

    n_clients: int = 20
    #: Which edge clusters to build on the EGS.
    cluster_types: tuple[str, ...] = ("docker", "k8s")
    #: Pull images from the "public" (Docker Hub/GCR) or the LAN
    #: "private" registry (fig. 13's comparison).
    registry: str = "public"
    client_link_latency_s: float = 200e-6
    client_link_bandwidth_bps: float = 1 * GBPS
    egs_link_latency_s: float = 50e-6
    egs_link_bandwidth_bps: float = 10 * GBPS
    cloud_link_latency_s: float = 0.015
    cloud_link_bandwidth_bps: float = 1 * GBPS
    control_channel_latency_s: float = 150e-6
    auto_scale_down: bool = False
    #: Name of a custom Kubernetes scheduler to use as the Local
    #: Scheduler (§IV-B/§V): the annotator sets it as ``schedulerName``
    #: on every edge Deployment, and the cluster runs it alongside the
    #: default scheduler.
    k8s_local_scheduler: str | None = None
    #: Serve the operational REST API (:mod:`repro.ops`) on the EGS
    #: host at :data:`repro.ops.OPS_PORT`.  Opening the port installs
    #: no events, so leaving it on does not perturb replays.
    ops_api: bool = True
    #: Poll switch flow/port counters every this many seconds with a
    #: :class:`~repro.ops.FlowStatsCollector` (``None``: no collector).
    flow_stats_period_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        unknown = set(self.cluster_types) - {"docker", "k8s"}
        if unknown:
            raise ValueError(f"unknown cluster types: {sorted(unknown)}")
        if self.registry not in ("public", "private"):
            raise ValueError(f"unknown registry {self.registry!r}")
        if self.flow_stats_period_s is not None and self.flow_stats_period_s <= 0:
            raise ValueError("flow_stats_period_s must be positive")


class C3Testbed:
    """A fully wired simulation of the evaluation setup."""

    def __init__(
        self,
        config: TestbedConfig | None = None,
        scheduler: GlobalScheduler | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        k8s_profile: K8sProfile | None = None,
    ) -> None:
        self.config = config or TestbedConfig()
        self.calibration = calibration
        self.env = Environment()
        self.recorder = MetricsRecorder()
        self._ips = IPAllocator("10.0.0.0")
        self._macs = MACAllocator()
        self._service_ips = IPAllocator("203.0.113.0")

        # -- hosts ---------------------------------------------------------
        self.egs = Host(
            self.env, "egs", self._macs.allocate(), self._ips.allocate()
        )
        self.clients: list[Host] = [
            Host(
                self.env,
                f"rpi{i:02d}",
                self._macs.allocate(),
                self._ips.allocate(),
            )
            for i in range(self.config.n_clients)
        ]
        self.cloud = CloudHost(
            self.env,
            "cloud",
            self._macs.allocate(),
            IPv4Address.parse("198.51.100.1"),
        )

        # -- switch + links --------------------------------------------------
        self.switch = OpenFlowSwitch(self.env, "ovs", datapath_id=1)
        #: All switches by datapath id (gNBs added via :meth:`add_gnb`).
        self.switches: dict[int, OpenFlowSwitch] = {1: self.switch}
        #: (from dpid, to dpid) -> port on the *from* switch (star
        #: topology: every gNB trunks to the main switch).
        self._trunk_ports: dict[tuple[int, int], int] = {}
        self.topology = SwitchTopology()
        self._attach_host(
            self.egs,
            self.config.egs_link_bandwidth_bps,
            self.config.egs_link_latency_s,
        )
        for client in self.clients:
            self._attach_host(
                client,
                self.config.client_link_bandwidth_bps,
                self.config.client_link_latency_s,
            )
        cloud_port = self._attach_host(
            self.cloud,
            self.config.cloud_link_bandwidth_bps,
            self.config.cloud_link_latency_s,
            register=False,
        )
        self.topology.set_cloud_port(self.switch.datapath_id, cloud_port)

        # -- registries + catalog ------------------------------------------------
        self.public_registry = Registry(self.env, "docker-hub", PUBLIC_PROFILE)
        self.private_registry = Registry(self.env, "private-lan", PRIVATE_PROFILE)
        self.images, self.behaviors = build_catalog(calibration)
        for image in self.images.values():
            self.public_registry.publish(image)
            self.private_registry.publish(image)
        self.active_registry = (
            self.private_registry
            if self.config.registry == "private"
            else self.public_registry
        )

        # -- shared container runtime on the EGS -------------------------------------
        self.containerd = Containerd(self.env, self.egs)

        self.clusters: list[EdgeCluster] = []
        self.docker_cluster: DockerCluster | None = None
        self.k8s_cluster: K8sEdgeCluster | None = None
        self.kubernetes: KubernetesCluster | None = None

        if "docker" in self.config.cluster_types:
            self.docker_engine = DockerEngine(self.env, self.containerd)
            self.docker_cluster = DockerCluster(
                self.env,
                "docker",
                self.egs,
                self.docker_engine,
                self.active_registry,
                distance=0,
            )
            self.clusters.append(self.docker_cluster)

        if "k8s" in self.config.cluster_types:
            self.kubernetes = KubernetesCluster(
                self.env, "k8s", self.active_registry, profile=k8s_profile
            )
            self.kubernetes.add_node("egs", self.egs, self.containerd)
            if self.config.k8s_local_scheduler:
                self.kubernetes.add_scheduler(self.config.k8s_local_scheduler)
            self.k8s_cluster = K8sEdgeCluster(
                self.env,
                "k8s",
                self.kubernetes,
                "egs",
                distance=0,
                local_scheduler=self.config.k8s_local_scheduler,
            )
            self.clusters.append(self.k8s_cluster)

        # -- controller --------------------------------------------------------------------
        self.annotator = Annotator(
            self.images,
            self.behaviors,
            scheduler_name=self.config.k8s_local_scheduler,
        )
        self.state = InMemoryState()
        self.service_registry = ServiceRegistry(self.annotator, state=self.state)
        self.scheduler = scheduler or NearestScheduler()
        controller_config = dataclasses.replace(
            ControllerConfig.from_calibration(calibration),
            auto_scale_down=self.config.auto_scale_down,
        )
        self.controller = EdgeController(
            self.env,
            self.service_registry,
            self.clusters,
            self.scheduler,
            self.topology,
            config=controller_config,
            calibration=calibration,
            recorder=self.recorder,
            state=self.state,
        )
        self.datapath = self.controller.attach(
            self.switch, latency_s=self.config.control_channel_latency_s
        )

        def _conntrack(client_ip, dst_ip, dst_port):
            # The gNB's connection-tracking view (drain installation):
            # stood in for by the client host's own socket table.
            for client in self.clients:
                if client.ip == client_ip:
                    return client.tracked_ports(dst_ip, dst_port)
            return ()

        self.controller.conntrack = _conntrack

        # -- operational surface (repro.ops) ---------------------------------
        self.collector: FlowStatsCollector | None = None
        if self.config.flow_stats_period_s is not None:
            egs_endpoint = self.egs.iface.endpoint
            assert egs_endpoint is not None  # attached above
            self.collector = FlowStatsCollector(
                self.env,
                "egs",
                self.switch,
                {"uplink:egs": egs_endpoint.link},
                state=self.state,
                period_s=self.config.flow_stats_period_s,
                recorder=self.recorder,
            ).start()
        self.ops = OpsReadModel(
            self.env,
            self.controller,
            site="egs",
            switches=self.switches.values(),
            collector=self.collector,
        )
        self.ops_app: OpsApp | None = None
        if self.config.ops_api:
            self.ops_app = OpsApp(self.ops, register=self._register_template_key)
            self.egs.open_port(OPS_PORT, self.ops_app)

        self._cloud_apps: dict[str, _t.Any] = {}
        # Let the controller finish installing the infrastructure rules
        # (default route, per-host forwarding) before any traffic flows;
        # each flow-mod pays a control-channel hop.
        self.settle(0.05)

    def settle(self, duration_s: float = 0.01) -> None:
        """Advance simulated time so in-flight control-plane messages
        (flow-mods, watch events) land before the next measurement."""
        self.env.run(until=self.env.now + duration_s)

    # -- wiring helpers ---------------------------------------------------------

    def _attach_host(
        self,
        host: Host,
        bandwidth_bps: float,
        latency_s: float,
        register: bool = True,
    ) -> int:
        port_no, iface = self.switch.add_port(self._macs.allocate())
        Link(self.env, host.iface, iface, bandwidth_bps, latency_s)
        if register:
            self.topology.register_host(self.switch.datapath_id, host.ip, port_no)
        return port_no

    def add_far_edge(
        self,
        name: str = "far-docker",
        distance: int = 1,
        latency_s: float = 0.004,
        bandwidth_bps: float = 1 * GBPS,
    ) -> DockerCluster:
        """Attach an additional, farther Docker edge cluster.

        Used by no-waiting experiments: "a 'non-optimal' (further away,
        but on the route to the cloud) edge cluster is much more likely
        to have the requested service cached or even running already."
        """
        host = Host(
            self.env, name, self._macs.allocate(), self._ips.allocate()
        )
        self._attach_host(host, bandwidth_bps, latency_s)
        runtime = Containerd(self.env, host)
        engine = DockerEngine(self.env, runtime)
        cluster = DockerCluster(
            self.env, name, host, engine, self.active_registry, distance=distance
        )
        self.clusters.append(cluster)
        self.controller.add_cluster(cluster)
        return cluster

    # -- multiple gNB switches + client mobility --------------------------------

    def _port_toward(self, from_dpid: int, to_dpid: int) -> int:
        """Egress port on ``from_dpid`` toward ``to_dpid`` (via the hub)."""
        if from_dpid == to_dpid:
            raise ValueError("no port toward self")
        if from_dpid == 1:
            return self._trunk_ports[(1, to_dpid)]
        return self._trunk_ports[(from_dpid, 1)]

    def add_gnb(
        self,
        name: str = "gnb2",
        trunk_latency_s: float = 0.0005,
        trunk_bandwidth_bps: float = 10 * GBPS,
    ) -> OpenFlowSwitch:
        """Attach an additional gNB switch, trunked to the main switch.

        Models a second radio site: clients attached here reach the EGS
        and the cloud through the trunk, and the controller programs
        this switch like any other datapath.
        """
        dpid = max(self.switches) + 1
        gnb = OpenFlowSwitch(self.env, name, datapath_id=dpid)
        main_port, main_iface = self.switch.add_port(self._macs.allocate())
        gnb_port, gnb_iface = gnb.add_port(self._macs.allocate())
        Link(self.env, main_iface, gnb_iface, trunk_bandwidth_bps, trunk_latency_s)
        self._trunk_ports[(1, dpid)] = main_port
        self._trunk_ports[(dpid, 1)] = gnb_port
        # Everything currently known on the main switch is reachable
        # from the new gNB via its trunk.
        for ip in self.topology.hosts(1):
            self.topology.register_host(dpid, ip, gnb_port)
        self.topology.set_cloud_port(dpid, gnb_port)
        self.switches[dpid] = gnb
        self.controller.attach(
            gnb, latency_s=self.config.control_channel_latency_s
        )
        self.settle(0.1)
        return gnb

    def new_client(self, gnb: OpenFlowSwitch | None = None) -> Host:
        """Create an extra client attached to ``gnb`` (default: main)."""
        switch = gnb or self.switch
        client = Host(
            self.env,
            f"rpi{len(self.clients):02d}",
            self._macs.allocate(),
            self._ips.allocate(),
        )
        self.clients.append(client)
        self._wire_client(client, switch)
        self.controller.install_host_routes(client.ip)
        self.settle(0.01)
        return client

    def _wire_client(self, client: Host, switch: OpenFlowSwitch) -> int:
        port_no, iface = switch.add_port(self._macs.allocate())
        Link(
            self.env,
            client.iface,
            iface,
            self.config.client_link_bandwidth_bps,
            self.config.client_link_latency_s,
        )
        self.topology.register_host(switch.datapath_id, client.ip, port_no)
        for dpid in self.switches:
            if dpid != switch.datapath_id:
                self.topology.register_host(
                    dpid, client.ip, self._port_toward(dpid, switch.datapath_id)
                )
        return port_no

    def move_client(self, client: Host, gnb: OpenFlowSwitch) -> None:
        """Hand a client over to another gNB (same IP, new attachment).

        The old radio link goes down, a new one comes up, and the
        controller refreshes the client's routes, clears its stale
        redirect flows, and invalidates its memorized flows — the next
        request from the new location is re-resolved by the scheduler
        instead of replaying a resolution made for the old switch.
        Degraded flows are proactively re-dispatched from the new
        attachment instead of waiting for the client's next packet.
        """
        old_endpoint = client.iface.endpoint
        if old_endpoint is not None:
            old_endpoint.link.down = True
            client.iface.endpoint = None
        port_no = self._wire_client(client, gnb)
        self.controller.update_client_location(
            client.ip, gnb.datapath_id, port_no
        )
        self.settle(0.05)

    def add_serverless(
        self, name: str = "wasm", distance: int = 0
    ) -> "ServerlessCluster":
        """Add a WebAssembly function runtime on the EGS (§VIII future
        work: containers and serverless side by side)."""
        from repro.serverless import ServerlessCluster, WasmRuntime
        from repro.serverless.catalog import default_module_map

        runtime = WasmRuntime(self.env, self.egs)
        cluster = ServerlessCluster(
            self.env,
            name,
            self.egs,
            runtime,
            default_module_map(),
            distance=distance,
        )
        self.clusters.append(cluster)
        self.controller.add_cluster(cluster)
        return cluster

    # -- service management -------------------------------------------------------------

    def register_template(
        self,
        template: ServiceTemplate,
        cloud_ip: IPv4Address | None = None,
        port: int = 80,
    ) -> EdgeService:
        """Register one catalog service; also serve it from the cloud
        (the *perceived cloud* of fig. 1 really answers)."""
        service = self._register_catalog(template, cloud_ip, port)
        # The interception rule must be live before the first request
        # arrives (registration happens well before use in practice).
        self.settle(0.005)
        return service

    def _register_catalog(
        self,
        template: ServiceTemplate,
        cloud_ip: IPv4Address | None = None,
        port: int = 80,
    ) -> EdgeService:
        ip = cloud_ip if cloud_ip is not None else self._service_ips.allocate()
        service = self.controller.register_service(
            template.definition_yaml, ip, port, template_key=template.key
        )
        behavior = self.behaviors.get(template.images[0].reference)
        factory = behavior.app_factory()
        if factory is not None:
            app = factory(self.env)
            self.cloud.open_service(ip, port, app)
            self._cloud_apps[service.name] = app
        return service

    def _register_template_key(self, key: str) -> EdgeService:
        """``POST /services`` hook: register a catalog template.

        Runs *inside* the simulation (from the ops API handler), so it
        must not :meth:`settle` — the interception flow-mod simply
        lands one control-channel hop after the response."""
        return self._register_catalog(template_by_key(key))

    def register_yaml_file(
        self,
        path: str,
        cloud_ip: IPv4Address | None = None,
        port: int = 80,
        template_key: str | None = None,
    ) -> EdgeService:
        """Register a service from a YAML definition file on disk —
        the developer workflow of §V ("Each edge service needs to be
        defined in a separate YAML file").  No cloud-side app is opened
        (use :meth:`register_template` for catalog services)."""
        with open(path, encoding="utf-8") as handle:
            definition = handle.read()
        ip = cloud_ip if cloud_ip is not None else self._service_ips.allocate()
        service = self.controller.register_service(
            definition, ip, port, template_key=template_key
        )
        self.settle(0.005)
        return service

    # -- driving requests ------------------------------------------------------------------

    def http_request(
        self,
        client: Host,
        service: EdgeService,
        request=None,
        timeout: float | None = 120.0,
    ):
        """One measured request (generator returning HTTPResult)."""
        template_request = request
        if template_request is None:
            from repro.net.packet import HTTPRequest

            template_request = HTTPRequest("GET", "/", body_bytes=0)
        result = yield from client.http_request(
            service.cloud_ip, service.port, template_request, timeout=timeout
        )
        return result

    def run_request(self, client: Host, service: EdgeService, request=None, timeout=120.0):
        """Drive one request to completion from outside the simulation."""
        proc = self.env.process(
            self.http_request(client, service, request, timeout)
        )
        return self.env.run(until=proc)

    # -- deployment-state helpers for experiments ----------------------------------------------

    def prepare_pulled(self, cluster: EdgeCluster, service: EdgeService) -> None:
        """Synchronously pre-pull a service's images onto a cluster."""
        proc = self.env.process(cluster.pull(service.plan))
        self.env.run(until=proc)

    def prepare_created(self, cluster: EdgeCluster, service: EdgeService) -> None:
        """Pre-pull and pre-create (so only Scale Up remains)."""
        self.prepare_pulled(cluster, service)
        proc = self.env.process(cluster.create(service.plan))
        self.env.run(until=proc)
