"""Testbed assembly: the Carinthian Computing Continuum (C³) model."""

from repro.testbed.c3 import C3Testbed, TestbedConfig

__all__ = ["C3Testbed", "TestbedConfig"]
