"""Testbed assembly: the Carinthian Computing Continuum (C³) model."""

from repro.testbed.c3 import C3Testbed, TestbedConfig
from repro.testbed.federation import (
    FederatedTestbed,
    FederationConfig,
    Site,
)

__all__ = [
    "C3Testbed",
    "FederatedTestbed",
    "FederationConfig",
    "Site",
    "TestbedConfig",
]
