"""A kubernetes-python-client-like API used by the SDN controller.

The paper: "For communicating with Docker and the Kubernetes cluster,
we use the respective Python client libraries."  This mirrors the
handful of operations the controller needs: create/patch/delete
Deployments and Services, scale, and list pods by label selector.
"""

from __future__ import annotations

import typing as _t

from repro.k8s.apiserver import APIServer, NotFound
from repro.k8s.objects import Deployment, Pod, Service


class KubernetesClient:
    """Typed convenience wrapper over the API server.

    All methods are generators (they pay API latency); callers drive
    them with ``yield from``.
    """

    def __init__(self, api: APIServer, namespace: str = "default") -> None:
        self.api = api
        self.namespace = namespace

    # -- deployments -------------------------------------------------------

    def create_deployment(self, deployment: Deployment):
        deployment.metadata.namespace = self.namespace
        result = yield from self.api.create(deployment)
        return result

    def read_deployment(self, name: str):
        result = yield from self.api.get("Deployment", name, self.namespace)
        return result

    def deployment_exists(self, name: str):
        result = yield from self.api.try_get("Deployment", name, self.namespace)
        return result is not None

    def scale_deployment(self, name: str, replicas: int):
        """Equivalent of ``patch_namespaced_deployment_scale``."""
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        deployment = yield from self.api.get("Deployment", name, self.namespace)
        if deployment.spec.replicas != replicas:
            deployment.spec.replicas = replicas
            yield from self.api.update(deployment)
        return deployment

    def delete_deployment(self, name: str):
        try:
            result = yield from self.api.delete("Deployment", name, self.namespace)
        except NotFound:
            return None
        return result

    # -- services -------------------------------------------------------------

    def create_service(self, service: Service):
        service.metadata.namespace = self.namespace
        result = yield from self.api.create(service)
        return result

    def read_service(self, name: str):
        result = yield from self.api.get("Service", name, self.namespace)
        return result

    def delete_service(self, name: str):
        try:
            result = yield from self.api.delete("Service", name, self.namespace)
        except NotFound:
            return None
        return result

    # -- pods --------------------------------------------------------------------

    def list_pods(self, selector: _t.Mapping[str, str] | None = None):
        result = yield from self.api.list("Pod", self.namespace, selector)
        return result

    def ready_pods(self, selector: _t.Mapping[str, str] | None = None):
        pods: list[Pod] = yield from self.list_pods(selector)
        return [p for p in pods if p.status.ready]
