"""Deployment and ReplicaSet controllers (the controller manager).

Both follow the informer + work-queue pattern: watch events enqueue
object keys; a single worker dequeues, pays the sync delay, and
reconciles desired versus observed state through the API server.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.k8s.apiserver import APIServer, Conflict, WatchEvent
from repro.k8s.objects import (
    Deployment,
    ObjectMeta,
    Pod,
    PodSpec,
    ReplicaSet,
    ReplicaSetSpec,
)
from repro.sim import Environment, Store

_pod_suffix = itertools.count(1)


class DeploymentController:
    """Ensures each Deployment owns one ReplicaSet with the desired
    replica count (no rollout history — the paper never updates images
    in place)."""

    def __init__(self, env: Environment, api: APIServer) -> None:
        self.env = env
        self.api = api
        self._queue: Store = Store(env)
        env.process(self._watch_deployments(), name="depctl-watch-dep")
        env.process(self._watch_replicasets(), name="depctl-watch-rs")
        env.process(self._worker(), name="depctl-worker")

    def _watch_deployments(self):
        watch = self.api.watch("Deployment")
        while True:
            event: WatchEvent = yield watch.get()
            if event.type == "DELETED":
                self._queue.put(("delete", event.obj))
            else:
                self._queue.put(("sync", event.obj.metadata.key))

    def _watch_replicasets(self):
        watch = self.api.watch("ReplicaSet")
        while True:
            event: WatchEvent = yield watch.get()
            owner = event.obj.metadata.owner_uid
            if owner is None or event.type == "DELETED":
                continue
            # Find the owning deployment lazily at reconcile time.
            for dep in self.api.list_nowait("Deployment", namespace=None):
                if dep.metadata.uid == owner:
                    self._queue.put(("sync", dep.metadata.key))
                    break

    def _worker(self):
        while True:
            action, payload = yield self._queue.get()
            yield self.env.timeout(self.api.profile.deployment_sync_s)
            if action == "delete":
                yield from self._cascade_delete(payload)
            else:
                yield from self._reconcile(payload)

    def _reconcile(self, key: tuple[str, str]):
        namespace, name = key
        deployment = yield from self.api.try_get("Deployment", name, namespace)
        if deployment is None:
            return
        rs_name = f"{name}-rs"
        rs = yield from self.api.try_get("ReplicaSet", rs_name, namespace)
        if rs is None:
            rs = ReplicaSet(
                metadata=ObjectMeta(
                    name=rs_name,
                    namespace=namespace,
                    labels=dict(deployment.spec.selector),
                    owner_uid=deployment.metadata.uid,
                ),
                spec=ReplicaSetSpec(
                    replicas=deployment.spec.replicas,
                    selector=dict(deployment.spec.selector),
                    template=deployment.spec.template,
                ),
            )
            try:
                yield from self.api.create(rs)
            except Conflict:  # lost a race with ourselves; resync
                return
        elif rs.spec.replicas != deployment.spec.replicas:
            rs.spec.replicas = deployment.spec.replicas
            yield from self.api.update(rs)

    def _cascade_delete(self, deployment: Deployment):
        namespace = deployment.metadata.namespace
        for rs in self.api.list_nowait("ReplicaSet", namespace):
            if rs.metadata.owner_uid == deployment.metadata.uid:
                try:
                    yield from self.api.delete("ReplicaSet", rs.metadata.name, namespace)
                except KeyError:
                    pass


class ReplicaSetController:
    """Creates and deletes Pods to match each ReplicaSet's replica count."""

    def __init__(self, env: Environment, api: APIServer) -> None:
        self.env = env
        self.api = api
        self._queue: Store = Store(env)
        env.process(self._watch_replicasets(), name="rsctl-watch-rs")
        env.process(self._watch_pods(), name="rsctl-watch-pod")
        env.process(self._worker(), name="rsctl-worker")

    def _watch_replicasets(self):
        watch = self.api.watch("ReplicaSet")
        while True:
            event: WatchEvent = yield watch.get()
            if event.type == "DELETED":
                self._queue.put(("delete", event.obj))
            else:
                self._queue.put(("sync", event.obj.metadata.key))

    def _watch_pods(self):
        watch = self.api.watch("Pod")
        while True:
            event: WatchEvent = yield watch.get()
            owner = event.obj.metadata.owner_uid
            if owner is None:
                continue
            for rs in self.api.list_nowait("ReplicaSet", namespace=None):
                if rs.metadata.uid == owner:
                    self._queue.put(("sync", rs.metadata.key))
                    break

    def _worker(self):
        while True:
            action, payload = yield self._queue.get()
            yield self.env.timeout(self.api.profile.replicaset_sync_s)
            if action == "delete":
                yield from self._cascade_delete(payload)
            else:
                yield from self._reconcile(payload)

    def _pods_of(self, rs: ReplicaSet) -> list[Pod]:
        pods = self.api.list_nowait("Pod", rs.metadata.namespace)
        return [
            p
            for p in pods
            if p.metadata.owner_uid == rs.metadata.uid
            and p.status.phase not in ("Succeeded", "Failed")
        ]

    def _reconcile(self, key: tuple[str, str]):
        namespace, name = key
        rs = yield from self.api.try_get("ReplicaSet", name, namespace)
        if rs is None:
            return
        pods = self._pods_of(rs)
        desired = rs.spec.replicas
        if len(pods) < desired:
            for _ in range(desired - len(pods)):
                pod = Pod(
                    metadata=ObjectMeta(
                        name=f"{name}-{next(_pod_suffix):05d}",
                        namespace=namespace,
                        labels=dict(rs.spec.template.labels),
                        owner_uid=rs.metadata.uid,
                    ),
                    spec=PodSpec(
                        containers=list(rs.spec.template.spec.containers),
                        scheduler_name=rs.spec.template.spec.scheduler_name,
                    ),
                )
                yield from self.api.create(pod)
        elif len(pods) > desired:
            # Prefer evicting pods that are not yet ready, then youngest.
            victims = sorted(
                pods,
                key=lambda p: (
                    p.status.ready,
                    -(p.metadata.creation_time or 0.0),
                ),
            )[: len(pods) - desired]
            for pod in victims:
                try:
                    yield from self.api.delete("Pod", pod.metadata.name, namespace)
                except KeyError:
                    pass

    def _cascade_delete(self, rs: ReplicaSet):
        for pod in self._pods_of(rs):
            try:
                yield from self.api.delete(
                    "Pod", pod.metadata.name, rs.metadata.namespace
                )
            except KeyError:
                pass
