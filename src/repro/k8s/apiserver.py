"""The Kubernetes API server: object store plus watch streams.

Every CRUD call is a generator that pays ``api_latency_s``; every
watcher receives ADDED/MODIFIED/DELETED events after
``watch_latency_s``, preserving per-watch ordering — the informer
behaviour the control loops are built on.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.k8s.objects import KINDS, ObjectMeta, matches_selector
from repro.k8s.profile import K8sProfile
from repro.sim import Environment, Store


class NotFound(KeyError):
    """No such object."""


class Conflict(RuntimeError):
    """Create of an already-existing object."""


@dataclasses.dataclass
class WatchEvent:
    type: str  # ADDED | MODIFIED | DELETED
    obj: _t.Any


class Watch:
    """One subscriber's event stream for a kind."""

    def __init__(self, env: Environment, kind: str) -> None:
        self.env = env
        self.kind = kind
        self.events: Store = Store(env)
        self.active = True

    def get(self):
        """Event for the next watch notification (yield it)."""
        return self.events.get()

    def cancel(self) -> None:
        """Stop the stream.  Events already in flight (notified but not
        yet delivered) are dropped at their delivery time."""
        self.active = False


class APIServer:
    """Stores all cluster objects and fans out watch events."""

    def __init__(self, env: Environment, profile: K8sProfile | None = None) -> None:
        self.env = env
        self.profile = profile or K8sProfile()
        self._objects: dict[str, dict[tuple[str, str], _t.Any]] = {
            kind: {} for kind in KINDS
        }
        self._watches: dict[str, list[Watch]] = {kind: [] for kind in KINDS}
        self._resource_version = 0
        #: API request counter, for tests.
        self.stats = {"requests": 0, "events": 0}
        #: Failure injection: requests issued before this instant block
        #: until it passes (a stalled apiserver is slow, not dead).
        self._stalled_until = 0.0

    # -- helpers ----------------------------------------------------------

    def stall_for(self, duration_s: float) -> None:
        """Stall the apiserver: every request issued during the window
        waits for the residual stall before its normal latency."""
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        self._stalled_until = max(
            self._stalled_until, self.env.now + duration_s
        )

    def _latency(self):
        self.stats["requests"] += 1
        stalled_until = self._stalled_until
        if stalled_until > self.env.now:
            yield self.env.timeout(stalled_until - self.env.now)
        yield self.env.timeout(self.profile.api_latency_s)

    def _bump(self, meta: ObjectMeta) -> None:
        self._resource_version += 1
        meta.resource_version = self._resource_version

    def _notify(self, kind: str, event_type: str, obj: _t.Any) -> None:
        watches = self._watches[kind]
        if not watches:
            return
        event = WatchEvent(event_type, obj)
        pruned = False
        for watch in watches:
            if watch.active:
                self.stats["events"] += 1
                self._deliver(watch, event)
            else:
                pruned = True
        if pruned:
            # Cancelled watches would otherwise accumulate forever and
            # slow every later fan-out.
            self._watches[kind] = [w for w in watches if w.active]

    def _deliver(self, watch: Watch, event: WatchEvent) -> None:
        """Enqueue ``event`` on ``watch`` after the watch latency.

        A slim scheduled callback, not a process: events already in
        flight when the watch is cancelled are simply dropped at
        delivery time — no dead process is ever spawned for them.
        """
        self.env.call_later(
            self.profile.watch_latency_s, self._fan_out, watch, event
        )

    @staticmethod
    def _fan_out(watch: Watch, event: WatchEvent) -> None:
        if watch.active:
            watch.events.put(event)

    @staticmethod
    def _kind_of(obj: _t.Any) -> str:
        kind = getattr(obj, "kind", None)
        if kind not in KINDS:
            raise TypeError(f"not an API object: {obj!r}")
        return kind

    # -- CRUD (generators) ---------------------------------------------------

    def create(self, obj: _t.Any):
        """Create an object (generator returning it)."""
        kind = self._kind_of(obj)
        yield from self._latency()
        key = obj.metadata.key
        if key in self._objects[kind]:
            raise Conflict(f"{kind} {key} already exists")
        obj.metadata.creation_time = self.env.now
        self._bump(obj.metadata)
        self._objects[kind][key] = obj
        self._notify(kind, "ADDED", obj)
        return obj

    def get(self, kind: str, name: str, namespace: str = "default"):
        """Fetch one object (generator)."""
        yield from self._latency()
        obj = self._objects[kind].get((namespace, name))
        if obj is None:
            raise NotFound(f"{kind} {namespace}/{name}")
        return obj

    def try_get(self, kind: str, name: str, namespace: str = "default"):
        """Like :meth:`get` but returns ``None`` instead of raising."""
        yield from self._latency()
        return self._objects[kind].get((namespace, name))

    def list(
        self,
        kind: str,
        namespace: str | None = "default",
        selector: _t.Mapping[str, str] | None = None,
    ):
        """List objects, optionally filtered by label selector (generator)."""
        yield from self._latency()
        return self.list_nowait(kind, namespace, selector)

    def list_nowait(
        self,
        kind: str,
        namespace: str | None = "default",
        selector: _t.Mapping[str, str] | None = None,
    ) -> list[_t.Any]:
        """Synchronous (informer-cache style) list, no API latency."""
        result = []
        for (ns, _), obj in self._objects[kind].items():
            if namespace is not None and ns != namespace:
                continue
            if selector and not matches_selector(obj.metadata.labels, selector):
                continue
            result.append(obj)
        result.sort(key=lambda o: o.metadata.uid)
        return result

    def update(self, obj: _t.Any):
        """Persist a mutation and notify watchers (generator)."""
        kind = self._kind_of(obj)
        yield from self._latency()
        key = obj.metadata.key
        if key not in self._objects[kind]:
            raise NotFound(f"{kind} {key}")
        self._bump(obj.metadata)
        self._objects[kind][key] = obj
        self._notify(kind, "MODIFIED", obj)
        return obj

    def delete(self, kind: str, name: str, namespace: str = "default"):
        """Delete an object (generator returning it)."""
        yield from self._latency()
        obj = self._objects[kind].pop((namespace, name), None)
        if obj is None:
            raise NotFound(f"{kind} {namespace}/{name}")
        self._notify(kind, "DELETED", obj)
        return obj

    # -- watches -------------------------------------------------------------------

    def watch(self, kind: str, replay_existing: bool = True) -> Watch:
        """Subscribe to a kind's events.

        With ``replay_existing`` the watch starts with synthetic ADDED
        events for current objects (informer list+watch semantics).
        """
        if kind not in KINDS:
            raise ValueError(f"unknown kind {kind!r}")
        watch = Watch(self.env, kind)
        self._watches[kind].append(watch)
        if replay_existing:
            for obj in self.list_nowait(kind, namespace=None):
                self._notify_one(watch, WatchEvent("ADDED", obj))
        return watch

    def _notify_one(self, watch: Watch, event: WatchEvent) -> None:
        self.stats["events"] += 1
        self._deliver(watch, event)
