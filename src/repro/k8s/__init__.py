"""A Kubernetes substrate: API server, controllers, scheduler, kubelet.

The paper deploys edge services to a real (single-node) Kubernetes
cluster and observes ≈3 s scale-up latency versus Docker's <1 s
(fig. 11).  This package reproduces that gap *structurally*: the
latency emerges from the modelled control loops —

``kubectl scale`` → API server → deployment controller → replica-set
controller → scheduler → kubelet (sandbox + CNI + containers) → status
update → endpoints → kube-proxy programs the node port —

each hop paying watch latency, work-queue delay, and API round trips
(see :class:`~repro.k8s.profile.K8sProfile` for the calibrated
constants).  Both Kubernetes and Docker drive the *same*
:class:`~repro.containers.Containerd` runtime, as on the paper's EGS.
"""

from repro.k8s.objects import (
    ContainerDef,
    Deployment,
    DeploymentSpec,
    ObjectMeta,
    Pod,
    PodSpec,
    PodTemplateSpec,
    ReplicaSet,
    Service,
    ServicePort,
    ServiceSpec,
    matches_selector,
)
from repro.k8s.apiserver import APIServer, Conflict, NotFound, WatchEvent
from repro.k8s.profile import K8sProfile
from repro.k8s.cluster import KubernetesCluster
from repro.k8s.client import KubernetesClient

__all__ = [
    "APIServer",
    "Conflict",
    "ContainerDef",
    "Deployment",
    "DeploymentSpec",
    "K8sProfile",
    "KubernetesClient",
    "KubernetesCluster",
    "NotFound",
    "ObjectMeta",
    "Pod",
    "PodSpec",
    "PodTemplateSpec",
    "ReplicaSet",
    "Service",
    "ServicePort",
    "ServiceSpec",
    "WatchEvent",
    "matches_selector",
]
