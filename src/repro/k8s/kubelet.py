"""The kubelet: runs pods bound to its node via containerd.

Pod startup (the fig. 11 K8s Scale-Up critical path through the node):

1. pod-worker wakeup after the binding watch event,
2. sandbox creation — pause container, cgroups, CNI network setup,
3. per container: image presence check (pulling from the cluster's
   registry if missing), create, start,
4. wait for every container's application to finish booting,
5. status-manager batches the Running/Ready update to the API server.

A housekeeping loop (``kubelet_loop_period_s``) re-reconciles pods in
case a watch event was missed, mirroring the kubelet's sync loop.
"""

from __future__ import annotations

import typing as _t

from repro.containers.containerd import (
    Container,
    Containerd,
    ContainerSpec,
    NodeDown,
    PullError,
)
from repro.containers.registry import Registry
from repro.k8s.apiserver import APIServer, WatchEvent
from repro.k8s.objects import ContainerDef, Pod
from repro.sim import AllOf, Environment, Store

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


class Kubelet:
    """Node agent for one cluster node."""

    def __init__(
        self,
        env: Environment,
        api: APIServer,
        node_name: str,
        node_host: "Host",
        runtime: Containerd,
        image_registry: Registry,
    ) -> None:
        self.env = env
        self.api = api
        self.node_name = node_name
        self.node_host = node_host
        self.runtime = runtime
        self.image_registry = image_registry
        #: pod uid -> containers it runs.
        self.pod_containers: dict[str, list[Container]] = {}
        self._starting: set[str] = set()
        self._queue: Store = Store(env)
        env.process(self._watch_pods(), name=f"kubelet-{node_name}-watch")
        env.process(self._worker(), name=f"kubelet-{node_name}-worker")
        env.process(self._housekeeping(), name=f"kubelet-{node_name}-loop")

    # -- event intake ------------------------------------------------------

    def _watch_pods(self):
        watch = self.api.watch("Pod")
        while True:
            event: WatchEvent = yield watch.get()
            pod: Pod = event.obj
            if event.type == "DELETED":
                if pod.metadata.uid in self.pod_containers:
                    self._queue.put(("teardown", pod))
            elif pod.spec.node_name == self.node_name:
                self._queue.put(("sync", pod.metadata.key))

    def _housekeeping(self):
        period = self.api.profile.kubelet_loop_period_s
        while True:
            yield self.env.timeout(period)
            for pod in self.api.list_nowait("Pod", namespace=None):
                if (
                    pod.spec.node_name == self.node_name
                    and pod.status.phase == "Pending"
                    and pod.metadata.uid not in self._starting
                ):
                    self._queue.put(("sync", pod.metadata.key))

    def _worker(self):
        while True:
            action, payload = yield self._queue.get()
            if action == "teardown":
                yield from self._teardown_pod(payload)
                continue
            namespace, name = payload
            pod = yield from self.api.try_get("Pod", name, namespace)
            if pod is None or pod.spec.node_name != self.node_name:
                continue
            uid = pod.metadata.uid
            if pod.status.phase != "Pending" or uid in self._starting:
                continue
            self._starting.add(uid)
            # Pod startups run concurrently (one pod worker each).
            self.env.process(
                self._start_pod(pod), name=f"podworker:{pod.metadata.name}"
            )

    # -- pod lifecycle --------------------------------------------------------

    def _start_pod(self, pod: Pod):
        profile = self.api.profile
        yield self.env.timeout(profile.kubelet_sync_s)
        yield self.env.timeout(profile.sandbox_setup_s)

        containers: list[Container] = []
        try:
            for cdef in pod.spec.containers:
                yield self.env.timeout(profile.image_check_s)
                if not self.runtime.images.has_image(cdef.image.reference):
                    yield from self.runtime.pull(cdef.image, self.image_registry)
                spec = self._container_spec(pod, cdef)
                container = yield from self.runtime.create(spec)
                yield from self.runtime.start(container)
                containers.append(container)
        except (NodeDown, PullError):
            # Node crashed or registry is out: leave the pod Pending —
            # the housekeeping loop re-reconciles it on its next sync.
            for container in containers:
                self.runtime.kill(container)
            self._starting.discard(pod.metadata.uid)
            return
        self.pod_containers[pod.metadata.uid] = containers

        ready_events = [c.ready for c in containers if not c.ready.triggered]
        if ready_events:
            yield AllOf(self.env, ready_events)

        pod.status.phase = "Running"
        pod.status.ready = True
        pod.status.host = self.node_name
        pod.status.started_at = self.env.now
        yield self.env.timeout(profile.status_update_s)
        self._starting.discard(pod.metadata.uid)
        current = yield from self.api.try_get(
            "Pod", pod.metadata.name, pod.metadata.namespace
        )
        if current is pod:
            yield from self.api.update(pod)
            for container in containers:
                self.env.process(
                    self._restart_monitor(pod, container),
                    name=f"restart-mon:{container.spec.name}",
                )
        else:
            # Pod was deleted while starting: clean up.
            yield from self._teardown_pod(pod)

    #: Crash-loop backoff before restarting a failed container.
    RESTART_BACKOFF_S = 1.0

    def _restart_monitor(self, pod: Pod, container: Container):
        """restartPolicy: Always — bring crashed containers back."""
        while True:
            yield container.exited
            if pod.metadata.uid not in self.pod_containers:
                return  # pod torn down
            # The pod lost readiness until the container is back.
            pod.status.ready = False
            yield from self.api.update(pod)
            yield self.env.timeout(self.RESTART_BACKOFF_S)
            if pod.metadata.uid not in self.pod_containers:
                return
            while True:
                try:
                    yield from self.runtime.start(container)
                    break
                except NodeDown:
                    # Node is crashed; keep backing off until it returns.
                    yield self.env.timeout(self.RESTART_BACKOFF_S)
                    if pod.metadata.uid not in self.pod_containers:
                        return
            yield container.ready
            others = self.pod_containers.get(pod.metadata.uid, [])
            if all(c.state.value == "running" for c in others):
                pod.status.ready = True
                yield self.env.timeout(self.api.profile.status_update_s)
                yield from self.api.update(pod)

    def _container_spec(self, pod: Pod, cdef: ContainerDef) -> ContainerSpec:
        return ContainerSpec(
            name=f"{pod.metadata.name}/{cdef.name}",
            image=cdef.image,
            boot_time_s=cdef.boot_time_s,
            container_port=cdef.container_port,
            host_port=None,  # node ports are kube-proxy's job
            app_factory=cdef.app_factory,
            crash_after_s=cdef.crash_after_s,
            labels={"io.kubernetes.pod.uid": pod.metadata.uid, **pod.metadata.labels},
            env_vars=dict(cdef.env),
            mounts=dict(cdef.volume_mounts),
        )

    def _teardown_pod(self, pod: Pod):
        containers = self.pod_containers.pop(pod.metadata.uid, [])
        self._starting.discard(pod.metadata.uid)
        for container in containers:
            yield from self.runtime.remove(container)

    # -- queries ------------------------------------------------------------------

    def ready_app_for(self, pod: Pod, target_port: int):
        """The booted app of the pod's container listening on ``target_port``."""
        for container in self.pod_containers.get(pod.metadata.uid, []):
            if container.spec.container_port == target_port and container.app is not None:
                return container.app
        return None
