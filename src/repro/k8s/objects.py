"""Kubernetes API object model (the subset the paper's system uses).

Deployments, ReplicaSets, Pods, and Services with label selectors —
enough to express the service-definition files of §V, the automated
annotation, and the 0→N scale operations of the deployment phases.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.containers.image import ImageSpec

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Application
    from repro.sim import Environment

_uids = itertools.count(1)


def new_uid() -> str:
    return f"uid-{next(_uids):08d}"


def matches_selector(labels: _t.Mapping[str, str], selector: _t.Mapping[str, str]) -> bool:
    """Kubernetes equality-based selector semantics."""
    return all(labels.get(key) == value for key, value in selector.items())


@dataclasses.dataclass
class ObjectMeta:
    """Standard object metadata."""

    name: str
    namespace: str = "default"
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    annotations: dict[str, str] = dataclasses.field(default_factory=dict)
    uid: str = dataclasses.field(default_factory=new_uid)
    resource_version: int = 0
    creation_time: float | None = None
    #: uid of the owning object (RS for pods, Deployment for RS).
    owner_uid: str | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.namespace, self.name)


@dataclasses.dataclass
class ContainerDef:
    """One container in a pod template."""

    name: str
    image: ImageSpec
    container_port: int | None = None
    env: dict[str, str] = dataclasses.field(default_factory=dict)
    volume_mounts: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Boot/behaviour model attached by the service catalog.
    boot_time_s: float = 0.0
    app_factory: _t.Callable[["Environment"], "Application"] | None = None
    #: Failure injection (tests): crash this long after becoming ready.
    crash_after_s: float | None = None


@dataclasses.dataclass
class PodSpec:
    containers: list[ContainerDef] = dataclasses.field(default_factory=list)
    node_name: str | None = None
    scheduler_name: str = "default-scheduler"


@dataclasses.dataclass
class PodStatus:
    phase: str = "Pending"  # Pending | Running | Succeeded | Failed
    ready: bool = False
    host: str | None = None
    started_at: float | None = None


@dataclasses.dataclass
class Pod:
    metadata: ObjectMeta
    spec: PodSpec
    status: PodStatus = dataclasses.field(default_factory=PodStatus)
    kind: _t.ClassVar[str] = "Pod"


@dataclasses.dataclass
class PodTemplateSpec:
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    spec: PodSpec = dataclasses.field(default_factory=PodSpec)


@dataclasses.dataclass
class DeploymentSpec:
    replicas: int = 0
    selector: dict[str, str] = dataclasses.field(default_factory=dict)
    template: PodTemplateSpec = dataclasses.field(default_factory=PodTemplateSpec)


@dataclasses.dataclass
class DeploymentStatus:
    replicas: int = 0
    ready_replicas: int = 0


@dataclasses.dataclass
class Deployment:
    metadata: ObjectMeta
    spec: DeploymentSpec
    status: DeploymentStatus = dataclasses.field(default_factory=DeploymentStatus)
    kind: _t.ClassVar[str] = "Deployment"


@dataclasses.dataclass
class ReplicaSetSpec:
    replicas: int = 0
    selector: dict[str, str] = dataclasses.field(default_factory=dict)
    template: PodTemplateSpec = dataclasses.field(default_factory=PodTemplateSpec)


@dataclasses.dataclass
class ReplicaSet:
    metadata: ObjectMeta
    spec: ReplicaSetSpec
    kind: _t.ClassVar[str] = "ReplicaSet"


@dataclasses.dataclass
class ServicePort:
    """One exposed port of a Service."""

    port: int
    target_port: int
    protocol: str = "TCP"
    node_port: int | None = None


@dataclasses.dataclass
class ServiceSpec:
    selector: dict[str, str] = dataclasses.field(default_factory=dict)
    ports: list[ServicePort] = dataclasses.field(default_factory=list)
    type: str = "NodePort"


@dataclasses.dataclass
class Service:
    metadata: ObjectMeta
    spec: ServiceSpec
    kind: _t.ClassVar[str] = "Service"


#: All kinds the API server stores.
KINDS = ("Deployment", "ReplicaSet", "Pod", "Service")
