"""Cluster assembly: control plane plus nodes."""

from __future__ import annotations

import typing as _t

from repro.containers.containerd import Containerd
from repro.containers.registry import Registry
from repro.k8s.apiserver import APIServer
from repro.k8s.controllers import DeploymentController, ReplicaSetController
from repro.k8s.kubelet import Kubelet
from repro.k8s.kubeproxy import KubeProxy
from repro.k8s.profile import K8sProfile
from repro.k8s.scheduler import KubeScheduler, SchedulingPolicy, least_pods_policy
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host


class KubernetesCluster:
    """A complete (simulated) Kubernetes cluster.

    The paper's testbed runs a single-node cluster on the EGS; this
    class supports multiple nodes but every experiment uses one.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        image_registry: Registry,
        profile: K8sProfile | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.image_registry = image_registry
        self.api = APIServer(env, profile or K8sProfile())
        self.kubelets: dict[str, Kubelet] = {}
        self.deployment_controller = DeploymentController(env, self.api)
        self.replicaset_controller = ReplicaSetController(env, self.api)
        self.default_scheduler = KubeScheduler(env, self.api, [])
        self.extra_schedulers: dict[str, KubeScheduler] = {}
        self.kube_proxy = KubeProxy(env, self.api, self.kubelets)

    @property
    def profile(self) -> K8sProfile:
        return self.api.profile

    def add_node(self, node_name: str, host: "Host", runtime: Containerd) -> Kubelet:
        """Join a node (host + container runtime) to the cluster."""
        if node_name in self.kubelets:
            raise ValueError(f"node {node_name!r} already registered")
        kubelet = Kubelet(
            self.env,
            self.api,
            node_name,
            host,
            runtime,
            self.image_registry,
        )
        self.kubelets[node_name] = kubelet
        self.default_scheduler.register_node(node_name)
        for scheduler in self.extra_schedulers.values():
            scheduler.register_node(node_name)
        return kubelet

    def add_scheduler(
        self, name: str, policy: SchedulingPolicy = least_pods_policy
    ) -> KubeScheduler:
        """Register a custom (Local) scheduler under ``name``.

        Pods whose ``spec.scheduler_name`` equals ``name`` are bound by
        this scheduler instead of the default one — the paper's hook
        for cluster-specific Local Schedulers (§V).
        """
        if name in self.extra_schedulers or name == self.default_scheduler.name:
            raise ValueError(f"scheduler {name!r} already exists")
        scheduler = KubeScheduler(
            self.env, self.api, list(self.kubelets), name=name, policy=policy
        )
        self.extra_schedulers[name] = scheduler
        return scheduler

    def node_host(self, node_name: str) -> "Host":
        return self.kubelets[node_name].node_host

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KubernetesCluster {self.name!r} nodes={list(self.kubelets)}>"
