"""Calibrated latency constants for the Kubernetes control plane.

Each constant models one hop of the scale-up chain.  The defaults are
calibrated so that the end-to-end 0→1 scale-up of a small service
lands near the paper's ≈3 s median (fig. 11) — the individual values
are in the range of documented component behaviour (informer/watch
propagation, work-queue processing, CNI setup, status-manager and
endpoint batching), but only their *sum* is fitted.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class K8sProfile:
    """Latency model of one Kubernetes cluster's control plane."""

    # API server -----------------------------------------------------------
    #: One synchronous API request (create/get/update/patch).
    api_latency_s: float = 0.012
    #: Delivery delay of one watch event to an informer.
    watch_latency_s: float = 0.018

    # Controller manager --------------------------------------------------------
    #: Work-queue dwell + reconcile computation, deployment controller.
    deployment_sync_s: float = 0.060
    #: Work-queue dwell + reconcile computation, replica-set controller.
    replicaset_sync_s: float = 0.060

    # Scheduler ---------------------------------------------------------------------
    #: Scheduling-queue dwell + predicates/priorities evaluation.
    scheduler_sync_s: float = 0.110
    #: Binding API call overhead.
    bind_latency_s: float = 0.025

    # Kubelet ----------------------------------------------------------------------------
    #: Pod-worker wakeup + config processing after the watch event.
    kubelet_sync_s: float = 0.180
    #: Pod sandbox creation: pause container, cgroups, CNI plugin run.
    sandbox_setup_s: float = 0.950
    #: Checking image presence with the runtime, per container.
    image_check_s: float = 0.050
    #: Status-manager batching before the Running/Ready update lands.
    status_update_s: float = 0.350

    # Service plumbing -----------------------------------------------------------------------
    #: Endpoints-controller reaction to a pod becoming ready.
    endpoints_sync_s: float = 0.160
    #: kube-proxy iptables/ipvs programming of the node port.
    kubeproxy_sync_s: float = 0.420

    #: Kubelet housekeeping loop period (reconciles missed work).
    kubelet_loop_period_s: float = 1.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be >= 0")


#: Profile used by all experiments unless overridden.
DEFAULT_PROFILE = K8sProfile()
