"""The kube-scheduler, with pluggable policies.

§IV-B: "With a Kubernetes cluster, the K8s scheduler might represent
the Local Scheduler; however, we might also use a different one ...
for Kubernetes, we can even define a custom scheduler to be used for
our edge services only."  A :class:`KubeScheduler` only binds pods
whose ``spec.scheduler_name`` equals its own name, so several
schedulers coexist — the hook the paper's annotator uses when a Local
Scheduler is configured for a cluster.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.k8s.apiserver import APIServer, WatchEvent
from repro.k8s.objects import Pod
from repro.sim import Environment, Store


@dataclasses.dataclass(frozen=True)
class NodeInfo:
    """What a scheduling policy sees about one node."""

    name: str
    pod_count: int


#: A policy maps (pod, nodes) to the chosen node name (or None).
SchedulingPolicy = _t.Callable[[Pod, _t.Sequence[NodeInfo]], str | None]


def least_pods_policy(pod: Pod, nodes: _t.Sequence[NodeInfo]) -> str | None:
    """Default policy: the node with the fewest pods, ties by name."""
    if not nodes:
        return None
    best = min(nodes, key=lambda n: (n.pod_count, n.name))
    return best.name


class KubeScheduler:
    """Binds pending pods to nodes."""

    def __init__(
        self,
        env: Environment,
        api: APIServer,
        node_names: _t.Sequence[str],
        name: str = "default-scheduler",
        policy: SchedulingPolicy = least_pods_policy,
        unschedulable_retry_s: float = 5.0,
    ) -> None:
        self.env = env
        self.api = api
        self.name = name
        self.policy = policy
        #: Backoff before retrying a pod no node could take.
        self.unschedulable_retry_s = unschedulable_retry_s
        self._node_names = list(node_names)
        self._queue: Store = Store(env)
        env.process(self._watch_pods(), name=f"sched-{name}-watch")
        env.process(self._worker(), name=f"sched-{name}-worker")

    def register_node(self, name: str) -> None:
        if name not in self._node_names:
            self._node_names.append(name)

    def _watch_pods(self):
        watch = self.api.watch("Pod")
        while True:
            event: WatchEvent = yield watch.get()
            pod: Pod = event.obj
            if (
                event.type in ("ADDED", "MODIFIED")
                and pod.spec.node_name is None
                and pod.spec.scheduler_name == self.name
            ):
                self._queue.put(pod.metadata.key)

    def _node_infos(self) -> list[NodeInfo]:
        pods = self.api.list_nowait("Pod", namespace=None)
        counts = {name: 0 for name in self._node_names}
        for pod in pods:
            if pod.spec.node_name in counts:
                counts[pod.spec.node_name] += 1
        return [NodeInfo(name, counts[name]) for name in self._node_names]

    def _worker(self):
        while True:
            key = yield self._queue.get()
            yield self.env.timeout(self.api.profile.scheduler_sync_s)
            namespace, name = key
            pod = yield from self.api.try_get("Pod", name, namespace)
            if pod is None or pod.spec.node_name is not None:
                continue
            choice = self.policy(pod, self._node_infos())
            if choice is None:
                # Unschedulable now: retry with backoff (nodes may join,
                # pods may leave).
                self.env.process(
                    self._requeue_later(key), name=f"sched-{self.name}-retry"
                )
                continue
            yield self.env.timeout(self.api.profile.bind_latency_s)
            pod.spec.node_name = choice
            yield from self.api.update(pod)

    def _requeue_later(self, key):
        yield self.env.timeout(self.unschedulable_retry_s)
        self._queue.put(key)
