"""Endpoints propagation and kube-proxy node-port programming.

When a pod backing a NodePort service becomes ready, the endpoints
controller reacts first (``endpoints_sync_s``), then kube-proxy
programs the node port (``kubeproxy_sync_s``) on the node running the
pod — only then does the service port answer TCP connects, which is
what the SDN controller's port polling observes.
"""

from __future__ import annotations

import typing as _t

from repro.k8s.apiserver import APIServer, WatchEvent
from repro.k8s.objects import Pod, Service, matches_selector
from repro.sim import Environment, Store

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.k8s.kubelet import Kubelet


class RoundRobinBalancer:
    """The node-port handler: balances requests over ready backends.

    kube-proxy's iptables rules spray connections across endpoints; we
    model that as per-request round robin over the current backend
    apps.  The backend list is swapped atomically on each reconcile.
    """

    def __init__(self) -> None:
        self.backends: list[_t.Any] = []
        self._next = 0

    def set_backends(self, backends: list[_t.Any]) -> None:
        self.backends = backends
        if self._next >= len(backends):
            self._next = 0

    def handle(self, request):
        if not self.backends:  # pragma: no cover - port closes first
            raise RuntimeError("no backends")
        backend = self.backends[self._next % len(self.backends)]
        self._next += 1
        response = yield from backend.handle(request)
        return response


class KubeProxy:
    """Cluster-wide service plumbing (endpoints + proxy, folded)."""

    def __init__(
        self,
        env: Environment,
        api: APIServer,
        kubelets: dict[str, "Kubelet"],
    ) -> None:
        self.env = env
        self.api = api
        self.kubelets = kubelets
        #: (service uid, node name) -> opened node port.
        self._bound: dict[tuple[str, str], int] = {}
        #: (service uid, node name) -> the balancer serving that port.
        self._balancers: dict[tuple[str, str], RoundRobinBalancer] = {}
        self._queue: Store = Store(env)
        env.process(self._watch("Service"), name="kubeproxy-watch-svc")
        env.process(self._watch("Pod"), name="kubeproxy-watch-pod")
        env.process(self._worker(), name="kubeproxy-worker")

    def _watch(self, kind: str):
        watch = self.api.watch(kind)
        while True:
            yield watch.get()
            self._queue.put("resync")

    def _worker(self):
        profile = self.api.profile
        while True:
            yield self._queue.get()
            # Coalesce bursts: drain whatever queued while we slept.
            yield self.env.timeout(profile.endpoints_sync_s)
            while len(self._queue.items):
                yield self._queue.get()
            yield self.env.timeout(profile.kubeproxy_sync_s)
            self._reconcile_all()

    def _reconcile_all(self) -> None:
        services = self.api.list_nowait("Service", namespace=None)
        pods = self.api.list_nowait("Pod", namespace=None)
        desired: dict[tuple[str, str], tuple[int, list[_t.Any]]] = {}

        for service in services:
            for port in service.spec.ports:
                if port.node_port is None:
                    continue
                for node_name, apps in self._backends(
                    service, port.target_port, pods
                ).items():
                    desired[(service.metadata.uid, node_name)] = (
                        port.node_port,
                        apps,
                    )

        # Close bindings that lost their backends or services.
        for key in list(self._bound):
            if key not in desired:
                node_port = self._bound.pop(key)
                self._balancers.pop(key, None)
                kubelet = self.kubelets.get(key[1])
                if kubelet is not None and kubelet.node_host.port_is_open(node_port):
                    kubelet.node_host.close_port(node_port)

        # Open new bindings / refresh backend sets.
        for key, (node_port, apps) in desired.items():
            kubelet = self.kubelets.get(key[1])
            if kubelet is None:
                continue
            balancer = self._balancers.get(key)
            if balancer is None:
                balancer = RoundRobinBalancer()
                self._balancers[key] = balancer
            balancer.set_backends(apps)
            if key not in self._bound:
                if not kubelet.node_host.port_is_open(node_port):
                    kubelet.node_host.open_port(node_port, balancer)
                self._bound[key] = node_port

    def _backends(
        self, service: Service, target_port: int, pods: _t.Sequence[Pod]
    ) -> dict[str, list[_t.Any]]:
        """Ready backend apps per node, in pod-uid order."""
        result: dict[str, list[_t.Any]] = {}
        for pod in pods:
            if not pod.status.ready or pod.spec.node_name is None:
                continue
            if not matches_selector(pod.metadata.labels, service.spec.selector):
                continue
            kubelet = self.kubelets.get(pod.spec.node_name)
            if kubelet is None:
                continue
            app = kubelet.ready_app_for(pod, target_port)
            if app is not None:
                result.setdefault(pod.spec.node_name, []).append(app)
        return result
