"""Container substrate: layered images, registries, containerd, Docker.

Models the deployment-phase machinery of the paper's fig. 4:

* **Pull** — :class:`Registry` serves layered images; pull time depends
  on image size, layer count, registry round-trip time, and bandwidth,
  and already-cached layers are skipped (shared base layers across
  images are real in the model).
* **Create** — :class:`Containerd` allocates a container from a spec.
* **Scale Up** — starting a container pays the namespace-setup cost
  (per Mohan et al. [23], ~90 % of container start time) plus the
  application's own boot time; the service port opens on the node host
  only when the application is ready.
* **Scale Down / Remove / Delete** — containers stop and are removed;
  images may be deleted with per-layer refcounting (a layer survives
  while another image references it).
"""

from repro.containers.image import ImageSpec, Layer
from repro.containers.registry import ImageNotFound, Registry, RegistryProfile
from repro.containers.store import ImageStore
from repro.containers.containerd import (
    Container,
    Containerd,
    ContainerSpec,
    ContainerState,
    RuntimeProfile,
)
from repro.containers.docker import DockerEngine

__all__ = [
    "Container",
    "Containerd",
    "ContainerSpec",
    "ContainerState",
    "DockerEngine",
    "ImageNotFound",
    "ImageSpec",
    "ImageStore",
    "Layer",
    "Registry",
    "RegistryProfile",
    "RuntimeProfile",
]
