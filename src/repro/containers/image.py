"""Container images as named stacks of content-addressed layers."""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

KIB = 1024
MIB = 1024 * 1024


@dataclasses.dataclass(frozen=True)
class Layer:
    """One content-addressed image layer."""

    digest: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"layer size must be >= 0, got {self.size_bytes}")

    @classmethod
    def synthesize(cls, seed: str, size_bytes: int) -> "Layer":
        """Deterministic digest from a seed string (test/catalog helper)."""
        digest = "sha256:" + hashlib.sha256(seed.encode()).hexdigest()[:16]
        return cls(digest=digest, size_bytes=size_bytes)


@dataclasses.dataclass(frozen=True)
class ImageSpec:
    """A named, layered container image.

    ``reference`` follows the usual ``[registry/]repo[:tag]`` form; the
    paper's four services use e.g. ``nginx:1.23.2`` and
    ``gcr.io/tensorflow-serving/resnet``.
    """

    reference: str
    layers: tuple[Layer, ...]

    def __post_init__(self) -> None:
        if not self.reference:
            raise ValueError("image reference must be non-empty")
        if not self.layers:
            raise ValueError(f"image {self.reference!r} needs at least one layer")
        digests = [layer.digest for layer in self.layers]
        if len(set(digests)) != len(digests):
            raise ValueError(f"image {self.reference!r} has duplicate layer digests")

    @property
    def total_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    @classmethod
    def synthesize(
        cls,
        reference: str,
        total_bytes: int,
        layer_count: int,
        shared_layers: _t.Sequence[Layer] = (),
    ) -> "ImageSpec":
        """Build an image of ``total_bytes`` split over ``layer_count``
        layers, optionally reusing ``shared_layers`` (base images).

        The non-shared remainder is split with a top-heavy geometric
        profile, mirroring how real images have one large payload layer
        plus small metadata layers.
        """
        if layer_count < 1:
            raise ValueError("layer_count must be >= 1")
        shared = tuple(shared_layers)
        if len(shared) > layer_count:
            raise ValueError("more shared layers than total layers")
        shared_bytes = sum(layer.size_bytes for layer in shared)
        own_count = layer_count - len(shared)
        own_bytes = total_bytes - shared_bytes
        if own_count == 0:
            if own_bytes != 0:
                raise ValueError("shared layers already exceed total size")
            return cls(reference=reference, layers=shared)
        if own_bytes < 0:
            raise ValueError("shared layers exceed the image's total size")
        # Geometric split: each layer half the previous, largest first.
        weights = [2.0 ** (own_count - 1 - i) for i in range(own_count)]
        scale = own_bytes / sum(weights)
        sizes = [int(w * scale) for w in weights]
        sizes[0] += own_bytes - sum(sizes)  # absorb rounding
        own = tuple(
            Layer.synthesize(f"{reference}#{i}", size)
            for i, size in enumerate(sizes)
        )
        return cls(reference=reference, layers=shared + own)
