"""The node-local image store (layer cache).

Layers are content-addressed and reference-counted: deleting an image
only removes layers no other stored image still uses — the paper's §IV-C
notes exactly this ("Even if a container image is deleted, some of its
layers may be used by other images").
"""

from __future__ import annotations

import typing as _t

from repro.containers.image import ImageSpec, Layer


class ImageStore:
    """Per-node cache of image layers and image manifests."""

    def __init__(self) -> None:
        self._layers: dict[str, Layer] = {}
        self._layer_refs: dict[str, int] = {}
        self._images: dict[str, ImageSpec] = {}

    # -- queries -----------------------------------------------------------

    def has_image(self, reference: str) -> bool:
        """Whether the image (manifest + all layers) is fully cached."""
        image = self._images.get(reference)
        if image is None:
            return False
        return all(layer.digest in self._layers for layer in image.layers)

    def has_layer(self, digest: str) -> bool:
        return digest in self._layers

    def missing_layers(self, image: ImageSpec) -> list[Layer]:
        """Layers of ``image`` that still need to be pulled."""
        return [l for l in image.layers if l.digest not in self._layers]

    @property
    def disk_bytes(self) -> int:
        """Total bytes of stored (deduplicated) layers."""
        return sum(layer.size_bytes for layer in self._layers.values())

    def images(self) -> list[str]:
        return sorted(self._images)

    # -- mutation ------------------------------------------------------------

    def add_layer(self, layer: Layer) -> None:
        self._layers[layer.digest] = layer

    def commit_image(self, image: ImageSpec) -> None:
        """Record a fully pulled image, bumping its layers' refcounts."""
        if image.reference in self._images:
            return
        missing = self.missing_layers(image)
        if missing:
            raise ValueError(
                f"cannot commit {image.reference!r}: "
                f"{len(missing)} layers not in store"
            )
        self._images[image.reference] = image
        for layer in image.layers:
            self._layer_refs[layer.digest] = self._layer_refs.get(layer.digest, 0) + 1

    def delete_image(self, reference: str) -> int:
        """Delete an image; returns bytes actually freed.

        Layers shared with other stored images survive.
        """
        image = self._images.pop(reference, None)
        if image is None:
            return 0
        freed = 0
        for layer in image.layers:
            refs = self._layer_refs.get(layer.digest, 0) - 1
            if refs <= 0:
                self._layer_refs.pop(layer.digest, None)
                removed = self._layers.pop(layer.digest, None)
                if removed is not None:
                    freed += removed.size_bytes
            else:
                self._layer_refs[layer.digest] = refs
        return freed
