"""The containerd-like container runtime.

Both the Docker engine and the Kubernetes kubelet drive this runtime —
on the paper's testbed, Docker and K8s literally share one containerd
on the EGS, which is why their *warm* request times match (fig. 16)
while their orchestration overheads differ (fig. 11).

Timing model per container start (see :class:`RuntimeProfile`):

* snapshot preparation at create time,
* network-namespace setup — the dominant cost per Mohan et al. [23]
  ("creation and initialization of network namespaces account for 90
  percent of the startup time of a container"),
* runtime (runc) spawn,
* the application's own boot time, after which its port opens on the
  node host (readiness).

``start()`` returns when the container process has been spawned —
matching the Docker API — while application boot continues in the
background; :attr:`Container.ready` fires when the service port is
open.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

from repro.containers.image import ImageSpec
from repro.containers.registry import Registry, RegistryUnavailable
from repro.containers.store import ImageStore
from repro.sim import AllOf, Environment, Event, Resource


class PullError(RuntimeError):
    """A pull failed even after exhausting its retries."""


class NodeDown(RuntimeError):
    """The node hosting this runtime is crashed (failure injection).

    Raised by pull/create/start while the node is down; retryable —
    callers back off and try again (the node may come back)."""

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Application, Host


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"
    REMOVED = "removed"


@dataclasses.dataclass(frozen=True)
class RuntimeProfile:
    """Calibrated costs of runtime operations (seconds)."""

    #: Filesystem snapshot preparation during create.
    snapshot_create_s: float = 0.045
    #: Network-namespace creation + veth/iptables plumbing (dominant).
    namespace_setup_s: float = 0.280
    #: Spawning the container process via the OCI runtime.
    runtime_spawn_s: float = 0.055
    stop_s: float = 0.040
    remove_s: float = 0.030
    #: Concurrent start operations the node sustains (cores-bound).
    start_concurrency: int = 8
    #: Retries per layer on transient registry failures.
    pull_retries: int = 3
    #: Backoff before a layer retry (doubles per attempt).
    pull_retry_backoff_s: float = 0.2

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if field.name == "start_concurrency":
                continue
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be >= 0")
        if self.start_concurrency < 1:
            raise ValueError("start_concurrency must be >= 1")


@dataclasses.dataclass(frozen=True)
class ContainerSpec:
    """What to run: image, port binding, labels, and the app model."""

    name: str
    image: ImageSpec
    #: Application boot time after the process spawns (model load,
    #: config parsing, ...); the port opens when boot completes.
    boot_time_s: float = 0.0
    #: Port inside the container the app listens on (None: no server).
    container_port: int | None = None
    #: Port bound on the node host (None: no host binding).
    host_port: int | None = None
    #: Factory building the request handler once the container starts.
    app_factory: _t.Callable[[Environment], "Application"] | None = None
    #: Failure injection: the application crashes this many seconds
    #: after becoming ready (every time it is (re)started).
    crash_after_s: float | None = None
    labels: _t.Mapping[str, str] = dataclasses.field(default_factory=dict)
    env_vars: _t.Mapping[str, str] = dataclasses.field(default_factory=dict)
    #: host-path -> container-path volume mounts (modelled, not used).
    mounts: _t.Mapping[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class PullResult:
    """Outcome of a pull: what was actually transferred."""

    reference: str
    duration_s: float
    layers_pulled: int
    bytes_pulled: int
    cache_hit: bool


_container_ids = itertools.count(1)


class Container:
    """A container instance managed by :class:`Containerd`."""

    def __init__(self, runtime: "Containerd", spec: ContainerSpec) -> None:
        self.runtime = runtime
        self.spec = spec
        self.container_id = f"c-{next(_container_ids):06d}"
        self.state = ContainerState.CREATED
        self.created_at = runtime.env.now
        self.started_at: float | None = None
        #: Fires when the application is booted and its port is open.
        self.ready: Event = runtime.env.event()
        #: The instantiated request handler (set at application boot);
        #: kube-proxy binds node ports to this.
        self.app: _t.Any = None
        #: Fires each time the container process exits unexpectedly;
        #: replaced with a fresh event on restart.  Watched by the
        #: kubelet for its restart policy.
        self.exited: Event = runtime.env.event()
        self.exit_code: int | None = None
        self.restart_count = 0
        self._bound_port: int | None = None

    @property
    def is_ready(self) -> bool:
        return self.ready.triggered and self.state is ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Container {self.container_id} {self.spec.name} {self.state.value}>"


class Containerd:
    """The per-node container runtime."""

    def __init__(
        self,
        env: Environment,
        node: "Host",
        image_store: ImageStore | None = None,
        profile: RuntimeProfile | None = None,
        disk_limit_bytes: int | None = None,
    ) -> None:
        self.env = env
        self.node = node
        self.images = image_store if image_store is not None else ImageStore()
        self.profile = profile if profile is not None else RuntimeProfile()
        self.containers: dict[str, Container] = {}
        #: Disk-pressure threshold for the image GC (None: unlimited).
        #: §IV-C: "Optionally, but unlikely, the cached items may also
        #: be Deleted if disk space is scarce."
        self.disk_limit_bytes = disk_limit_bytes
        #: Image reference -> last time a container used it (LRU order
        #: for the GC's eviction choice).
        self._image_last_used: dict[str, float] = {}
        self.gc_stats = {"runs": 0, "images_deleted": 0, "bytes_freed": 0}
        self._start_slots = Resource(env, self.profile.start_concurrency)
        #: Failure injection: while True, pull/create/start raise
        #: :class:`NodeDown` (set by the Injector on a node crash).
        self.down = False

    def __getstate__(self) -> dict:
        """Pickle as a *cold* runtime: the image cache (a cold-started
        node keeps its pulled layers on disk) and profile survive;
        running containers, LRU timestamps from the old clock, and the
        env-bound start-slot resource do not."""
        state = self.__dict__.copy()
        state["env"] = None
        state["containers"] = {}
        state["_image_last_used"] = {}
        state["_start_slots"] = None
        return state

    def rebind(self, env: Environment) -> None:
        """Attach an unpickled (cold) runtime to ``env``, cascading to
        the node host when it is still cold itself (the host may be
        shared with — and already rebound by — a cluster adapter)."""
        if self.env is not None:
            raise RuntimeError(
                f"{self.node.name}: runtime already bound to an "
                "environment; only a cold (unpickled) one can be rebound"
            )
        self.env = env
        self._start_slots = Resource(env, self.profile.start_concurrency)
        if self.node.env is None:
            self.node.rebind(env)

    # -- pull phase ------------------------------------------------------

    def pull(self, image: ImageSpec, registry: Registry):
        """Pull an image (generator returning :class:`PullResult`).

        Cached layers are skipped entirely; for a fully cached image
        only the local manifest check happens (no network).
        """
        started = self.env.now
        if self.down:
            raise NodeDown(f"{self.node.name} is down")
        if self.images.has_image(image.reference):
            return PullResult(image.reference, 0.0, 0, 0, cache_hit=True)

        attempt = 0
        while True:
            try:
                manifest = yield from registry.manifest(image.reference)
                break
            except RegistryUnavailable as exc:
                attempt += 1
                if attempt > self.profile.pull_retries:
                    raise PullError(
                        f"manifest for {image.reference} unavailable after "
                        f"{self.profile.pull_retries} retries: {exc}"
                    ) from exc
                yield self.env.timeout(
                    self.profile.pull_retry_backoff_s * 2 ** (attempt - 1)
                )
        missing = self.images.missing_layers(manifest)
        fetches = [
            self.env.process(
                self._fetch_and_store(layer, registry),
                name=f"pull:{layer.digest[:15]}",
            )
            for layer in missing
        ]
        if fetches:
            yield AllOf(self.env, fetches)
        self.images.commit_image(manifest)
        self._image_last_used[manifest.reference] = self.env.now
        self.collect_garbage()
        return PullResult(
            reference=image.reference,
            duration_s=self.env.now - started,
            layers_pulled=len(missing),
            bytes_pulled=sum(layer.size_bytes for layer in missing),
            cache_hit=False,
        )

    def _fetch_and_store(self, layer, registry: Registry):
        """Fetch one layer, retrying transient registry failures with
        exponential backoff (as containerd's fetcher does)."""
        attempt = 0
        while True:
            try:
                yield from registry.fetch_layer(layer)
                break
            except RegistryUnavailable as exc:
                attempt += 1
                if attempt > self.profile.pull_retries:
                    raise PullError(
                        f"giving up on {layer.digest} after "
                        f"{self.profile.pull_retries} retries: {exc}"
                    ) from exc
                yield self.env.timeout(
                    self.profile.pull_retry_backoff_s * 2 ** (attempt - 1)
                )
        self.images.add_layer(layer)

    # -- create phase -------------------------------------------------------

    def create(self, spec: ContainerSpec):
        """Create a container (generator returning :class:`Container`).

        Requires the image to be present in the local store.
        """
        if self.down:
            raise NodeDown(f"{self.node.name} is down")
        if not self.images.has_image(spec.image.reference):
            raise RuntimeError(
                f"image {spec.image.reference!r} not present on {self.node.name}; "
                "pull it first"
            )
        yield self.env.timeout(self.profile.snapshot_create_s)
        container = Container(self, spec)
        self.containers[container.container_id] = container
        self._image_last_used[spec.image.reference] = self.env.now
        return container

    # -- scale-up phase ----------------------------------------------------------

    def start(self, container: Container):
        """Start a container (generator; returns when the process spawned).

        Application boot continues in the background; the container's
        :attr:`~Container.ready` event fires once its port is open.
        """
        if self.down:
            raise NodeDown(f"{self.node.name} is down")
        if container.state not in (ContainerState.CREATED, ContainerState.EXITED):
            # Stopped containers restart (as `docker start` allows).
            raise RuntimeError(
                f"cannot start {container.container_id} in state "
                f"{container.state.value}"
            )
        with self._start_slots.request() as slot:
            yield slot
            yield self.env.timeout(self.profile.namespace_setup_s)
            yield self.env.timeout(self.profile.runtime_spawn_s)
        if container.started_at is not None:
            # Restart: give watchers fresh lifecycle events.
            container.exited = Event(self.env)
            container.ready = Event(self.env)
            container.restart_count += 1
        container.state = ContainerState.RUNNING
        container.started_at = self.env.now
        container.exit_code = None
        self.env.process(
            self._boot_application(container), name=f"boot:{container.spec.name}"
        )

    def _boot_application(self, container: Container):
        if container.spec.boot_time_s:
            yield self.env.timeout(container.spec.boot_time_s)
        else:
            yield self.env.timeout(0.0)
        if container.state is not ContainerState.RUNNING:
            return  # stopped while booting
        spec = container.spec
        if spec.app_factory is not None:
            container.app = spec.app_factory(self.env)
        if spec.host_port is not None and container.app is not None:
            if not self.node.port_is_open(spec.host_port):
                self.node.open_port(spec.host_port, container.app)
                container._bound_port = spec.host_port
        if not container.ready.triggered:
            container.ready.succeed(self.env.now)
        if spec.crash_after_s is not None:
            self.env.process(
                self._crash_later(container, container.exited),
                name=f"crash:{container.spec.name}",
            )

    def _crash_later(self, container: Container, exit_event: Event):
        """Failure injection: the process dies after its fuse burns."""
        yield self.env.timeout(container.spec.crash_after_s or 0.0)
        if (
            container.state is not ContainerState.RUNNING
            or container.exited is not exit_event
        ):
            return  # stopped or already restarted in the meantime
        container.state = ContainerState.EXITED
        container.exit_code = 1
        self._release_port(container)
        if not exit_event.triggered:
            exit_event.succeed(self.env.now)

    def kill(self, container: Container) -> bool:
        """SIGKILL a running container (failure injection; synchronous).

        Unlike :meth:`stop` there is no graceful shutdown delay: the
        process is gone now.  The ``exited`` event fires so a kubelet
        restart policy picks the container up.  Returns True if the
        container was running.
        """
        if container.state is not ContainerState.RUNNING:
            return False
        container.state = ContainerState.EXITED
        container.exit_code = 137
        self._release_port(container)
        if not container.exited.triggered:
            container.exited.succeed(self.env.now)
        return True

    def kill_all(self) -> int:
        """Kill every running container (node crash); returns the count."""
        killed = 0
        for container in list(self.containers.values()):
            if self.kill(container):
                killed += 1
        return killed

    # -- scale-down / remove phases --------------------------------------------------

    def stop(self, container: Container):
        """Stop a running container (generator)."""
        if container.state is not ContainerState.RUNNING:
            return
        yield self.env.timeout(self.profile.stop_s)
        self._release_port(container)
        container.state = ContainerState.EXITED

    def remove(self, container: Container):
        """Remove a stopped (or created) container (generator)."""
        if container.state is ContainerState.RUNNING:
            yield from self.stop(container)
        yield self.env.timeout(self.profile.remove_s)
        container.state = ContainerState.REMOVED
        self.containers.pop(container.container_id, None)

    def _release_port(self, container: Container) -> None:
        if container._bound_port is not None:
            self.node.close_port(container._bound_port)
            container._bound_port = None

    # -- image garbage collection (the fig. 4 Delete phase) -----------------------------

    def images_in_use(self) -> set[str]:
        """References of images backing a non-removed container."""
        return {
            c.spec.image.reference
            for c in self.containers.values()
            if c.state is not ContainerState.REMOVED
        }

    def collect_garbage(self) -> int:
        """Evict least-recently-used unused images while the store
        exceeds ``disk_limit_bytes``.  Returns bytes freed.

        Shared layers survive eviction while another stored image
        references them (the §IV-C observation that a later re-pull may
        not need every layer again).
        """
        if self.disk_limit_bytes is None:
            return 0
        if self.images.disk_bytes <= self.disk_limit_bytes:
            return 0
        self.gc_stats["runs"] += 1
        in_use = self.images_in_use()
        candidates = [
            ref for ref in self.images.images() if ref not in in_use
        ]
        candidates.sort(key=lambda ref: self._image_last_used.get(ref, 0.0))
        freed = 0
        for ref in candidates:
            if self.images.disk_bytes <= self.disk_limit_bytes:
                break
            bytes_freed = self.images.delete_image(ref)
            if bytes_freed or not self.images.has_image(ref):
                self.gc_stats["images_deleted"] += 1
                self.gc_stats["bytes_freed"] += bytes_freed
                freed += bytes_freed
                self._image_last_used.pop(ref, None)
        return freed

    # -- queries ----------------------------------------------------------------------

    def list_containers(
        self, label_filter: _t.Mapping[str, str] | None = None
    ) -> list[Container]:
        """Containers whose labels include all of ``label_filter``."""
        result = []
        for container in self.containers.values():
            labels = container.spec.labels
            if label_filter and any(
                labels.get(k) != v for k, v in label_filter.items()
            ):
                continue
            result.append(container)
        return result
