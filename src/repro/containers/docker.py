"""A Docker-Engine-like facade over containerd.

The paper's "Docker cluster" is a plain Docker engine on the EGS; the
SDN controller talks to it through the Docker Python client.  The
engine adds a small per-API-call latency on top of the runtime costs,
and supports the label-based querying the controller uses to find edge
service containers ("Our system also adds labels to Docker deployments
to allow addressing and querying edge services distinctly").
"""

from __future__ import annotations

import typing as _t

from repro.containers.containerd import (
    Container,
    Containerd,
    ContainerSpec,
    ContainerState,
)
from repro.containers.image import ImageSpec
from repro.containers.registry import Registry
from repro.sim import Environment


class DockerEngine:
    """Docker daemon API: pull / create / start / stop / remove / list."""

    def __init__(
        self,
        env: Environment,
        runtime: Containerd,
        api_latency_s: float = 0.012,
    ) -> None:
        if api_latency_s < 0:
            raise ValueError("api_latency_s must be >= 0")
        self.env = env
        self.runtime = runtime
        self.api_latency_s = float(api_latency_s)

    def __getstate__(self) -> dict:
        """Pickle as a *cold* engine (see :meth:`Containerd.__getstate__`)."""
        state = self.__dict__.copy()
        state["env"] = None
        return state

    def rebind(self, env: Environment) -> None:
        """Attach an unpickled (cold) engine to ``env``, cascading to
        its runtime when that is still cold."""
        if self.env is not None:
            raise RuntimeError(
                "engine already bound to an environment; only a cold "
                "(unpickled) one can be rebound"
            )
        self.env = env
        if self.runtime.env is None:
            self.runtime.rebind(env)

    def _api_call(self):
        yield self.env.timeout(self.api_latency_s)

    # -- image management ---------------------------------------------------

    def pull(self, image: ImageSpec, registry: Registry):
        """``docker pull`` (generator returning PullResult)."""
        yield from self._api_call()
        result = yield from self.runtime.pull(image, registry)
        return result

    def image_cached(self, reference: str) -> bool:
        return self.runtime.images.has_image(reference)

    def remove_image(self, reference: str):
        """``docker rmi`` (generator returning bytes freed)."""
        yield from self._api_call()
        return self.runtime.images.delete_image(reference)

    # -- container lifecycle ----------------------------------------------------

    def create_container(self, spec: ContainerSpec):
        """``docker create`` (generator returning :class:`Container`)."""
        yield from self._api_call()
        container = yield from self.runtime.create(spec)
        return container

    def start_container(self, container: Container):
        """``docker start``: returns once the process is spawned."""
        yield from self._api_call()
        yield from self.runtime.start(container)

    def run(self, spec: ContainerSpec):
        """``docker run`` = create + start (generator returning Container)."""
        container = yield from self.create_container(spec)
        yield from self.start_container(container)
        return container

    def stop_container(self, container: Container):
        yield from self._api_call()
        yield from self.runtime.stop(container)

    def remove_container(self, container: Container):
        yield from self._api_call()
        yield from self.runtime.remove(container)

    # -- queries --------------------------------------------------------------------

    def containers(
        self,
        label_filter: _t.Mapping[str, str] | None = None,
        running_only: bool = True,
    ) -> list[Container]:
        result = self.runtime.list_containers(label_filter)
        if running_only:
            result = [c for c in result if c.state is ContainerState.RUNNING]
        return result
