"""Container registries with latency/bandwidth pull models.

The paper pulls images from Docker Hub and the Google Container
Registry, and compares against a private registry on the local network
(fig. 13): "pull times improve by about 1.5 to 2 seconds".  A
:class:`RegistryProfile` captures what distinguishes them: round-trip
time, effective download bandwidth, and per-layer protocol overhead
(auth, manifest, blob negotiation, digest verification).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.containers.image import ImageSpec, Layer
from repro.sim import AllOf, Environment, Resource


class ImageNotFound(KeyError):
    """The registry does not host the requested reference."""


class RegistryUnavailable(RuntimeError):
    """A transient registry failure (timeout, 5xx, connection reset)."""


@dataclasses.dataclass(frozen=True)
class RegistryProfile:
    """Performance profile of a registry as seen from the edge site."""

    #: One network round trip to the registry, seconds.
    rtt_s: float
    #: Effective per-connection download bandwidth, bits per second.
    bandwidth_bps: float
    #: Fixed protocol overhead per layer (blob HEAD/GET, TLS, ...).
    per_layer_overhead_s: float
    #: Digest verification throughput on the pulling node, bytes/second.
    verify_bytes_per_s: float = 400e6
    #: Concurrent layer downloads (containerd default: 3).
    max_concurrent_downloads: int = 3

    def __post_init__(self) -> None:
        if self.rtt_s < 0 or self.per_layer_overhead_s < 0:
            raise ValueError("latencies must be >= 0")
        if self.bandwidth_bps <= 0 or self.verify_bytes_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        if self.max_concurrent_downloads < 1:
            raise ValueError("max_concurrent_downloads must be >= 1")


#: Public internet registry (Docker Hub / GCR as measured from the
#: testbed's university network).
PUBLIC_PROFILE = RegistryProfile(
    rtt_s=0.040,
    bandwidth_bps=320e6,
    per_layer_overhead_s=0.28,
)

#: Private registry on the same LAN as the edge cluster.
PRIVATE_PROFILE = RegistryProfile(
    rtt_s=0.002,
    bandwidth_bps=850e6,
    per_layer_overhead_s=0.04,
)


class Registry:
    """A registry instance hosting a set of images."""

    def __init__(
        self,
        env: Environment,
        name: str,
        profile: RegistryProfile,
        failure_rate: float = 0.0,
        failure_seed: int = 0,
    ) -> None:
        if not 0 <= failure_rate < 1:
            raise ValueError("failure_rate must be in [0, 1)")
        self.env = env
        self.name = name
        self.profile = profile
        self._images: dict[str, ImageSpec] = {}
        self._download_slots = Resource(env, profile.max_concurrent_downloads)
        #: Probability that one request (manifest resolution or layer
        #: fetch) fails transiently (failure-injection knob).
        self.failure_rate = failure_rate
        self._failure_rng = np.random.default_rng(failure_seed)
        # Manifest failures draw from their own stream so enabling them
        # does not perturb the (seeded) layer-fetch failure sequence.
        self._manifest_rng = np.random.default_rng((failure_seed, 2))
        #: Pull statistics for tests/benchmarks.
        self.stats = {
            "manifests": 0,
            "manifest_failures": 0,
            "layers": 0,
            "bytes": 0,
            "failures": 0,
        }

    def __getstate__(self) -> dict:
        """Pickle as a *cold* registry: catalogue, profile, and seeded
        failure streams survive; the env-bound download-slot resource
        does not.  Re-attach with :meth:`rebind` before use."""
        state = self.__dict__.copy()
        state["env"] = None
        state["_download_slots"] = None
        return state

    def rebind(self, env: Environment) -> None:
        """Attach an unpickled (cold) registry to ``env``."""
        if self.env is not None:
            raise RuntimeError(
                f"{self.name}: already bound to an environment; only a "
                "cold (unpickled) registry can be rebound"
            )
        self.env = env
        self._download_slots = Resource(
            env, self.profile.max_concurrent_downloads
        )

    def set_fault_rate(self, rate: float) -> None:
        """Adjust the failure rate at runtime (Injector outage windows).

        Unlike the constructor — where a permanently all-failing
        registry is a configuration error — a temporary full outage
        (``rate=1.0``) is allowed here.
        """
        if not 0 <= rate <= 1:
            raise ValueError("fault rate must be in [0, 1]")
        self.failure_rate = float(rate)

    def reseed_faults(self, seed: int) -> None:
        """Reseed both failure streams (FaultPlan determinism: the same
        plan seed reproduces the same error pattern regardless of how
        much traffic preceded the outage)."""
        self._failure_rng = np.random.default_rng(seed)
        self._manifest_rng = np.random.default_rng((seed, 2))

    def publish(self, image: ImageSpec) -> None:
        """Make an image available for pulling."""
        self._images[image.reference] = image

    def manifest(self, reference: str):
        """Fetch an image manifest (generator returning :class:`ImageSpec`).

        Costs two round trips: token/auth plus the manifest GET.
        """
        yield self.env.timeout(2 * self.profile.rtt_s)
        if self.failure_rate and self._manifest_rng.random() < self.failure_rate:
            # An outage fails the pull at its very first round trip.
            self.stats["manifest_failures"] += 1
            raise RegistryUnavailable(
                f"{self.name}: transient failure resolving {reference}"
            )
        self.stats["manifests"] += 1
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFound(reference)
        return image

    def fetch_layer(self, layer: Layer):
        """Download and verify one layer (generator).

        Concurrency across layers is limited to the profile's
        ``max_concurrent_downloads``, as containerd does.
        """
        with self._download_slots.request() as slot:
            yield slot
            if self.failure_rate and self._failure_rng.random() < self.failure_rate:
                # The connection dies partway through the blob transfer.
                transfer = layer.size_bytes * 8 / self.profile.bandwidth_bps
                yield self.env.timeout(
                    self.profile.per_layer_overhead_s + 0.5 * transfer
                )
                self.stats["failures"] += 1
                raise RegistryUnavailable(
                    f"{self.name}: transient failure fetching {layer.digest}"
                )
            transfer = layer.size_bytes * 8 / self.profile.bandwidth_bps
            yield self.env.timeout(self.profile.per_layer_overhead_s + transfer)
        # Verification happens on the puller, outside the download slot.
        yield self.env.timeout(layer.size_bytes / self.profile.verify_bytes_per_s)
        self.stats["layers"] += 1
        self.stats["bytes"] += layer.size_bytes

    def has_image(self, reference: str) -> bool:
        return reference in self._images

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Registry {self.name!r} images={len(self._images)}>"
