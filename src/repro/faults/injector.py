"""The Injector: drives a :class:`~repro.faults.plan.FaultPlan`
against a live testbed.

The injector is pure control plane: it resolves each fault's target by
name (hosts, switches, links, registries, clusters) against the
testbed, schedules one apply callback per fault via ``env.call_at``,
and schedules the matching revert callback when the fault has a
duration.  Nothing touches the event heap until :meth:`arm` is called,
and an armed injector with an empty plan schedules nothing — the fault
layer costs zero on healthy runs.

The testbed is duck-typed (anything exposing ``env``, ``clusters``,
``switches``, a couple of well-known hosts, and the registries works),
so the injector composes with any experiment or workload driver built
on :class:`~repro.testbed.c3.C3Testbed`.
"""

from __future__ import annotations

import typing as _t

from repro.containers.containerd import Containerd
from repro.containers.registry import Registry
from repro.faults.plan import (
    APIStall,
    Fault,
    FaultPlan,
    LinkPartition,
    NodeCrash,
    PodKill,
    RegistryOutage,
)

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.containers.containerd import Container
    from repro.net.host import Host
    from repro.net.link import Link
    from repro.net.openflow.switch import OpenFlowSwitch


class Injector:
    """Schedules a fault plan's apply/revert callbacks against a testbed."""

    def __init__(self, testbed: _t.Any, plan: FaultPlan) -> None:
        self.testbed = testbed
        self.env = testbed.env
        self.plan = plan
        self.recorder = getattr(testbed, "recorder", None)
        #: ``(time, description)`` log of everything applied/reverted.
        self.log: list[tuple[float, str]] = []
        self._armed = False

    # -- scheduling --------------------------------------------------------

    def arm(self) -> "Injector":
        """Schedule every fault of the plan (idempotent; chainable).

        Faults apply at ``env start time + fault.at_s``; same-instant
        faults apply in plan order (event sequence numbers are strictly
        increasing), so a plan's trajectory is deterministic.
        """
        if self._armed:
            return self
        self._armed = True
        base = self.env.now
        for fault in self.plan:
            self.env.call_at(base + fault.at_s, self._apply, fault)
        return self

    def _apply(self, fault: Fault) -> None:
        if isinstance(fault, RegistryOutage):
            self._apply_registry_outage(fault)
        elif isinstance(fault, NodeCrash):
            self._apply_node_crash(fault)
        elif isinstance(fault, LinkPartition):
            self._apply_partition(fault)
        elif isinstance(fault, PodKill):
            self._apply_pod_kill(fault)
        elif isinstance(fault, APIStall):
            self._apply_api_stall(fault)
        else:  # pragma: no cover - new fault types must be wired here
            raise TypeError(f"unknown fault type: {fault!r}")

    def _note(self, what: str) -> None:
        self.log.append((self.env.now, what))
        if self.recorder is not None:
            self.recorder.mark("faults", self.env.now)
            self.recorder.count(f"faults/{what.split()[0]}")

    # -- registry outage ---------------------------------------------------

    def _apply_registry_outage(self, fault: RegistryOutage) -> None:
        registry = self._registry(fault.registry)
        previous = registry.failure_rate
        # Reseed from the plan so the outage's error pattern does not
        # depend on how much traffic preceded it.
        registry.reseed_faults(self.plan.seed)
        registry.set_fault_rate(fault.rate)
        self._note(f"registry-outage {registry.name} rate={fault.rate}")
        self.env.call_later(
            fault.duration_s, self._revert_registry_outage, registry, previous
        )

    def _revert_registry_outage(self, registry: Registry, previous: float) -> None:
        registry.failure_rate = previous
        self._note(f"registry-restore {registry.name}")

    # -- node crash --------------------------------------------------------

    def _apply_node_crash(self, fault: NodeCrash) -> None:
        host = self._hosts().get(fault.node)
        if host is not None:
            self._crash_host(fault, host)
            return
        switch = self._switches().get(fault.node)
        if switch is not None:
            self._crash_switch(fault, switch)
            return
        raise ValueError(f"no host or switch named {fault.node!r}")

    def _crash_host(self, fault: NodeCrash, host: "Host") -> None:
        for runtime in self._runtimes_on(host):
            runtime.down = True
            runtime.kill_all()
        host.crash()
        endpoint = host.iface.endpoint
        link = endpoint.link if endpoint is not None else None
        if link is not None:
            link.down = True
        self._note(f"node-crash {host.name}")
        if fault.duration_s is not None:
            self.env.call_later(
                fault.duration_s, self._restore_host, host, link
            )

    def _restore_host(self, host: "Host", link: "Link | None") -> None:
        if link is not None:
            link.down = False
        for runtime in self._runtimes_on(host):
            runtime.down = False
        self._note(f"node-restore {host.name}")

    def _crash_switch(self, fault: NodeCrash, switch: "OpenFlowSwitch") -> None:
        links = []
        for iface in switch.ports():
            endpoint = iface.endpoint
            if endpoint is not None:
                endpoint.link.down = True
                links.append(endpoint.link)
        switch.power_cycle()
        self._note(f"node-crash {switch.name}")
        if fault.duration_s is not None:
            self.env.call_later(
                fault.duration_s, self._restore_switch, switch, links
            )

    def _restore_switch(
        self, switch: "OpenFlowSwitch", links: list["Link"]
    ) -> None:
        for link in links:
            link.down = False
        # The rebooted switch comes back with an empty table; the
        # controller replays the datapath join to reinstall the
        # infrastructure rules (redirects reinstall lazily on the next
        # table miss, via FlowMemory).
        for controller in self._controllers():
            datapath = controller.datapaths.get(switch.datapath_id)
            if datapath is not None:
                controller.on_datapath_join(datapath)
                break
        self._note(f"node-restore {switch.name}")

    def _controllers(self) -> list[_t.Any]:
        """Every controller app on the testbed (federated testbeds own
        one per site; the classic testbed exposes a single one)."""
        controllers = getattr(self.testbed, "controllers", None)
        if controllers:
            return list(controllers)
        controller = getattr(self.testbed, "controller", None)
        return [controller] if controller is not None else []

    # -- link partition ----------------------------------------------------

    def _apply_partition(self, fault: LinkPartition) -> None:
        link = self._link_between(fault.a, fault.b)
        link.down = True
        self._note(f"partition {fault.a}<->{fault.b}")
        self.env.call_later(fault.duration_s, self._heal_partition, fault, link)

    def _heal_partition(self, fault: LinkPartition, link: "Link") -> None:
        link.down = False
        self._note(f"partition-heal {fault.a}<->{fault.b}")

    # -- pod kill ----------------------------------------------------------

    def _apply_pod_kill(self, fault: PodKill) -> None:
        cluster = self._cluster(fault.cluster)
        killed = 0
        for runtime in self._cluster_runtimes(cluster):
            for container in list(runtime.containers.values()):
                if self._belongs_to_service(container, fault.service):
                    if runtime.kill(container):
                        killed += 1
        self._note(f"pod-kill {fault.service}@{fault.cluster} killed={killed}")

    @staticmethod
    def _belongs_to_service(container: "Container", service_name: str) -> bool:
        labels = container.spec.labels
        if labels.get("edge.service") == service_name:
            return True
        # Kubernetes containers are named "{pod}/{container}" with the
        # deployment (= service) name prefixing the pod name.
        return container.spec.name.startswith(service_name)

    # -- API stall ---------------------------------------------------------

    def _apply_api_stall(self, fault: APIStall) -> None:
        cluster = self._cluster(fault.cluster)
        kubernetes = getattr(cluster, "cluster", None)
        api = getattr(kubernetes, "api", None)
        if api is None:
            raise ValueError(
                f"cluster {fault.cluster!r} has no API server to stall"
            )
        api.stall_for(fault.duration_s)
        self._note(f"api-stall {fault.cluster} {fault.duration_s}s")

    # -- target resolution -------------------------------------------------

    def _hosts(self) -> dict[str, "Host"]:
        tb = self.testbed
        hosts: dict[str, _t.Any] = {}
        for host in (
            [getattr(tb, "egs", None), getattr(tb, "cloud", None)]
            + list(getattr(tb, "clients", []))
        ):
            if host is not None:
                hosts[host.name] = host
        for cluster in getattr(tb, "clusters", []):
            ingress = getattr(cluster, "ingress_host", None)
            if ingress is not None:
                hosts.setdefault(ingress.name, ingress)
        return hosts

    def _switches(self) -> dict[str, "OpenFlowSwitch"]:
        return {
            switch.name: switch
            for switch in getattr(self.testbed, "switches", {}).values()
        }

    def _registry(self, name: str) -> Registry:
        candidates = [
            getattr(self.testbed, attr, None)
            for attr in ("public_registry", "private_registry", "active_registry")
        ]
        for registry in candidates:
            if registry is not None and registry.name == name:
                return registry
        raise ValueError(f"no registry named {name!r}")

    def _cluster(self, name: str):
        for cluster in getattr(self.testbed, "clusters", []):
            if cluster.name == name:
                return cluster
        raise ValueError(f"no cluster named {name!r}")

    def _all_runtimes(self) -> list[Containerd]:
        runtimes: list[Containerd] = []
        shared = getattr(self.testbed, "containerd", None)
        if shared is not None:
            runtimes.append(shared)
        for cluster in getattr(self.testbed, "clusters", []):
            for runtime in self._cluster_runtimes(cluster):
                if runtime not in runtimes:
                    runtimes.append(runtime)
        return runtimes

    @staticmethod
    def _cluster_runtimes(cluster: _t.Any) -> list[Containerd]:
        runtimes: list[Containerd] = []
        engine = getattr(cluster, "engine", None)
        runtime = getattr(engine, "runtime", None)
        if isinstance(runtime, Containerd):
            runtimes.append(runtime)
        runtime = getattr(cluster, "_runtime", None)
        if isinstance(runtime, Containerd) and runtime not in runtimes:
            runtimes.append(runtime)
        kubernetes = getattr(cluster, "cluster", None)
        for kubelet in getattr(kubernetes, "kubelets", {}).values():
            if kubelet.runtime not in runtimes:
                runtimes.append(kubelet.runtime)
        return runtimes

    def _runtimes_on(self, host: "Host") -> list[Containerd]:
        return [r for r in self._all_runtimes() if r.node is host]

    def _link_between(self, a: str, b: str) -> "Link":
        wanted = {a, b}
        # Logical links first: testbeds can expose channels that are
        # not host/switch wires (e.g. a site's shared-state link in the
        # federated control plane) under explicit name pairs.  Anything
        # with a ``down`` flag partitions.
        named = getattr(self.testbed, "named_links", None)
        if named:
            for pair, link in named.items():
                if set(pair) == wanted:
                    return link
        for link in self._all_links():
            names = {
                link.end_a.iface.device.name,
                link.end_b.iface.device.name,
            }
            if names == wanted:
                return link
        raise ValueError(f"no link between {a!r} and {b!r}")

    def _all_links(self) -> list["Link"]:
        links: list[_t.Any] = []
        seen: set[int] = set()

        def _collect(iface) -> None:
            endpoint = iface.endpoint
            if endpoint is None:
                return
            link = endpoint.link
            if id(link) not in seen:
                seen.add(id(link))
                links.append(link)

        for host in self._hosts().values():
            _collect(host.iface)
        for switch in self._switches().values():
            for iface in switch.ports():
                _collect(iface)
        return links

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self._armed else "idle"
        return f"<Injector {state} faults={len(self.plan)}>"
